"""Differential rewrite-equivalence fuzzing.

The deferred-cleansing claim — every rewrite answers exactly the naive
``Q[C_1..C_n]`` — is checked empirically here: random RFID datasets,
random SQL-TS rules, and random user queries are pushed through every
execution path (expanded, join-back, cost-based choice, region cache
cold/warm/invalidated, eager materialization, prepared-plan cache,
parallel windows) and the canonicalized row bags are diffed against the
naive baseline. Divergences are delta-debugged to minimal cases and
persisted as self-contained pytest regressions.

Entry points: ``python -m repro.fuzz`` (CLI) and
:func:`repro.fuzz.runner.run_fuzz` (programmatic).
"""

from repro.fuzz.cases import DimensionSpec, FuzzCase, QuerySpec
from repro.fuzz.datasets import DatasetProfile, random_profile
from repro.fuzz.oracle import (ALL_LABELS, Divergence, OracleReport,
                               run_case)
from repro.fuzz.queries import random_query
from repro.fuzz.regression import write_regression
from repro.fuzz.rules import random_rule, random_rules
from repro.fuzz.runner import (FuzzConfig, FuzzOutcome, generate_case,
                               run_fuzz)
from repro.fuzz.shrink import ddmin, shrink_case

__all__ = [
    "ALL_LABELS",
    "DatasetProfile",
    "DimensionSpec",
    "Divergence",
    "FuzzCase",
    "FuzzConfig",
    "FuzzOutcome",
    "OracleReport",
    "QuerySpec",
    "ddmin",
    "generate_case",
    "random_profile",
    "random_query",
    "random_rule",
    "random_rules",
    "run_case",
    "run_fuzz",
    "shrink_case",
    "write_regression",
]
