"""Random SQL-TS cleansing rule generation.

Rules are drawn from the archetypes the paper's §4.3 rules span —
singleton patterns of two or three references, leading/trailing ``*``
set references, DELETE / KEEP / MODIFY actions — with conditions
assembled from correlated atoms (location equality between references,
bounded time windows) and local atoms (literal reader / location /
step predicates) over the dataset's observed constants.

All generated rules cluster by ``epc`` and sequence by ``rtime`` (rules
applied together must share keys), use AND-only conditions (the shape
the Figure 4 analysis supports; OR-split conditions are rejected by the
conjunctive-group check and would only exercise the naive path), and
always reference the target, so every archetype can appear in expanded
/ join-back / cached candidate races rather than falling through.
"""

from __future__ import annotations

import random

from repro.fuzz.datasets import DatasetProfile

__all__ = ["random_rules", "random_rule"]

#: (pattern text, ordered singleton names, set name or None).
_PATTERNS = (
    ("(A, B)", ("a", "b"), None),
    ("(A, B, C)", ("a", "b", "c"), None),
    ("(A, *B)", ("a",), "b"),
    ("(*A, B)", ("b",), "a"),
)


def _correlated_atom(rng: random.Random, profile: DatasetProfile,
                     earlier: str, later: str,
                     sequence_only: bool = False) -> str:
    """*sequence_only* is forced when either side is a set reference:
    the compiler admits only sequence-key bounds across a ``*`` ref."""
    kind = 0 if sequence_only else rng.randrange(3)
    if kind == 0:
        window = rng.choice(profile.time_constants)
        return f"{later}.rtime - {earlier}.rtime < {window}"
    if kind == 1:
        return f"{earlier}.biz_loc = {later}.biz_loc"
    return f"{earlier}.biz_loc != {later}.biz_loc"


def _local_atom(rng: random.Random, profile: DatasetProfile,
                ref: str) -> str:
    kind = rng.randrange(3)
    if kind == 0:
        return f"{ref}.reader = '{rng.choice(profile.readers)}'"
    if kind == 1:
        return f"{ref}.biz_loc = '{rng.choice(profile.glns)}'"
    return f"{ref}.biz_step = '{rng.choice(profile.steps)}'"


def random_rule(rng: random.Random, profile: DatasetProfile,
                index: int) -> str:
    """One random rule named ``fuzz_rule_<index>`` over ``caser``."""
    pattern, singletons, set_ref = rng.choice(_PATTERNS)
    names = list(singletons) + ([set_ref] if set_ref else [])
    ordered = sorted(names)  # pattern order is alphabetical by design
    target = rng.choice(singletons)

    atoms: list[str] = []
    # At least one correlated atom binding consecutive references keeps
    # most rules feasible for the expanded analysis; a time-window atom
    # additionally gives the position-preserving subset something to
    # keep for singleton context references.
    for left, right in zip(ordered, ordered[1:]):
        if rng.random() < 0.8:
            atoms.append(_correlated_atom(
                rng, profile, left, right,
                sequence_only=set_ref in (left, right)))
    if rng.random() < 0.6:
        atoms.append(_local_atom(rng, profile, rng.choice(ordered)))
    if not atoms:
        atoms.append(_correlated_atom(
            rng, profile, ordered[0], ordered[-1],
            sequence_only=set_ref in (ordered[0], ordered[-1])))

    action_kind = rng.randrange(4)
    if action_kind == 0:
        action = f"KEEP {target.upper()}"
    elif action_kind == 1:
        gln = rng.choice(profile.glns)
        action = f"MODIFY {target.upper()}.biz_loc = '{gln}'"
    else:
        action = f"DELETE {target.upper()}"

    return (f"DEFINE fuzz_rule_{index} ON caser "
            f"CLUSTER BY epc SEQUENCE BY rtime\n"
            f"AS {pattern}\n"
            f"WHERE {' AND '.join(atoms)}\n"
            f"ACTION {action}")


def random_rules(rng: random.Random, profile: DatasetProfile,
                 max_rules: int = 3) -> list[str]:
    """An ordered chain of 1..max_rules random rules."""
    count = rng.randint(1, max_rules)
    return [random_rule(rng, profile, index) for index in range(count)]
