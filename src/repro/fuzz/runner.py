"""The fuzz loop: generate, execute, diff, shrink, persist.

Each iteration derives a child seed from the master seed, builds a
random (dataset, rules, query) triple, and hands it to the oracle. On
divergence the case is delta-debugged down and written out as a
self-contained pytest regression. The loop is bounded by iterations
and/or wall-clock budget, whichever trips first.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

from repro.fuzz.cases import FuzzCase
from repro.fuzz.datasets import random_profile
from repro.minidb.codegen import forced_codegen
from repro.fuzz.oracle import OracleReport, run_case
from repro.fuzz.queries import random_query
from repro.fuzz.regression import write_regression
from repro.fuzz.rules import random_rules
from repro.fuzz.shrink import shrink_case

__all__ = ["Failure", "FuzzConfig", "FuzzOutcome", "generate_case",
           "run_fuzz"]


@dataclass
class FuzzConfig:
    """Knobs for one fuzzing campaign."""

    seed: int = 0
    iterations: int = 50
    #: Wall-clock budget in seconds; ``None`` means iterations only.
    time_budget: float | None = None
    #: Subset of :data:`~repro.fuzz.oracle.ALL_LABELS`; ``None`` = all.
    labels: Sequence[str] | None = None
    shrink: bool = True
    #: Where shrunk regressions land; ``None`` = repo default.
    regression_dir: Path | None = None
    max_rules: int = 3
    stop_after_failures: int = 1
    #: Query-compilation mode for the whole sweep: ``"on"``/``"off"``
    #: pin ``REPRO_CODEGEN`` for every label, ``"random"`` flips a coin
    #: per iteration (nightly mode), ``None`` leaves the ambient env
    #: alone. The ``compiled`` label always forces codegen on for its
    #: own run regardless.
    codegen: str | None = None
    #: Progress callback (message) — the CLI wires this to stderr.
    report: Callable[[str], None] | None = None


@dataclass
class Failure:
    """One divergence, with its shrunk form and regression file."""

    report: OracleReport
    shrunk: FuzzCase
    regression_path: Path | None = None


@dataclass
class FuzzOutcome:
    """What a campaign produced."""

    iterations_run: int = 0
    skipped_labels: dict[str, int] = field(default_factory=dict)
    failures: list[Failure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        if self.ok:
            skips = sum(self.skipped_labels.values())
            return (f"{self.iterations_run} iterations, 0 divergences "
                    f"({skips} legitimate strategy skips)")
        labels = sorted({label for failure in self.failures
                         for label in failure.report.diverged_labels()})
        return (f"{self.iterations_run} iterations, "
                f"{len(self.failures)} divergent case(s) "
                f"[{', '.join(labels)}]")


def generate_case(rng: random.Random, seed: int,
                  iteration: int, max_rules: int = 3) -> FuzzCase:
    """One random (dataset, rules, query) triple from *rng*."""
    profile = random_profile(rng)
    rules = random_rules(rng, profile, max_rules=max_rules)
    query = random_query(rng, profile)
    return FuzzCase(seed=seed, iteration=iteration,
                    reads_rows=list(profile.rows), rules=rules,
                    query=query)


def run_fuzz(config: FuzzConfig) -> FuzzOutcome:
    """Run one campaign; returns the aggregate outcome."""
    outcome = FuzzOutcome()
    report = config.report or (lambda message: None)
    deadline = (None if config.time_budget is None
                else time.monotonic() + config.time_budget)
    master = random.Random(config.seed)

    for iteration in range(config.iterations):
        if deadline is not None and time.monotonic() >= deadline:
            report(f"time budget exhausted after "
                   f"{outcome.iterations_run} iterations")
            break
        case_rng = random.Random(master.getrandbits(64))
        case = generate_case(case_rng, config.seed, iteration,
                             max_rules=config.max_rules)
        # Drawn AFTER generate_case so the case stream for a given seed
        # is identical across codegen modes (same bugs, same shapes).
        if config.codegen == "random":
            enabled = bool(case_rng.getrandbits(1))
        elif config.codegen in ("on", "off"):
            enabled = config.codegen == "on"
        else:
            enabled = None
        if enabled is None:
            oracle_report = run_case(case, labels=config.labels)
        else:
            with forced_codegen(enabled):
                oracle_report = run_case(case, labels=config.labels)
        outcome.iterations_run += 1
        for label, status in oracle_report.results.items():
            if status.startswith("skipped"):
                outcome.skipped_labels[label] = \
                    outcome.skipped_labels.get(label, 0) + 1
        if oracle_report.ok:
            report(f"iteration {iteration}: ok ({case.describe()})")
            continue

        report(f"iteration {iteration}: {oracle_report.summary()}")
        shrunk = case
        if config.shrink:
            shrunk = shrink_case(case,
                                 sorted(oracle_report.diverged_labels()))
            report(f"iteration {iteration}: shrunk "
                   f"{case.describe()} -> {shrunk.describe()}")
        failure = Failure(report=oracle_report, shrunk=shrunk)
        try:
            failure.regression_path = write_regression(
                shrunk, oracle_report, config.regression_dir)
            report(f"iteration {iteration}: regression written to "
                   f"{failure.regression_path}")
        except OSError as error:
            report(f"iteration {iteration}: could not write "
                   f"regression ({error})")
        outcome.failures.append(failure)
        if len(outcome.failures) >= config.stop_after_failures:
            break
    return outcome
