"""Shrunk-divergence regression files.

Every shrunk reproducing case is written as a self-contained pytest
module under ``tests/fuzz/regressions/``: the reads rows, rule texts,
and query spec are embedded as literals, and the test simply re-runs
the differential oracle and asserts agreement. Checking the file in
pins the fix forever; deleting it is the only way to un-pin.
"""

from __future__ import annotations

from pathlib import Path

from repro.fuzz.cases import FuzzCase
from repro.fuzz.oracle import OracleReport

__all__ = ["default_regression_dir", "write_regression"]

_TEMPLATE = '''"""Auto-generated fuzz regression (do not edit by hand).

Found by: python -m repro.fuzz --seed {seed} (iteration {iteration})
Diverged: {labels}
Shrunk to {rows} rows / {rules} rules / {conjuncts} query conjuncts.

Reproduce interactively:

    from repro.fuzz.oracle import run_case
    import {module_name} as m
    print(run_case(m._case()).summary())
"""

from repro.fuzz.cases import DimensionSpec, FuzzCase, QuerySpec
from repro.fuzz.oracle import run_case

READS_ROWS = {reads_rows}

RULES = {rules_literal}

QUERY = QuerySpec(
    conjuncts={conjuncts_literal},
    dimensions=[
{dimensions_literal}    ],
)


def _case() -> FuzzCase:
    return FuzzCase(seed={seed}, iteration={iteration},
                    reads_rows=list(READS_ROWS), rules=list(RULES),
                    query=QUERY)


def test_{test_name}() -> None:
    report = run_case(_case())
    assert report.ok, report.summary()
'''


def default_regression_dir() -> Path:
    """``tests/fuzz/regressions`` next to the repo's test tree when it
    exists, else the current working directory's ``fuzz-regressions``."""
    repo_dir = Path(__file__).resolve().parents[3] / "tests" / "fuzz" \
        / "regressions"
    if repo_dir.parent.is_dir():
        return repo_dir
    return Path.cwd() / "fuzz-regressions"


def _dimension_literal(dimension) -> str:
    return (f"        DimensionSpec(name={dimension.name!r}, "
            f"alias={dimension.alias!r},\n"
            f"                      fact_key={dimension.fact_key!r}, "
            f"dim_key={dimension.dim_key!r},\n"
            f"                      predicate={dimension.predicate!r},\n"
            f"                      rows={dimension.rows!r},\n"
            f"                      schema={tuple(dimension.schema)!r}),\n")


def write_regression(case: FuzzCase, report: OracleReport,
                     directory: Path | None = None) -> Path:
    """Write *case* as a pytest regression module; returns its path."""
    directory = directory or default_regression_dir()
    directory.mkdir(parents=True, exist_ok=True)
    test_name = f"shrunk_seed{case.seed}_iter{case.iteration}"
    path = directory / f"test_{test_name}.py"
    rows_literal = "[\n" + "".join(
        f"    {row!r},\n" for row in case.reads_rows) + "]"
    rules_literal = "[\n" + "".join(
        f"    {text!r},\n" for text in case.rules) + "]"
    dimensions_literal = "".join(
        _dimension_literal(dimension)
        for dimension in case.query.dimensions)
    path.write_text(_TEMPLATE.format(
        seed=case.seed,
        iteration=case.iteration,
        labels=", ".join(sorted(report.diverged_labels())) or "unknown",
        rows=len(case.reads_rows),
        rules=len(case.rules),
        conjuncts=len(case.query.conjuncts),
        module_name=f"test_{test_name}",
        reads_rows=rows_literal,
        rules_literal=rules_literal,
        conjuncts_literal=repr(case.query.conjuncts),
        dimensions_literal=dimensions_literal,
        test_name=test_name,
    ))
    return path
