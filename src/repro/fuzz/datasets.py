"""Random RFID datasets for fuzz cases, drawn through ``datagen``.

Each case gets a freshly generated miniature supply chain (RFIDGen with
a shrunken topology) under a controlled anomaly mix, so the fuzzer
exercises the cleansing rules against realistic read sequences —
duplicate bursts, readerX misreads, location bounces, missing reads —
rather than uniform noise. The generator is fully seed-deterministic
(one plumbed RNG), so a fuzz (seed, iteration) pair reproduces the
exact dataset.

The :class:`DatasetProfile` summarizes the constants the rule/query
generators sample from: observed GLNs, readers, steps, EPCs, the rtime
range, and the rule time constants t1..t3.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.datagen.config import GeneratorConfig
from repro.datagen.generator import GeneratedData, RFIDGen
from repro.minidb.types import MINUTE

__all__ = ["DatasetProfile", "random_profile", "ANOMALY_MIXES"]

#: Anomaly percentages the fuzzer rotates through (controlled mixes:
#: clean, light, heavy, pathological).
ANOMALY_MIXES = (0.0, 5.0, 20.0, 40.0)


@dataclass
class DatasetProfile:
    """A generated reads table plus the constant pools drawn from it."""

    rows: list[tuple]
    epcs: list[str]
    glns: list[str]
    readers: list[str]
    steps: list[str]
    step_types: list[str]
    sites: list[str]
    rtimes: list[int]
    locs_rows: list[tuple]
    steps_rows: list[tuple]
    reader_x: str
    #: Candidate window widths for rule time bounds (t1..t3 plus a few
    #: fractions), in seconds.
    time_constants: list[int]

    @classmethod
    def from_data(cls, data: GeneratedData) -> "DatasetProfile":
        rows = [tuple(row) for row in data.case_reads]
        config = data.config
        rtimes = sorted(row[1] for row in rows) or [0]
        return cls(
            rows=rows,
            epcs=sorted({row[0] for row in rows}),
            glns=sorted(row[0] for row in data.location_rows),
            readers=sorted({row[2] for row in rows} | {data.reader_x}),
            steps=sorted(name for name, _ in data.step_rows),
            step_types=sorted({kind for _, kind in data.step_rows}),
            sites=sorted({site for _, site, _ in data.location_rows}),
            rtimes=rtimes,
            locs_rows=[tuple(row) for row in data.location_rows],
            steps_rows=[tuple(row) for row in data.step_rows],
            reader_x=data.reader_x,
            time_constants=sorted({
                config.t1_duplicate, config.t2_reader, config.t3_replacing,
                config.pallet_case_gap, 2 * MINUTE,
                config.min_read_latency * 2}),
        )

    def rtime_quantile(self, fraction: float) -> int:
        """The rtime at *fraction* of the sorted observed values."""
        index = int(fraction * (len(self.rtimes) - 1))
        return self.rtimes[index]


def random_profile(rng: random.Random) -> DatasetProfile:
    """Generate one miniature dataset and profile it.

    The topology is deliberately tiny (a handful of sites, 1–3 cases
    per pallet, 2–3 reads per site) so each differential run stays
    cheap while sequences remain long enough for every rule archetype
    to fire; anomaly percentages rotate through :data:`ANOMALY_MIXES`.
    """
    config = GeneratorConfig(
        scale=rng.randint(1, 3),
        distribution_centers=2,
        warehouses=2,
        stores=3,
        locations_per_site=3,
        products=6,
        manufacturers=3,
        business_steps=6,
        step_types=3,
        reads_per_site=rng.randint(2, 3),
        min_cases_per_pallet=1,
        max_cases_per_pallet=3,
        time_window_days=rng.choice((2, 30)),
        anomaly_percent=rng.choice(ANOMALY_MIXES),
    )
    # Exercise the plumbed-seed path: one config, many datasets.
    data = RFIDGen(config).generate(seed=rng.getrandbits(32))
    return DatasetProfile.from_data(data)
