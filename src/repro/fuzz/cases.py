"""Case model for the differential rewrite-equivalence fuzzer.

A :class:`FuzzCase` is one self-contained (dataset, rules, query)
triple: the raw reads-table rows, the SQL-TS cleansing rule texts, and
a structured :class:`QuerySpec` the oracle renders to SQL against any
table name (the eager path queries the materialized cleansed copy).

Everything is plain data — lists of tuples and strings — so cases
serialize losslessly into regression files via ``repr`` and shrink by
simple list surgery (drop rows, drop rules, drop conjuncts, drop
dimension joins) without touching the engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = ["READS_COLUMNS", "DimensionSpec", "QuerySpec", "FuzzCase"]

#: The reads-table column order of Figure 2 (matches ``datagen``).
READS_COLUMNS = ("epc", "rtime", "reader", "biz_loc", "biz_step")

#: Fact-table alias used in every generated query.
FACT_ALIAS = "c"


@dataclass
class DimensionSpec:
    """One dimension join edge of a fuzzed query, with its table data.

    Carrying the dimension rows and schema inside the spec keeps shrunk
    regression files fully self-contained: replaying a case never needs
    the original generated dataset.
    """

    #: Dimension table name ("locs", "steps", ...).
    name: str
    #: Alias used in the rendered SQL.
    alias: str
    #: Reads-table join column.
    fact_key: str
    #: Dimension-side join column.
    dim_key: str
    #: Optional local predicate over ``alias`` (SQL text), e.g.
    #: ``"l.site = 'store 1'"``.
    predicate: str | None
    #: The dimension table's rows.
    rows: list[tuple] = field(default_factory=list)
    #: ``(column, sql_type_value)`` pairs; type values are the
    #: :class:`~repro.minidb.types.SqlType` enum values ("varchar", ...).
    schema: tuple[tuple[str, str], ...] = ()

    def join_conjuncts(self) -> list[str]:
        """The SQL conjuncts this dimension adds to the WHERE clause."""
        conjuncts = [f"{FACT_ALIAS}.{self.fact_key} = "
                     f"{self.alias}.{self.dim_key}"]
        if self.predicate:
            conjuncts.append(self.predicate)
        return conjuncts


@dataclass
class QuerySpec:
    """A fuzzed user query: selection conjuncts plus dimension joins."""

    #: SQL conjuncts over the fact alias (``c.rtime <= 1000``, ...).
    conjuncts: list[str] = field(default_factory=list)
    dimensions: list[DimensionSpec] = field(default_factory=list)

    def sql(self, table: str = "caser") -> str:
        """Render to a SELECT over *table* (all reads columns)."""
        select = ", ".join(f"{FACT_ALIAS}.{column}"
                           for column in READS_COLUMNS)
        from_refs = [f"{table} {FACT_ALIAS}"]
        where: list[str] = list(self.conjuncts)
        for dimension in self.dimensions:
            from_refs.append(f"{dimension.name} {dimension.alias}")
            where.extend(dimension.join_conjuncts())
        text = f"select {select} from {', '.join(from_refs)}"
        if where:
            text += " where " + " and ".join(where)
        return text


@dataclass
class FuzzCase:
    """One (dataset, rules, query) triple under differential test."""

    #: Fuzz-run seed and iteration index the case was drawn at (for the
    #: regression-file audit trail; replay needs neither).
    seed: int
    iteration: int
    #: Reads-table rows in :data:`READS_COLUMNS` order.
    reads_rows: list[tuple] = field(default_factory=list)
    #: SQL-TS rule definitions, in application (creation) order.
    rules: list[str] = field(default_factory=list)
    query: QuerySpec = field(default_factory=QuerySpec)

    def with_rows(self, rows: list[tuple]) -> "FuzzCase":
        return replace(self, reads_rows=list(rows))

    def with_rules(self, rules: list[str]) -> "FuzzCase":
        return replace(self, rules=list(rules))

    def with_query(self, query: QuerySpec) -> "FuzzCase":
        return replace(self, query=query)

    def size(self) -> tuple[int, int, int]:
        """(rows, rules, query conjuncts) — the shrinker's progress."""
        return (len(self.reads_rows), len(self.rules),
                len(self.query.conjuncts))

    def describe(self) -> str:
        rows, rules, conjuncts = self.size()
        return (f"case(seed={self.seed}, iter={self.iteration}: "
                f"{rows} rows, {rules} rules, {conjuncts} conjuncts, "
                f"{len(self.query.dimensions)} dims)")
