"""``python -m repro.fuzz`` — the differential fuzzing CLI.

Examples::

    python -m repro.fuzz --seed 0 --iterations 50
    python -m repro.fuzz --time-budget 60 --iterations 100000
    python -m repro.fuzz --strategies expanded,joinback -v

Exit status 0 when every iteration agreed, 1 on any divergence (shrunk
regressions land in ``tests/fuzz/regressions/`` unless redirected).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.fuzz.oracle import ALL_LABELS
from repro.fuzz.runner import FuzzConfig, run_fuzz


def _parse_args(argv: list[str] | None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description="Differential rewrite-equivalence fuzzer.")
    parser.add_argument("--seed", type=int, default=0,
                        help="master seed (default: 0)")
    parser.add_argument("--iterations", type=int, default=50,
                        help="iteration budget (default: 50)")
    parser.add_argument("--time-budget", type=float, default=None,
                        metavar="SECONDS",
                        help="wall-clock budget; stops early when hit")
    parser.add_argument("--strategies", default=None, metavar="LABELS",
                        help="comma-separated subset of: "
                             + ",".join(ALL_LABELS))
    parser.add_argument("--max-rules", type=int, default=3,
                        help="max rules per case (default: 3)")
    parser.add_argument("--stop-after", type=int, default=1,
                        metavar="N", dest="stop_after",
                        help="stop after N divergent cases (default: 1)")
    parser.add_argument("--codegen", default=None,
                        choices=("on", "off", "random"),
                        help="pin query compilation for the sweep, or "
                             "'random' to flip it per iteration")
    parser.add_argument("--no-shrink", action="store_true",
                        help="skip delta-debugging on divergence")
    parser.add_argument("--regression-dir", type=Path, default=None,
                        help="where to write shrunk regressions")
    parser.add_argument("-v", "--verbose", action="store_true",
                        help="log every iteration to stderr")
    return parser.parse_args(argv)


def main(argv: list[str] | None = None) -> int:
    args = _parse_args(argv)
    labels = None
    if args.strategies:
        labels = [label.strip() for label in args.strategies.split(",")
                  if label.strip()]
        unknown = set(labels) - set(ALL_LABELS)
        if unknown:
            print(f"unknown strategies: {', '.join(sorted(unknown))}; "
                  f"choose from {', '.join(ALL_LABELS)}",
                  file=sys.stderr)
            return 2

    def report(message: str) -> None:
        print(message, file=sys.stderr)

    config = FuzzConfig(
        seed=args.seed,
        iterations=args.iterations,
        time_budget=args.time_budget,
        labels=labels,
        shrink=not args.no_shrink,
        regression_dir=args.regression_dir,
        max_rules=args.max_rules,
        stop_after_failures=args.stop_after,
        codegen=args.codegen,
        report=report if args.verbose else None,
    )
    outcome = run_fuzz(config)
    print(f"repro.fuzz seed={args.seed}: {outcome.summary()}")
    for failure in outcome.failures:
        print(f"  {failure.report.summary()}")
        if failure.regression_path is not None:
            print(f"  regression: {failure.regression_path}")
    return 0 if outcome.ok else 1


if __name__ == "__main__":
    sys.exit(main())
