"""The differential oracle: one case, every execution path, one diff.

The paper's correctness claims (Theorem behind Q_e, §5.3's join-back
argument, Definition 2's position preservation) all reduce to a single
testable property: every strategy answers exactly ``Q[C_1..C_n]``. The
oracle executes one :class:`~repro.fuzz.cases.FuzzCase` through each
path and diffs canonicalized row bags against the naive strategy
(cleanse everything, then query — the executable definition of
``Q[C_1..C_n]``):

========================  =============================================
``expanded``              Q_e when feasible (skipped when the Figure 4
                          analysis is infeasible, as the paper allows)
``joinback``              Q_j (always applicable)
``chosen``                the engine's cost-based pick
``cached-cold``           region cache enabled, first execution
                          (materializes the region)
``cached-warm``           second execution served from the region
``cached-invalidated``    third execution after a table-version bump
                          (must not serve the stale region)
``eager``                 materialize Φ_C(R) up front, query the copy
``plan-cache``            the eager query re-run through the prepared-
                          plan cache (hit must reproduce the miss)
``parallel``              naive re-run with shard-parallel execution
                          forced on (threshold lowered, 2 workers)
``vectorized``            naive re-run under batch execution with a
                          small odd batch size (stressing chunk
                          boundaries); metrics must show batches ran
``encoded``               naive re-run with encoded execution forced on
                          (``REPRO_ENCODE=1``) over batch size 7 —
                          dictionary/RLE kernels, code-range compares
                          and run-skipping filters must reproduce the
                          plain rows; in memory mode a non-empty scan
                          must report encoded columns in its metrics
``compiled``              naive re-run with query compilation forced on
                          (``REPRO_CODEGEN=1``) and batch size 7; when
                          the planner fused a spine, metrics must show
                          a compiled pipeline actually ran
``sharded``               naive re-run with the shard pool (2 workers)
                          *and* batch size 7 together; metrics must
                          show at least one Exchange dispatched
``incremental``           load a prefix, warm the region cache, then
                          interleave ``Database.append`` chunks with
                          queries: after every append the cached
                          engine (patching or invalidating as it sees
                          fit) must agree with a fresh naive run over
                          the same table state
``disk``                  naive re-run against ``storage=disk``: build
                          on disk, checkpoint, close, reopen with a
                          4-page buffer pool, zone-map pruning forced
                          on and a 2-page readahead window, then
                          query — every row is re-decoded from its
                          on-disk representation with the fast-path
                          machinery live; counters must prove pages
                          faulted through the pool
``served``                the cleansed query executed over the wire: a
                          loopback ``repro.server`` session declares
                          the case's rules in HELLO and runs the query
                          through the asyncio front end, the bounded
                          executor, and two JSON frame round trips —
                          framing, value encoding, and the serving
                          execution path must all preserve the answer
========================  =============================================

The baseline itself is computed with batch execution disabled
(``REPRO_BATCH_SIZE=0``), so every comparison is simultaneously a
strategy diff and a batch-vs-tuple-at-a-time executor diff.

Each label diffs as a bag (duplicates matter); any mismatch — or any
unexpected exception — becomes a :class:`Divergence`. Errors never
abort the sweep: one broken path still reports the others.
"""

from __future__ import annotations

import contextlib
import os
import shutil
import tempfile
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Iterator, Sequence

from repro.errors import RewriteError
from repro.fuzz.cases import READS_COLUMNS, FuzzCase
from repro.minidb.codegen import CompiledSpineOp, forced_codegen
from repro.minidb.engine import Database
from repro.minidb.schema import Column, TableSchema
from repro.minidb.optimizer.planner import PlannerOptions
from repro.minidb.plan.shard import ExchangeOp
from repro.minidb.types import SqlType
from repro.minidb.vector import forced_batch_size, forced_encoding
from repro.rewrite.cache import CacheOptions
from repro.rewrite.eager import materialize_cleansed
from repro.rewrite.engine import DeferredCleansingEngine
from repro.sqlts.registry import RuleRegistry

__all__ = ["ALL_LABELS", "Divergence", "OracleReport", "run_case",
           "build_database", "forced_parallel_windows"]

#: Every comparison the oracle can run, in execution order.
ALL_LABELS = ("expanded", "joinback", "chosen", "cached-cold",
              "cached-warm", "cached-invalidated", "eager", "plan-cache",
              "parallel", "vectorized", "encoded", "compiled", "sharded",
              "incremental", "disk", "served")

_READS_SCHEMA = TableSchema.of(
    ("epc", SqlType.VARCHAR),
    ("rtime", SqlType.TIMESTAMP),
    ("reader", SqlType.VARCHAR),
    ("biz_loc", SqlType.VARCHAR),
    ("biz_step", SqlType.VARCHAR),
)


@dataclass
class Divergence:
    """One strategy disagreeing with the naive baseline."""

    label: str
    #: "rows" (bag mismatch) or "error" (unexpected exception).
    kind: str
    detail: str = ""
    missing: list[tuple] = field(default_factory=list)
    unexpected: list[tuple] = field(default_factory=list)

    def summary(self) -> str:
        if self.kind == "error":
            return f"{self.label}: raised {self.detail}"
        return (f"{self.label}: {len(self.missing)} missing, "
                f"{len(self.unexpected)} unexpected rows")


@dataclass
class OracleReport:
    """The outcome of one differential sweep."""

    case: FuzzCase
    baseline: tuple[tuple, ...] = ()
    #: label -> "ok" | "skipped: <why>" | "DIVERGED".
    results: dict[str, str] = field(default_factory=dict)
    divergences: list[Divergence] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def diverged_labels(self) -> set[str]:
        return {divergence.label for divergence in self.divergences}

    def summary(self) -> str:
        if self.ok:
            return f"{self.case.describe()}: all strategies agree"
        parts = "; ".join(d.summary() for d in self.divergences)
        return f"{self.case.describe()}: DIVERGED — {parts}"


def build_database(case: FuzzCase,
                   reads_rows: Sequence[tuple] | None = None,
                   storage: str | None = None,
                   buffer_pages: int | None = None,
                   storage_path: str | None = None,
                   ) -> tuple[Database, RuleRegistry]:
    """A fresh database + registry holding exactly the case's data.

    *reads_rows* overrides the reads-table contents (the ``incremental``
    label loads a prefix and streams the rest in via appends).
    *storage*/*buffer_pages*/*storage_path* select the storage backend
    (the ``disk`` label pins ``storage="disk"`` with a tiny pool;
    everything else follows the ambient ``REPRO_STORAGE`` default).
    """
    db = Database(storage=storage, buffer_pages=buffer_pages,
                  storage_path=storage_path)
    db.create_table("caser", _READS_SCHEMA)
    db.load("caser",
            case.reads_rows if reads_rows is None else reads_rows)
    for column in ("epc", "rtime", "biz_loc", "biz_step"):
        db.create_index("caser", column)
    seen: set[str] = set()
    for dimension in case.query.dimensions:
        if dimension.name in seen:
            continue
        seen.add(dimension.name)
        schema = TableSchema(Column(name, SqlType(type_value))
                             for name, type_value in dimension.schema)
        db.create_table(dimension.name, schema)
        db.load(dimension.name, dimension.rows)
        db.create_index(dimension.name, dimension.dim_key)
    registry = RuleRegistry(db)
    for text in case.rules:
        registry.define(text)
    return db, registry


@contextlib.contextmanager
def forced_parallel_windows(workers: int = 2,
                            threshold: int = 1) -> Iterator[None]:
    """Force shard-parallel execution on for a block.

    Fuzz datasets sit far below ``SHARD_ROW_THRESHOLD``, so the
    threshold is lowered and the worker count pinned via
    ``REPRO_WORKERS`` for the duration; both are restored afterwards.
    (The name predates the shard executor, when only windows went
    parallel; it is kept because regression files import it.)
    """
    from repro.minidb.plan import shard

    saved_threshold = shard.SHARD_ROW_THRESHOLD
    saved_env = os.environ.get("REPRO_WORKERS")
    shard.SHARD_ROW_THRESHOLD = threshold
    os.environ["REPRO_WORKERS"] = str(workers)
    try:
        yield
    finally:
        shard.SHARD_ROW_THRESHOLD = saved_threshold
        if saved_env is None:
            os.environ.pop("REPRO_WORKERS", None)
        else:
            os.environ["REPRO_WORKERS"] = saved_env


def _diff(baseline: Sequence[tuple],
          got: Sequence[tuple]) -> tuple[list[tuple], list[tuple]]:
    """Bag difference: (rows only in baseline, rows only in got)."""
    expected, actual = Counter(baseline), Counter(got)
    missing = sorted((expected - actual).elements(), key=repr)
    unexpected = sorted((actual - expected).elements(), key=repr)
    return missing, unexpected


def run_case(case: FuzzCase,
             labels: Sequence[str] | None = None) -> OracleReport:
    """Differentially execute *case*; *labels* restricts the sweep
    (the shrinker re-checks only the originally diverged paths)."""
    wanted = set(ALL_LABELS if labels is None else labels)
    report = OracleReport(case=case)
    sql = case.query.sql("caser")

    db, registry = build_database(case)
    engine = DeferredCleansingEngine(db, registry)
    # Genuine tuple-at-a-time interpreted reference: batch execution and
    # query compilation both pinned off, whatever the ambient env says.
    with forced_codegen(False), forced_batch_size(0):
        report.baseline = engine.execute(
            sql, strategies={"naive"}).canonical()

    def compare(label: str, execute: Callable[[], tuple[tuple, ...]],
                ) -> None:
        if label not in wanted:
            return
        try:
            got = execute()
        except RewriteError as error:
            # Infeasibility is a legitimate outcome (Q_e = null), not a
            # divergence; the strategy simply has nothing to check.
            report.results[label] = f"skipped: {error}"
            return
        except Exception as error:  # noqa: BLE001 — the whole point
            report.results[label] = "DIVERGED"
            report.divergences.append(Divergence(
                label=label, kind="error",
                detail=f"{type(error).__name__}: {error}"))
            return
        if got == report.baseline:
            report.results[label] = "ok"
            return
        missing, unexpected = _diff(report.baseline, got)
        report.results[label] = "DIVERGED"
        report.divergences.append(Divergence(
            label=label, kind="rows", missing=missing,
            unexpected=unexpected))

    compare("expanded", lambda: engine.execute(
        sql, strategies={"expanded"}).canonical())
    compare("joinback", lambda: engine.execute(
        sql, strategies={"joinback"}).canonical())
    compare("chosen", lambda: engine.execute(sql).canonical())

    if wanted & {"cached-cold", "cached-warm", "cached-invalidated"}:
        cached_db, cached_registry = build_database(case)
        cached_engine = DeferredCleansingEngine(
            cached_db, cached_registry, cache=CacheOptions())
        compare("cached-cold", lambda: cached_engine.execute(
            sql).canonical())
        compare("cached-warm", lambda: cached_engine.execute(
            sql).canonical())

        if "cached-invalidated" in wanted and case.reads_rows:
            # Race the warm path against a table-version bump: mutate
            # the source table after the region was cached, then query
            # again. The stale region must be dropped, so the cached
            # engine must agree with a fresh naive run over the *new*
            # table state (not the original baseline).
            try:
                probe = dict(zip(READS_COLUMNS, case.reads_rows[0]))
                probe["rtime"] = probe["rtime"] + 1
                cached_db.table("caser").insert(probe)
                cached_db.analyze("caser")
                fresh = DeferredCleansingEngine(cached_db, cached_registry)
                expected = fresh.execute(
                    sql, strategies={"naive"}).canonical()
                got = cached_engine.execute(sql).canonical()
            except Exception as error:  # noqa: BLE001
                report.results["cached-invalidated"] = "DIVERGED"
                report.divergences.append(Divergence(
                    label="cached-invalidated", kind="error",
                    detail=f"{type(error).__name__}: {error}"))
            else:
                if got == expected:
                    report.results["cached-invalidated"] = "ok"
                else:
                    missing, unexpected = _diff(expected, got)
                    report.results["cached-invalidated"] = "DIVERGED"
                    report.divergences.append(Divergence(
                        label="cached-invalidated", kind="rows",
                        missing=missing, unexpected=unexpected))

    if wanted & {"eager", "plan-cache"}:
        eager_db, eager_registry = build_database(case)
        eager_sql = case.query.sql("caser_clean")

        def eager() -> tuple[tuple, ...]:
            materialize_cleansed(eager_db, eager_registry, "caser",
                                 "caser_clean")
            return eager_db.execute(eager_sql).canonical()

        compare("eager", eager)

        def plan_cache_hit() -> tuple[tuple, ...]:
            if "caser_clean" not in eager_db.catalog:
                raise RewriteError("eager path skipped; nothing to re-run")
            result, metrics = eager_db.execute_with_metrics(eager_sql)
            if metrics.plan_cache_hits == 0:
                raise AssertionError(
                    "prepared-plan cache did not serve the repeated query")
            return result.canonical()

        compare("plan-cache", plan_cache_hit)

    def parallel() -> tuple[tuple, ...]:
        options = PlannerOptions(parallel_windows=True)
        parallel_db, parallel_registry = build_database(case)
        parallel_db.options = options
        parallel_engine = DeferredCleansingEngine(parallel_db,
                                                  parallel_registry)
        try:
            with forced_parallel_windows():
                return parallel_engine.execute(
                    sql, strategies={"naive"}).canonical()
        finally:
            parallel_db.close()

    compare("parallel", parallel)

    def vectorized() -> tuple[tuple, ...]:
        vector_db, vector_registry = build_database(case)
        vector_engine = DeferredCleansingEngine(vector_db, vector_registry)
        # Batch size 7: small and odd, so chunk boundaries land mid-way
        # through partitions, join probes, and selection vectors.
        with forced_batch_size(7):
            result, metrics, _ = vector_engine.execute_with_metrics(
                sql, strategies={"naive"})
        # An empty result can ride an empty index range that emits no
        # batches at all; only a non-empty result proves batches flowed.
        if result.rows and metrics.batches == 0:
            raise AssertionError(
                "vectorized strategy executed zero batches — the batch "
                "path did not run")
        return result.canonical()

    compare("vectorized", vectorized)

    def encoded() -> tuple[tuple, ...]:
        from repro.minidb.plan.physical import SeqScan

        enc_db, enc_registry = build_database(case)
        enc_engine = DeferredCleansingEngine(enc_db, enc_registry)
        # Encoded columnar execution over batch size 7: dictionary code
        # mapping, code-range compares, RLE run-skipping and encoded
        # join probes must agree with the plain interpreted baseline.
        with forced_encoding(True), forced_batch_size(7):
            result, metrics, choice = enc_engine.execute_with_metrics(
                sql, strategies={"naive"})
        # Metrics must prove encoded columns actually flowed — but only
        # when a SeqScan ran over the in-memory columnar cache (the
        # disk label's zone-pruned scan path bypasses it, and an empty
        # result can ride an index range that never scans).
        scanned = any(isinstance(node, SeqScan)
                      for node in choice.chosen.physical.walk())
        if (enc_db.storage is None and scanned and result.rows
                and metrics.encoded_columns == 0):
            raise AssertionError(
                "encoded strategy reported zero encoded columns — the "
                "encoded execution path did not run")
        return result.canonical()

    compare("encoded", encoded)

    def compiled() -> tuple[tuple, ...]:
        codegen_db, codegen_registry = build_database(case)
        codegen_engine = DeferredCleansingEngine(codegen_db,
                                                 codegen_registry)
        # Compiled kernels over batch size 7: fused spines must agree
        # with the interpreted baseline at awkward chunk boundaries.
        with forced_codegen(True), forced_batch_size(7):
            result, metrics, choice = codegen_engine.execute_with_metrics(
                sql, strategies={"naive"})
        # Not every plan fuses (uncovered operators fall back to the
        # interpreter) — but when the planner DID wrap a spine, metrics
        # reporting zero fused pipelines would mean the label silently
        # re-tested the interpreted path.
        planned = any(isinstance(node, CompiledSpineOp)
                      for node in choice.chosen.physical.walk())
        if planned and metrics.fused_pipelines == 0:
            raise AssertionError(
                "compiled strategy planned a fused spine but metrics "
                "recorded zero fused pipelines")
        return result.canonical()

    compare("compiled", compiled)

    def sharded() -> tuple[tuple, ...]:
        shard_db, shard_registry = build_database(case)
        shard_engine = DeferredCleansingEngine(shard_db, shard_registry)
        # Shard pool and batch path together: 2 workers over key-mode
        # morsels, with batch size 7 forcing awkward chunk boundaries
        # inside each worker as well.
        try:
            with forced_parallel_windows(workers=2, threshold=1), \
                    forced_batch_size(7):
                result, metrics, choice = shard_engine.execute_with_metrics(
                    sql, strategies={"naive"})
        finally:
            shard_db.close()
        # Not every plan can shard (an equality conjunct may become an
        # IndexRangeScan, which has no SeqScan spine) — but when the
        # planner DID wrap a segment, a silent serial fallback here
        # would mean the label never exercises the pool.
        planned = any(isinstance(node, ExchangeOp)
                      for node in choice.chosen.physical.walk())
        if planned and metrics.sharded_segments == 0:
            raise AssertionError(
                "sharded strategy dispatched zero Exchange segments — "
                "the shard pool did not run")
        return result.canonical()

    compare("sharded", sharded)

    def incremental() -> tuple[tuple, ...]:
        # Streaming replay: load a prefix, warm the region cache, then
        # feed the remaining rows through Database.append in two chunks,
        # re-querying after each. The cached engine is free to patch or
        # invalidate; either way every intermediate answer must match a
        # fresh naive run over the SAME table state (same object — the
        # appended rows sit at the end, so a rebuilt full-load database
        # would not be tie-order comparable). The final state holds
        # exactly the case's rows, so the last answer is also diffed
        # against the global baseline by compare().
        rows = list(case.reads_rows)
        if not rows:
            raise RewriteError("empty dataset; nothing to stream")
        split = max(1, (2 * len(rows)) // 3)
        inc_db, inc_registry = build_database(case,
                                              reads_rows=rows[:split])
        inc_engine = DeferredCleansingEngine(inc_db, inc_registry,
                                             cache=CacheOptions())
        fresh = DeferredCleansingEngine(inc_db, inc_registry)
        got = inc_engine.execute(sql).canonical()
        remainder = rows[split:]
        mid = (len(remainder) + 1) // 2
        for chunk in (remainder[:mid], remainder[mid:]):
            if not chunk:
                continue
            inc_db.append("caser", chunk)
            got = inc_engine.execute(sql).canonical()
            expected = fresh.execute(sql, strategies={"naive"}).canonical()
            if got != expected:
                missing, unexpected = _diff(expected, got)
                raise AssertionError(
                    "incremental answer diverged mid-stream: "
                    f"{len(missing)} missing, {len(unexpected)} "
                    "unexpected rows vs naive over the same state")
        return got

    compare("incremental", incremental)

    def disk() -> tuple[tuple, ...]:
        # Out-of-core replay: build the database on disk, checkpoint
        # and close it, then reopen with a 4-page buffer pool — the
        # query faults every page back in and re-decodes each row from
        # its on-disk representation (nothing can be served from
        # build-time cache frames). The reopened database runs with the
        # fast disk path forced live: zone-map pruning on (any page the
        # zone maps skip must not change the answer) and a 2-page
        # readahead window (prefetched bytes must decode identically to
        # demand reads). Must be byte-identical to the in-memory
        # baseline.
        tmp = tempfile.mkdtemp(prefix="repro-fuzz-disk-")
        saved_prune = os.environ.get("REPRO_ZONE_PRUNE")
        os.environ["REPRO_ZONE_PRUNE"] = "1"
        try:
            build_db, _ = build_database(case, storage="disk",
                                         buffer_pages=4,
                                         storage_path=tmp)
            build_db.shutdown()  # checkpoint: pages + manifest durable
            disk_db = Database(storage="disk", storage_path=tmp,
                               buffer_pages=4, readahead=2)
            try:
                disk_registry = RuleRegistry(disk_db)
                for text in case.rules:
                    disk_registry.define(text)
                disk_engine = DeferredCleansingEngine(disk_db,
                                                      disk_registry)
                with forced_codegen(False), forced_batch_size(0):
                    result = disk_engine.execute(
                        sql, strategies={"naive"}).canonical()
                counters = disk_db.storage.counters
            finally:
                disk_db.shutdown()
        finally:
            if saved_prune is None:
                os.environ.pop("REPRO_ZONE_PRUNE", None)
            else:
                os.environ["REPRO_ZONE_PRUNE"] = saved_prune
            shutil.rmtree(tmp, ignore_errors=True)
        if case.reads_rows and counters["pages_read"] == 0:
            raise AssertionError(
                "disk strategy never faulted a page through the buffer "
                "pool — the storage path did not run")
        return result

    compare("disk", disk)

    def served() -> tuple[tuple, ...]:
        # Wire replay: host the case's database behind a loopback
        # server, declare the cleansing rules in HELLO, and run the
        # cleansed query through the full serving stack — frame
        # encode/decode both ways, the session worker, admission
        # control, and the executor's exclusive cleansed path. The
        # rows crossing the wire as JSON must restore byte-identically.
        from repro.server import ServerClient, serve_loopback

        serve_db, _ = build_database(case)
        try:
            with serve_loopback(serve_db) as handle, \
                    ServerClient(*handle.address) as client:
                client.hello(rules=list(case.rules))
                return client.query(sql, cleansed=True).canonical()
        finally:
            serve_db.shutdown()

    compare("served", served)
    return report
