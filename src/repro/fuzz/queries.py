"""Random user-query generation.

Queries follow the shapes of the ``workloads`` benchmark family
(Figure 6): selections over the reads table — rtime ranges, location /
reader / EPC literals — plus 0..2 star-style dimension joins (``locs``
on ``biz_loc`` with a site predicate, ``steps`` on ``biz_step`` with a
step-type predicate, exactly q2's edges). The projection keeps every
reads column so the oracle's row diff is maximally discriminating:
a MODIFY divergence on any column shows up even when the predicates
never mention it.
"""

from __future__ import annotations

import random

from repro.fuzz.cases import DimensionSpec, QuerySpec
from repro.fuzz.datasets import DatasetProfile

__all__ = ["random_query"]

_LOCS_SCHEMA = (("gln", "varchar"), ("site", "varchar"),
                ("loc_desc", "varchar"))
_STEPS_SCHEMA = (("biz_step", "varchar"), ("type", "varchar"))


def _random_conjuncts(rng: random.Random,
                      profile: DatasetProfile) -> list[str]:
    choices = []
    lower = profile.rtime_quantile(rng.uniform(0.0, 0.5))
    upper = profile.rtime_quantile(rng.uniform(0.5, 1.0))
    choices.append(f"c.rtime <= {upper}")
    choices.append(f"c.rtime >= {lower}")
    choices.append(f"c.biz_loc = '{rng.choice(profile.glns)}'")
    choices.append(f"c.reader != '{rng.choice(profile.readers)}'")
    choices.append(f"c.epc = '{rng.choice(profile.epcs)}'")
    count = rng.randint(0, 3)
    return rng.sample(choices, count)


def _locs_dimension(rng: random.Random,
                    profile: DatasetProfile) -> DimensionSpec:
    predicate = None
    if rng.random() < 0.8:
        predicate = f"l.site = '{rng.choice(profile.sites)}'"
    return DimensionSpec(name="locs", alias="l", fact_key="biz_loc",
                         dim_key="gln", predicate=predicate,
                         rows=list(profile.locs_rows),
                         schema=_LOCS_SCHEMA)


def _steps_dimension(rng: random.Random,
                     profile: DatasetProfile) -> DimensionSpec:
    predicate = None
    if rng.random() < 0.8:
        predicate = f"s.type = '{rng.choice(profile.step_types)}'"
    return DimensionSpec(name="steps", alias="s", fact_key="biz_step",
                         dim_key="biz_step", predicate=predicate,
                         rows=list(profile.steps_rows),
                         schema=_STEPS_SCHEMA)


def random_query(rng: random.Random,
                 profile: DatasetProfile) -> QuerySpec:
    """A random selection with 0..2 dimension joins."""
    dimensions: list[DimensionSpec] = []
    roll = rng.random()
    if roll < 0.25:
        dimensions.append(_locs_dimension(rng, profile))
    elif roll < 0.4:
        dimensions.append(_steps_dimension(rng, profile))
    elif roll < 0.5:
        dimensions.append(_locs_dimension(rng, profile))
        dimensions.append(_steps_dimension(rng, profile))
    return QuerySpec(conjuncts=_random_conjuncts(rng, profile),
                     dimensions=dimensions)
