"""Delta-debugging shrinker for diverging fuzz cases.

On a divergence the raw case is typically dozens of rows, several
rules, and a multi-conjunct query — far more than the bug needs. The
shrinker minimizes along every axis while preserving the failure:

1. **rows** — classic ddmin (Zeller's delta debugging) over the reads
   rows: try subsets, then complements, doubling granularity until
   1-minimal (removing any single row makes the divergence vanish);
2. **rules** — greedy drop, one rule at a time (order matters for rule
   chains, so surviving rules keep their relative order);
3. **query conjuncts** and **dimension joins** — greedy drop likewise;

then loops the passes to a fixpoint (dropping a rule can unlock further
row removal). The failure predicate re-runs the differential oracle
restricted to the originally diverged labels, so each probe costs only
the strategies that matter.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Sequence, TypeVar

from repro.fuzz.cases import FuzzCase
from repro.fuzz.oracle import run_case

__all__ = ["ddmin", "shrink_case"]

Item = TypeVar("Item")


def ddmin(items: Sequence[Item],
          fails: Callable[[list[Item]], bool]) -> list[Item]:
    """Minimal sublist of *items* for which *fails* still holds.

    *fails(items)* must be True on entry; the result is 1-minimal with
    respect to removal of contiguous chunks (and, at granularity
    ``len(items)``, of single elements).
    """
    current = list(items)
    granularity = 2
    while len(current) >= 2:
        chunk = max(1, len(current) // granularity)
        reduced = False
        # Subsets first (fast win when the bug lives in one chunk) ...
        for start in range(0, len(current), chunk):
            subset = current[start:start + chunk]
            if len(subset) < len(current) and fails(subset):
                current = subset
                granularity = 2
                reduced = True
                break
        if reduced:
            continue
        # ... then complements (remove one chunk at a time).
        for start in range(0, len(current), chunk):
            complement = current[:start] + current[start + chunk:]
            if complement and len(complement) < len(current) \
                    and fails(complement):
                current = complement
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if reduced:
            continue
        if granularity >= len(current):
            break
        granularity = min(len(current), granularity * 2)
    if len(current) == 1 and fails([]):
        return []
    return current


def _greedy_drop(items: list[Item],
                 fails: Callable[[list[Item]], bool]) -> list[Item]:
    """Drop elements one at a time (right to left) while still failing."""
    current = list(items)
    index = len(current) - 1
    while index >= 0:
        candidate = current[:index] + current[index + 1:]
        if candidate and fails(candidate):
            current = candidate
        index -= 1
    return current


def shrink_case(case: FuzzCase, diverged_labels: Sequence[str],
                max_rounds: int = 5,
                check: Callable[[FuzzCase], bool] | None = None,
                ) -> FuzzCase:
    """Minimize *case* while some originally-diverged label still
    diverges. *check* overrides the failure predicate (tests use it)."""
    labels = list(diverged_labels)

    def still_fails(candidate: FuzzCase) -> bool:
        if check is not None:
            return check(candidate)
        try:
            report = run_case(candidate, labels=labels)
        except Exception:  # noqa: BLE001 — a crashing probe is no repro
            return False
        return bool(report.diverged_labels() & set(labels))

    current = case
    for _ in range(max_rounds):
        before = current.size()

        rows = ddmin(current.reads_rows,
                     lambda rows: still_fails(current.with_rows(rows)))
        if len(rows) < len(current.reads_rows):
            current = current.with_rows(rows)

        rules = _greedy_drop(
            current.rules,
            lambda rules: still_fails(current.with_rules(rules)))
        if len(rules) < len(current.rules):
            current = current.with_rules(rules)

        query = current.query
        conjuncts = _greedy_drop(
            query.conjuncts,
            lambda kept: still_fails(current.with_query(
                replace(query, conjuncts=list(kept)))))
        # Unlike rows/rules, an empty conjunct list is a legal query.
        if conjuncts and still_fails(current.with_query(
                replace(query, conjuncts=[]))):
            conjuncts = []
        if len(conjuncts) < len(query.conjuncts):
            current = current.with_query(
                replace(query, conjuncts=list(conjuncts)))

        query = current.query
        dimensions = _greedy_drop(
            query.dimensions,
            lambda kept: still_fails(current.with_query(
                replace(query, dimensions=list(kept)))))
        if dimensions and still_fails(
                current.with_query(replace(query, dimensions=[]))):
            dimensions = []
        if len(dimensions) < len(query.dimensions):
            current = current.with_query(
                replace(query, dimensions=list(dimensions)))

        if current.size() == before:
            break
    return current
