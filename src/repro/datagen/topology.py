"""The retailer W's distribution topology (§6.1).

Goods flow through three levels: a distribution center, a warehouse, and
a retail store. Each store is assigned to one warehouse, each warehouse
to one DC. Every site has ``locations_per_site`` locations, each with an
RFID reader.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.datagen.config import GeneratorConfig
from repro.datagen.epc import location_gln

__all__ = ["Site", "Location", "Topology"]


@dataclass(frozen=True)
class Location:
    """One read point: a GLN, its reader id, and its owning site."""

    gln: str
    reader: str
    site_name: str
    description: str


@dataclass
class Site:
    """A DC, warehouse, or store with its locations."""

    name: str
    kind: str  # "dc" | "warehouse" | "store"
    index: int
    locations: list[Location] = field(default_factory=list)


class Topology:
    """The fixed site graph for one generated dataset."""

    def __init__(self, config: GeneratorConfig, rng: random.Random) -> None:
        self.config = config
        self.sites: list[Site] = []
        self.dcs: list[Site] = []
        self.warehouses: list[Site] = []
        self.stores: list[Site] = []
        site_index = 0
        for kind, count, bucket in (
                ("dc", config.distribution_centers, self.dcs),
                ("warehouse", config.warehouses, self.warehouses),
                ("store", config.stores, self.stores)):
            for ordinal in range(count):
                name = f"{_KIND_LABEL[kind]} {ordinal}"
                site = Site(name=name, kind=kind, index=site_index)
                for location_index in range(config.locations_per_site):
                    gln = location_gln(site_index, location_index)
                    site.locations.append(Location(
                        gln=gln,
                        reader=f"reader_{site_index:04d}_{location_index:03d}",
                        site_name=name,
                        description=f"{name} / bay {location_index}"))
                self.sites.append(site)
                bucket.append(site)
                site_index += 1
        # Fixed routing assignments: store -> warehouse -> DC.
        self.store_warehouse = {
            store.index: rng.choice(self.warehouses)
            for store in self.stores}
        self.warehouse_dc = {
            warehouse.index: rng.choice(self.dcs)
            for warehouse in self.warehouses}

    def route_for_store(self, store: Site) -> list[Site]:
        """The DC -> warehouse -> store path goods take to *store*."""
        warehouse = self.store_warehouse[store.index]
        dc = self.warehouse_dc[warehouse.index]
        return [dc, warehouse, store]

    def all_locations(self) -> list[Location]:
        return [location for site in self.sites
                for location in site.locations]


_KIND_LABEL = {
    "dc": "distribution center",
    "warehouse": "warehouse",
    "store": "store",
}
