"""Loading RFIDGen output into a minidb database with the paper's
physical design (§6.1): every column of caseR and palletR indexed except
``reader``; ``parent`` indexed on ``child_epc``; other tables on their
primary keys, plus ``locs.site`` and ``steps.type``.
"""

from __future__ import annotations

from repro.datagen.generator import GeneratedData
from repro.minidb.engine import Database
from repro.minidb.schema import TableSchema
from repro.minidb.types import SqlType

__all__ = ["READS_SCHEMA", "load_into_database"]

#: The reads-table schema of Figure 2.
READS_SCHEMA = TableSchema.of(
    ("epc", SqlType.VARCHAR),
    ("rtime", SqlType.TIMESTAMP),
    ("reader", SqlType.VARCHAR),
    ("biz_loc", SqlType.VARCHAR),
    ("biz_step", SqlType.VARCHAR),
)

PARENT_SCHEMA = TableSchema.of(
    ("child_epc", SqlType.VARCHAR),
    ("parent_epc", SqlType.VARCHAR),
)

EPC_INFO_SCHEMA = TableSchema.of(
    ("epc", SqlType.VARCHAR),
    ("product", SqlType.VARCHAR),
    ("lot_number", SqlType.VARCHAR),
    ("manufacture_date", SqlType.TIMESTAMP),
    ("expiry_date", SqlType.TIMESTAMP),
)

PRODUCT_SCHEMA = TableSchema.of(
    ("product", SqlType.VARCHAR),
    ("manufacturer", SqlType.VARCHAR),
)

LOCS_SCHEMA = TableSchema.of(
    ("gln", SqlType.VARCHAR),
    ("site", SqlType.VARCHAR),
    ("loc_desc", SqlType.VARCHAR),
)

STEPS_SCHEMA = TableSchema.of(
    ("biz_step", SqlType.VARCHAR),
    ("type", SqlType.VARCHAR),
)


def load_into_database(data: GeneratedData,
                       database: Database | None = None) -> Database:
    """Create the seven tables, load *data*, build indexes, run stats."""
    db = database or Database()
    db.create_table("caser", READS_SCHEMA)
    db.create_table("palletr", READS_SCHEMA)
    db.create_table("parent", PARENT_SCHEMA)
    db.create_table("epc_info", EPC_INFO_SCHEMA)
    db.create_table("product", PRODUCT_SCHEMA)
    db.create_table("locs", LOCS_SCHEMA)
    db.create_table("steps", STEPS_SCHEMA)

    db.load("caser", data.case_reads)
    db.load("palletr", data.pallet_reads)
    db.load("parent", data.parent_rows)
    db.load("epc_info", data.epc_info_rows)
    db.load("product", data.product_rows)
    db.load("locs", data.location_rows)
    db.load("steps", data.step_rows)

    for reads_table in ("caser", "palletr"):
        for column in ("epc", "rtime", "biz_loc", "biz_step"):
            db.create_index(reads_table, column)
    db.create_index("parent", "child_epc")
    db.create_index("epc_info", "epc")
    db.create_index("product", "product")
    db.create_index("locs", "gln")
    db.create_index("locs", "site")
    db.create_index("steps", "biz_step")
    db.create_index("steps", "type")
    db.analyze()
    return db
