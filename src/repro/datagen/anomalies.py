"""Anomaly injection: the reverse of the five cleansing rules' actions
(§6.1: "We add five types of anomalies described in Section 4 by
reversing the action of the cleansing rules").

Anomalies affect case reads only — pallets are read reliably. Given an
anomaly percentage D, ``round(D% * clean case reads)`` anomalies are
injected, split evenly across the five classes:

==========  ==============================================================
duplicate   insert a copy of a read at the same location within t1
reader      turn a read into a 'readerX' destination read and insert a
            false transport read shortly before it at another location
replacing   insert a cross read at loc2 followed by the business-flow
            read at locA within t3 (cleansing re-locates it to loc1)
cycle       insert a Y, X location bounce after a read at X (cleansing
            deletes the middle Y read)
missing     delete a case read that has a later read together with its
            pallet (so the missing rule can compensate from pallet data)
==========  ==============================================================

Note the paper's remark that missing-read anomalies *reduce* the raw
data volume while the insert-style anomalies grow it.
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.datagen.generator import GeneratedData

__all__ = ["AnomalyCounts", "AnomalyInjector"]

ANOMALY_KINDS = ("duplicate", "reader", "replacing", "cycle", "missing")


@dataclass
class AnomalyCounts:
    """Bookkeeping of injected anomalies."""

    clean_case_reads: int = 0
    by_kind: dict[str, int] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return sum(self.by_kind.values())


class AnomalyInjector:
    """Mutates a :class:`GeneratedData`'s case reads in place."""

    def __init__(self, data: "GeneratedData",
                 rng: random.Random | None = None, *,
                 seed: int | None = None) -> None:
        # Injection draws every random choice from a single plumbed RNG:
        # the generator's own (shared stream), or one seeded here from
        # *seed* / ``config.seed`` for standalone reproducible use.
        if rng is None:
            rng = random.Random(data.config.seed if seed is None else seed)
        self.data = data
        self.rng = rng
        self.config = data.config
        # Case reads grouped into per-EPC sequences sorted by rtime.
        self._sequences: dict[str, list[list]] = {}
        for row in data.case_reads:
            self._sequences.setdefault(row[0], []).append(list(row))
        for sequence in self._sequences.values():
            sequence.sort(key=lambda row: row[1])
        self._epcs = sorted(self._sequences)
        self._glns = sorted(row[0] for row in data.location_rows)
        # Reader ids observed per location in the generated reads.
        self._reader_of: dict[str, str] = {}
        for read_rows in (data.case_reads, data.pallet_reads):
            for row in read_rows:
                self._reader_of.setdefault(row[3], row[2])
        self._steps = [name for name, _ in data.step_rows]

    # ------------------------------------------------------------------

    def inject(self) -> AnomalyCounts:
        total = round(self.config.anomaly_percent / 100.0
                      * len(self.data.case_reads))
        share, remainder = divmod(total, len(ANOMALY_KINDS))
        injectors = {
            "duplicate": self._inject_duplicate,
            "reader": self._inject_reader,
            "replacing": self._inject_replacing,
            "cycle": self._inject_cycle,
            "missing": self._inject_missing,
        }
        counts = self.data.anomalies
        for position, kind in enumerate(ANOMALY_KINDS):
            budget = share + (1 if position < remainder else 0)
            injected = 0
            for _ in range(budget):
                injected += injectors[kind]()
            counts.by_kind[kind] = injected
        self._rebuild()
        return counts

    def _rebuild(self) -> None:
        rows: list[tuple] = []
        for epc in self._epcs:
            rows.extend(tuple(row) for row in self._sequences[epc])
        self.data.case_reads = rows

    # ------------------------------------------------------------------

    def _random_sequence(self) -> list[list]:
        return self._sequences[self.rng.choice(self._epcs)]

    def _insert(self, sequence: list[list], row: list) -> None:
        position = bisect.bisect_left([r[1] for r in sequence], row[1])
        sequence.insert(position, row)

    def _random_other_gln(self, gln: str) -> str:
        while True:
            candidate = self.rng.choice(self._glns)
            if candidate != gln:
                return candidate

    def _reader_for(self, gln: str) -> str:
        return self._reader_of.get(gln, f"reader_{gln}")

    def _random_step(self) -> str:
        return self.rng.choice(self._steps)

    # ------------------------------------------------------------------

    def _inject_duplicate(self) -> int:
        sequence = self._random_sequence()
        source = self.rng.choice(sequence)
        offset = self.rng.randrange(1, self.config.t1_duplicate)
        copy = list(source)
        copy[1] = source[1] + offset
        self._insert(sequence, copy)
        return 1

    def _inject_reader(self) -> int:
        sequence = self._random_sequence()
        destination = self.rng.choice(sequence)
        destination[2] = self.data.reader_x
        gln = self._random_other_gln(destination[3])
        false_time = destination[1] - self.rng.randrange(
            1, self.config.t2_reader)
        false_row = [destination[0], false_time, self._reader_for(gln), gln,
                     self._random_step()]
        self._insert(sequence, false_row)
        return 1

    def _inject_replacing(self) -> int:
        sequence = self._random_sequence()
        anchor = self.rng.choice(sequence)
        base_time = anchor[1] + self.rng.randrange(
            self.config.t1_duplicate + 60, self.config.min_read_latency // 2)
        cross = [anchor[0], base_time, self._reader_for(self.data.loc2),
                 self.data.loc2, self._random_step()]
        follow_time = base_time + self.rng.randrange(
            1, self.config.t3_replacing)
        follow = [anchor[0], follow_time, self._reader_for(self.data.loc_a),
                  self.data.loc_a, self._random_step()]
        self._insert(sequence, cross)
        self._insert(sequence, follow)
        return 1

    def _inject_cycle(self) -> int:
        sequence = self._random_sequence()
        anchor = self.rng.choice(sequence)
        bounce_gln = self._random_other_gln(anchor[3])
        gap = self.config.t1_duplicate + 60
        first_time = anchor[1] + self.rng.randrange(gap, 3 * gap)
        second_time = first_time + self.rng.randrange(gap, 3 * gap)
        bounce = [anchor[0], first_time, self._reader_for(bounce_gln),
                  bounce_gln, self._random_step()]
        back = [anchor[0], second_time, self._reader_for(anchor[3]),
                anchor[3], self._random_step()]
        self._insert(sequence, bounce)
        self._insert(sequence, back)
        return 1

    def _inject_missing(self) -> int:
        sequence = self._random_sequence()
        if len(sequence) < 2:
            return 0
        # Keep the final read so a later together-read exists and the
        # missing rule can compensate.
        position = self.rng.randrange(0, len(sequence) - 1)
        del sequence[position]
        return 1
