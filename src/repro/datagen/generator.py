"""RFIDGen core: clean supply-chain trace generation (§6.1).

Every pallet travels a DC -> warehouse -> store route determined by the
topology. At each of the three sites it is read ``reads_per_site`` times
by randomly selected readers; consecutive reads are 1–36 hours apart.
Each of its cases is read by the same reader within ``pallet_case_gap``
seconds of the pallet. Case reads receive anomalies afterwards (see
``anomalies``); pallet reads stay reliable, as the paper assumes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.datagen.anomalies import AnomalyInjector, AnomalyCounts
from repro.datagen.config import GeneratorConfig
from repro.datagen.epc import case_epc, pallet_epc
from repro.datagen.topology import Location, Topology

__all__ = ["ReadRow", "GeneratedData", "RFIDGen"]

#: One RFID read: (epc, rtime, reader, biz_loc, biz_step).
ReadRow = tuple[str, int, str, str, str]


@dataclass
class GeneratedData:
    """All seven tables plus generation metadata."""

    config: GeneratorConfig
    case_reads: list[ReadRow] = field(default_factory=list)
    pallet_reads: list[ReadRow] = field(default_factory=list)
    parent_rows: list[tuple[str, str]] = field(default_factory=list)
    epc_info_rows: list[tuple] = field(default_factory=list)
    product_rows: list[tuple[str, str]] = field(default_factory=list)
    location_rows: list[tuple[str, str, str]] = field(default_factory=list)
    step_rows: list[tuple[str, str]] = field(default_factory=list)
    #: Reader id used by the reader rule ('readerX' scenario).
    reader_x: str = "readerX"
    #: GLNs chosen for the replacing-rule scenario.
    loc1: str = ""
    loc2: str = ""
    loc_a: str = ""
    anomalies: AnomalyCounts = field(default_factory=AnomalyCounts)

    @property
    def clean_case_read_count(self) -> int:
        """Case reads before anomaly injection."""
        return self.anomalies.clean_case_reads

    def rtime_bounds(self) -> tuple[int, int]:
        times = [row[1] for row in self.case_reads]
        return min(times), max(times)


class RFIDGen:
    """Deterministic generator; same config => identical dataset."""

    def __init__(self, config: GeneratorConfig | None = None) -> None:
        self.config = config or GeneratorConfig()
        self.config.validate()

    # ------------------------------------------------------------------

    def generate(self, seed: int | None = None) -> GeneratedData:
        """Produce the full dataset, including anomalies if configured.

        All randomness flows from one :class:`random.Random` seeded here
        and plumbed through topology construction, shipment simulation,
        and anomaly injection — there is no module-level RNG anywhere in
        ``datagen``, so a (config, seed) pair fully determines the
        dataset. *seed* overrides ``config.seed``, letting callers (the
        differential fuzzer in particular) draw many reproducible
        datasets from one config.
        """
        config = self.config
        rng = random.Random(config.seed if seed is None else seed)
        topology = Topology(config, rng)
        data = GeneratedData(config=config)
        self._reference_tables(data, topology, rng)
        steps = [name for name, _ in data.step_rows]
        self._shipments(data, topology, steps, rng)
        data.anomalies.clean_case_reads = len(data.case_reads)
        # The replacing-rule scenario locations: three distinct GLNs.
        glns = [row[0] for row in data.location_rows]
        data.loc1, data.loc2, data.loc_a = rng.sample(glns, 3)
        if config.anomaly_percent > 0:
            injector = AnomalyInjector(data, rng)
            injector.inject()
        data.case_reads.sort(key=lambda row: row[1])
        data.pallet_reads.sort(key=lambda row: row[1])
        return data

    # ------------------------------------------------------------------

    def _reference_tables(self, data: GeneratedData, topology: Topology,
                          rng: random.Random) -> None:
        config = self.config
        for site in topology.sites:
            for location in site.locations:
                data.location_rows.append(
                    (location.gln, location.site_name, location.description))
        for step_index in range(config.business_steps):
            step_type = f"type_{step_index % config.step_types:02d}"
            data.step_rows.append((f"step_{step_index:03d}", step_type))
        for product_index in range(config.products):
            manufacturer = rng.randrange(config.manufacturers)
            data.product_rows.append(
                (f"product_{product_index:04d}",
                 f"manufacturer_{manufacturer:03d}"))

    def _shipments(self, data: GeneratedData, topology: Topology,
                   steps: list[str], rng: random.Random) -> None:
        config = self.config
        case_serial = 0
        for pallet_serial in range(config.scale):
            pallet = pallet_epc(pallet_serial)
            store = rng.choice(topology.stores)
            route = topology.route_for_store(store)
            case_count = rng.randint(config.min_cases_per_pallet,
                                     config.max_cases_per_pallet)
            cases = [case_epc(case_serial + offset)
                     for offset in range(case_count)]
            case_serial += case_count
            for case in cases:
                data.parent_rows.append((case, pallet))
                product = rng.choice(data.product_rows)[0]
                manufacture = config.window_start \
                    - rng.randrange(30 * 86400, 365 * 86400)
                data.epc_info_rows.append(
                    (case, product, f"lot_{rng.randrange(10_000):05d}",
                     manufacture, manufacture + 2 * 365 * 86400))
            read_time = config.window_start \
                + rng.randrange(config.window_seconds)
            for site in route:
                for _ in range(config.reads_per_site):
                    location = rng.choice(site.locations)
                    self._record_read(data, pallet, cases, location,
                                      read_time, steps, rng)
                    read_time += rng.randrange(config.min_read_latency,
                                               config.max_read_latency)

    def _record_read(self, data: GeneratedData, pallet: str,
                     cases: list[str], location: Location, read_time: int,
                     steps: list[str], rng: random.Random) -> None:
        config = self.config
        data.pallet_reads.append(
            (pallet, read_time, location.reader, location.gln,
             rng.choice(steps)))
        for case in cases:
            offset = rng.randrange(1, config.pallet_case_gap)
            data.case_reads.append(
                (case, read_time + offset, location.reader, location.gln,
                 rng.choice(steps)))
