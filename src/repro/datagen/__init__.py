"""RFIDGen — the paper's synthetic supply-chain generator (§6.1).

Generates the seven-table retailer schema of Figure 5 (caseR, palletR,
parent, EPC_info, product, locs, steps), simulates shipments flowing
DC -> warehouse -> store, and injects the five anomaly classes by
reversing the cleansing rules' actions.
"""

from repro.datagen.config import GeneratorConfig
from repro.datagen.generator import GeneratedData, RFIDGen
from repro.datagen.loader import load_into_database

__all__ = ["GeneratorConfig", "GeneratedData", "RFIDGen",
           "load_into_database"]
