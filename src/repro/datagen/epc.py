"""EPC identifier generation.

The paper identifies every shipment with a 96-bit EPC stored as a
50-byte varchar. We render SGTIN-96-style URNs: a fixed prefix, a
company/manufacturer segment, an item segment, and a serial, zero-padded
so every identifier is exactly 50 characters. Case and pallet namespaces
are disjoint, and identifiers are never reused (the paper's assumption).
"""

from __future__ import annotations

__all__ = ["case_epc", "pallet_epc", "GLN_LENGTH", "location_gln"]

#: Global Location Numbers are 13 characters (§6.1).
GLN_LENGTH = 13

_CASE_PREFIX = "urn:epc:id:sgtin:c."
_PALLET_PREFIX = "urn:epc:id:sscc:p.."


def _pad(prefix: str, serial: int) -> str:
    body = f"{prefix}{serial:d}"
    if len(body) > 50:
        raise ValueError(f"EPC serial {serial} overflows 50 characters")
    return prefix + str(serial).zfill(50 - len(prefix))


def case_epc(serial: int) -> str:
    """The 50-character EPC of case number *serial*."""
    return _pad(_CASE_PREFIX, serial)


def pallet_epc(serial: int) -> str:
    """The 50-character EPC of pallet number *serial*."""
    return _pad(_PALLET_PREFIX, serial)


def location_gln(site_index: int, location_index: int) -> str:
    """A 13-character GLN unique per (site, location)."""
    return f"{site_index:06d}{location_index:06d}0"[:GLN_LENGTH]
