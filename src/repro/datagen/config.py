"""Configuration for RFIDGen.

Defaults follow §6.1 of the paper, with one documented adjustment: the
paper says "1,000 retail stores" yet also "all 13,000 distinct
locations" (= (5 + 25 + 100) sites x 100 locations); we default to 100
stores so the location count matches the stated 13,000, and both knobs
are configurable.

The paper's scale factor ``s`` is the number of pallet EPCs; a given
``s`` yields approximately ``s*30`` pallet reads, ``s*50`` cases and
``s*1500`` case reads.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DataGenError
from repro.minidb.types import DAY, HOUR, MINUTE

__all__ = ["GeneratorConfig"]


@dataclass
class GeneratorConfig:
    """All RFIDGen knobs; defaults are the paper's settings (scaled)."""

    #: Scale factor s = number of pallet EPCs.
    scale: int = 20
    #: Random seed (generation is fully deterministic given the config).
    seed: int = 20060912  # VLDB'06 started September 12, 2006

    # -- topology --------------------------------------------------------
    distribution_centers: int = 5
    warehouses: int = 25
    stores: int = 100
    locations_per_site: int = 100

    # -- reference data ----------------------------------------------------
    products: int = 1000
    manufacturers: int = 50
    business_steps: int = 100
    step_types: int = 10

    # -- shipment simulation ---------------------------------------------
    #: Reads recorded per site a shipment passes through.
    reads_per_site: int = 10
    min_cases_per_pallet: int = 20
    max_cases_per_pallet: int = 80
    #: First-read times are drawn from a window this many days long.
    time_window_days: int = 5 * 365
    #: Consecutive reads of one shipment are 1..36 hours apart.
    min_read_latency: int = 1 * HOUR
    max_read_latency: int = 36 * HOUR
    #: A case is read within this many seconds of its pallet.
    pallet_case_gap: int = 10 * MINUTE

    # -- anomalies -------------------------------------------------------
    #: Percentage of case reads turned into / affected by anomalies.
    anomaly_percent: float = 0.0
    #: Rule time constants (t1, t2, t3 of §4.3), in seconds.
    t1_duplicate: int = 5 * MINUTE
    t2_reader: int = 10 * MINUTE
    t3_replacing: int = 20 * MINUTE

    #: Epoch of the simulation window (2001-01-01, five years before the
    #: paper's publication).
    window_start: int = 978_307_200

    def validate(self) -> None:
        if self.scale <= 0:
            raise DataGenError("scale must be positive")
        if self.min_cases_per_pallet > self.max_cases_per_pallet:
            raise DataGenError("min_cases_per_pallet exceeds max")
        if not 0.0 <= self.anomaly_percent <= 100.0:
            raise DataGenError("anomaly_percent must be within [0, 100]")
        if self.reads_per_site < 1:
            raise DataGenError("reads_per_site must be at least 1")
        if self.min_read_latency <= self.pallet_case_gap:
            raise DataGenError(
                "min_read_latency must exceed pallet_case_gap so reads at "
                "different sites cannot interleave")

    @property
    def window_seconds(self) -> int:
        return self.time_window_days * DAY

    @property
    def sites_total(self) -> int:
        return self.distribution_centers + self.warehouses + self.stores
