"""Query analysis for the rewrite engine.

Locates the reads table inside a user query (it may be nested in a CTE
or derived table, as in the paper's q1), and splits the enclosing
statement's predicates into:

* ``s`` — conjuncts local to the reads table (unqualified, over R's
  columns); this is the condition the Figure 4 algorithm binds to the
  target reference;
* join edges to dimension tables with their local predicates and
  estimated selectivities (the inputs to the paper's §5.2/§5.3 join
  pushdown heuristic);
* everything else, which stays untouched in the rewritten query.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import RewriteError
from repro.minidb.engine import Database
from repro.minidb.expressions import (
    BinaryOp,
    ColumnRef,
    Expr,
    InSubquery,
    and_all,
)
from repro.minidb.optimizer.cardinality import SelectivityEstimator
from repro.minidb.plan.builder import split_conjuncts
from repro.minidb.plan.planschema import PlanSchema
from repro.minidb.sqlparse.ast import (
    DerivedTable,
    JoinRef,
    SelectItem,
    SelectStmt,
    TableName,
    TableRef,
)

__all__ = ["DimensionJoin", "QueryContext", "extract_context"]


@dataclass
class DimensionJoin:
    """An n:1 join edge from the reads table to a dimension table."""

    #: The reads-table join column (unqualified).
    fact_key: str
    #: The dimension table reference.
    table: TableName
    #: The dimension-side join column (unqualified).
    dim_key: str
    #: Conjuncts local to the dimension (qualified with its binding).
    local_conjuncts: list[Expr] = field(default_factory=list)
    #: Estimated selectivity of the local conjuncts on the dimension.
    selectivity: float = 1.0

    def in_conjunct(self) -> InSubquery:
        """``R.K IN (SELECT Kd FROM D WHERE S_d)`` as an expression.

        The reads-side key is unqualified, matching the ``s`` conjunct
        convention.
        """
        where = and_all([_strip_binding(conjunct, self.table.binding)
                         for conjunct in self.local_conjuncts])
        subquery = SelectStmt(
            items=[SelectItem(expr=ColumnRef(self.dim_key))],
            from_refs=[TableName(self.table.name)],
            where=where)
        return InSubquery(ColumnRef(self.fact_key), subquery)


@dataclass
class QueryContext:
    """Everything the rewrite strategies need about one query."""

    statement: SelectStmt          # the full user statement
    target_statement: SelectStmt   # the SELECT that FROMs the reads table
    table_ref: TableName           # the reads-table reference
    #: Conjuncts local to the reads table, with qualifiers stripped.
    s_conjuncts: list[Expr] = field(default_factory=list)
    #: The original (qualified) forms of ``s_conjuncts``, aligned by index.
    s_original: list[Expr] = field(default_factory=list)
    #: Remaining conjuncts of the target statement's WHERE.
    other_conjuncts: list[Expr] = field(default_factory=list)
    #: Dimension joins ordered ascending by local-predicate selectivity.
    dimensions: list[DimensionJoin] = field(default_factory=list)

    @property
    def binding(self) -> str:
        return self.table_ref.binding


def _strip_binding(expr: Expr, binding: str) -> Expr:
    mapping = {ref: ColumnRef(ref.name)
               for ref in expr.referenced_columns()
               if ref.qualifier == binding}
    return expr.substitute(mapping)


def _flatten_refs(ref: TableRef) -> list[TableRef]:
    if isinstance(ref, JoinRef):
        return _flatten_refs(ref.left) + _flatten_refs(ref.right)
    return [ref]


def _join_conditions(ref: TableRef) -> list[Expr]:
    if isinstance(ref, JoinRef):
        inherited = _join_conditions(ref.left) + _join_conditions(ref.right)
        if ref.kind == "inner" and ref.condition is not None:
            inherited.extend(split_conjuncts(ref.condition))
        return inherited
    return []


def _statements_containing(statement: SelectStmt, table_name: str,
                           ) -> list[tuple[SelectStmt, TableName]]:
    """All (statement, ref) pairs where *table_name* is FROMed directly."""
    found: list[tuple[SelectStmt, TableName]] = []

    def visit(select: SelectStmt) -> None:
        for cte in select.ctes:
            visit(cte.select)
        for from_ref in select.from_refs:
            for leaf in _flatten_refs(from_ref):
                if isinstance(leaf, TableName) and leaf.name == table_name:
                    found.append((select, leaf))
                elif isinstance(leaf, DerivedTable):
                    visit(leaf.select)
        if select.set_op is not None:
            visit(select.set_op.right)
        for conjunct in split_conjuncts(select.where):
            for node in conjunct.walk():
                if isinstance(node, InSubquery):
                    visit(node.subquery)

    visit(statement)
    return found


def extract_context(statement: SelectStmt, table_name: str,
                    database: Database) -> QueryContext:
    """Locate the reads table and classify the enclosing predicates.

    Raises :class:`RewriteError` when the table appears other than
    exactly once (the naive strategy still handles those queries).
    """
    table_name = table_name.lower()
    occurrences = _statements_containing(statement, table_name)
    if len(occurrences) != 1:
        raise RewriteError(
            f"table {table_name!r} appears {len(occurrences)} times in the "
            "query; the expanded/join-back rewrites require exactly one "
            "reference")
    target_statement, table_ref = occurrences[0]
    context = QueryContext(statement=statement,
                           target_statement=target_statement,
                           table_ref=table_ref)
    reads_table = database.table(table_name)
    reads_columns = set(reads_table.schema.names)

    sibling_refs = []
    for from_ref in target_statement.from_refs:
        sibling_refs.extend(_flatten_refs(from_ref))
    dim_tables: dict[str, TableName] = {}
    dim_columns: dict[str, set[str]] = {}
    for leaf in sibling_refs:
        if leaf is table_ref:
            continue
        if isinstance(leaf, TableName) and leaf.name in database.catalog:
            dim_tables[leaf.binding] = leaf
            dim_columns[leaf.binding] = set(
                database.table(leaf.name).schema.names)

    all_dim_columns = set()
    for columns in dim_columns.values():
        all_dim_columns |= columns

    binding = table_ref.binding
    conjuncts = split_conjuncts(target_statement.where)
    conjuncts += _join_conditions(target_statement.from_refs[0]) \
        if target_statement.from_refs else []
    for from_ref in target_statement.from_refs[1:]:
        conjuncts += _join_conditions(from_ref)

    dim_locals: dict[str, list[Expr]] = {name: [] for name in dim_tables}
    join_edges: list[tuple[str, str, str]] = []  # (fact key, dim, dim key)

    for conjunct in conjuncts:
        qualifiers = set()
        local_to_reads = True
        for ref in conjunct.referenced_columns():
            if ref.qualifier == binding:
                qualifiers.add(binding)
            elif ref.qualifier in dim_tables:
                qualifiers.add(ref.qualifier)
                local_to_reads = False
            elif ref.qualifier is None and ref.name in reads_columns \
                    and ref.name not in all_dim_columns:
                qualifiers.add(binding)
            else:
                qualifiers.add("?")
                local_to_reads = False
        if local_to_reads and qualifiers <= {binding}:
            context.s_original.append(conjunct)
            context.s_conjuncts.append(_strip_binding(conjunct, binding))
            continue
        context.other_conjuncts.append(conjunct)
        # Join edge detection: R.K = D.Kd
        if isinstance(conjunct, BinaryOp) and conjunct.op == "=" \
                and isinstance(conjunct.left, ColumnRef) \
                and isinstance(conjunct.right, ColumnRef):
            left, right = conjunct.left, conjunct.right
            if right.qualifier == binding and left.qualifier in dim_tables:
                left, right = right, left
            if left.qualifier == binding and right.qualifier in dim_tables:
                join_edges.append((left.name, right.qualifier, right.name))
        elif len(qualifiers) == 1:
            dim_binding = next(iter(qualifiers))
            if dim_binding in dim_locals:
                dim_locals[dim_binding].append(conjunct)

    estimator = SelectivityEstimator(database.stats)
    for fact_key, dim_binding, dim_key in join_edges:
        dim_ref = dim_tables[dim_binding]
        dim_table = database.table(dim_ref.name)
        locals_ = dim_locals.get(dim_binding, [])
        selectivity = 1.0
        if locals_:
            schema = PlanSchema.from_table(dim_table.schema, dim_binding,
                                           table_name=dim_ref.name)
            selectivity = estimator.selectivity(and_all(locals_), schema)
        context.dimensions.append(DimensionJoin(
            fact_key=fact_key, table=dim_ref, dim_key=dim_key,
            local_conjuncts=list(locals_), selectivity=selectivity))
    context.dimensions.sort(key=lambda dim: dim.selectivity)
    return context
