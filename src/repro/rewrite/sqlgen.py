"""Rewritten-query SQL emission (architecture step 5).

The paper's rewrite engine hands the DBMS a *SQL statement*. The plan
transformer path (:mod:`repro.rewrite.strategies`) is what the engine
executes internally, but this module emits the equivalent rewritten SQL
text — the user query with the reads table replaced by a derived table
composing σ_ec / the join-back semi-join with the persisted rule
templates — so the rewrite is portable to any SQL/OLAP-capable DBMS.

View-input rules (the missing rule's derived FROM table) compose by
substituting the cleansed-so-far derived table for the reads table
inside the view text.

The emitted SQL round-trips through minidb itself: the test suite
executes it and compares against the plan-transform result.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import RewriteError
from repro.minidb.engine import Database
from repro.minidb.expressions import Expr, and_all
from repro.minidb.sqlparse import parse_select
from repro.minidb.sqlparse.ast import (
    DerivedTable,
    JoinRef,
    SelectStmt,
    TableName,
    TableRef,
)
from repro.rewrite.context import extract_context
from repro.rewrite.expanded import analyze_expanded
from repro.sqlts.compiler import CompiledRule
from repro.sqlts.registry import RuleRegistry

__all__ = ["rewritten_sql", "cleansed_table_sql"]


def _substitute_table(statement: SelectStmt, name: str,
                      replacement: SelectStmt) -> None:
    """Replace every FROM reference to *name* with a derived table
    (in place), keeping the original binding."""

    def rewrite_ref(ref: TableRef) -> TableRef:
        if isinstance(ref, TableName) and ref.name == name:
            return DerivedTable(replacement, ref.binding)
        if isinstance(ref, JoinRef):
            ref.left = rewrite_ref(ref.left)
            ref.right = rewrite_ref(ref.right)
        if isinstance(ref, DerivedTable):
            visit(ref.select)
        return ref

    def visit(select: SelectStmt) -> None:
        for cte in select.ctes:
            visit(cte.select)
        select.from_refs = [rewrite_ref(ref) for ref in select.from_refs]
        if select.set_op is not None:
            visit(select.set_op.right)

    visit(statement)


def cleansed_table_sql(database: Database, registry: RuleRegistry,
                       rules: Sequence[CompiledRule], table_name: str,
                       base_where: Expr | None,
                       sequence_subquery: str | None = None) -> str:
    """SQL text of the cleansed reads table.

    ``base_where`` is the expanded condition pushed into R (None for the
    naive form); ``sequence_subquery`` adds the join-back restriction
    ``ckey IN (<subquery>)``. The rule chain is composed from each
    rule's SQL/OLAP template; view-input rules get the view text with
    the cleansed-so-far derived table substituted for R.
    """
    table_name = table_name.lower()
    columns = list(database.table(table_name).schema.names)
    clauses = []
    if base_where is not None:
        clauses.append(base_where.to_sql())
    if sequence_subquery is not None:
        ckey, = {compiled.rule.cluster_key for compiled in rules}
        clauses.append(f"{ckey} IN ({sequence_subquery})")
    current = f"SELECT {', '.join(columns)} FROM {table_name}"
    if clauses:
        current += " WHERE " + " AND ".join(clauses)
    current_columns = list(columns)
    for compiled in rules:
        rule = compiled.rule
        if rule.from_table != rule.on_table:
            view_sql = registry.view_sql(rule.from_table)
            if view_sql is None:
                raise RewriteError(
                    f"rule {compiled.name!r} reads from unregistered view "
                    f"{rule.from_table!r}")
            view_statement = parse_select(view_sql)
            _substitute_table(view_statement, rule.on_table,
                              parse_select(current))
            if sequence_subquery is not None:
                ckey = rule.cluster_key
                wrapped = (f"SELECT * FROM ({view_statement.to_sql()}) "
                           f"_view_{compiled.name} "
                           f"WHERE {ckey} IN ({sequence_subquery})")
            else:
                wrapped = view_statement.to_sql()
            # The view widens the schema (e.g. is_pallet).
            view_plan_columns = _view_columns(database, registry, rule)
            current = compiled.sql_template(view_plan_columns) \
                .format(input=f"({wrapped})")
            current_columns = list(view_plan_columns)
            for created in compiled.assignments:
                if created not in current_columns:
                    current_columns.append(created)
        else:
            current = compiled.sql_template(current_columns) \
                .format(input=f"({current})")
            for created in compiled.assignments:
                if created not in current_columns:
                    current_columns.append(created)
    return (f"SELECT {', '.join(columns)} "
            f"FROM ({current}) _cleansed_{table_name}")


def _view_columns(database: Database, registry: RuleRegistry,
                  rule) -> list[str]:
    """Output column names of a rule-input view."""
    from repro.minidb.plan.builder import build_plan

    view = registry.view(rule.from_table)
    plan = build_plan(view, database.catalog)
    return [field.name for field in plan.schema]


def rewritten_sql(database: Database, registry: RuleRegistry,
                  query: str | SelectStmt,
                  strategy: str = "expanded") -> str:
    """The full rewritten SQL for *query* under *strategy*.

    Strategies: "naive", "expanded" (raises when infeasible), or
    "joinback". The emitted text is self-contained SQL the host DBMS can
    run directly; executing it in minidb matches the plan-based engine.
    """
    statement = parse_select(query) if isinstance(query, str) else \
        parse_select(query.to_sql())
    dirty = sorted(registry.tables_with_rules() & _tables_of(statement))
    if not dirty:
        return statement.to_sql()
    if len(dirty) > 1:
        raise RewriteError("SQL emission supports one rule-governed table "
                           "per query")
    table_name = dirty[0]
    context = extract_context(statement, table_name, database)
    rules = registry.rules_for(table_name)
    reads_columns = set(database.table(table_name).schema.names)
    analysis = analyze_expanded([compiled.rule for compiled in rules],
                                context.s_conjuncts, reads_columns)
    if strategy == "naive":
        cleansed = cleansed_table_sql(database, registry, rules,
                                      table_name, base_where=None)
    elif strategy == "expanded":
        if not analysis.feasible:
            raise RewriteError(
                "the expanded rewrite is infeasible for this query/rule "
                "combination; use 'joinback'")
        cleansed = cleansed_table_sql(
            database, registry, rules, table_name,
            base_where=and_all(analysis.ec_conjuncts))
    elif strategy == "joinback":
        ckey, = {compiled.rule.cluster_key for compiled in rules}
        # Conjuncts over MODIFY-ed columns cannot restrict the sequence
        # list (membership may change under modification).
        modified: set[str] = set()
        for compiled in rules:
            modified.update(compiled.rule.action.assignments)
        stable = [conjunct for conjunct in context.s_conjuncts
                  if not ({ref.name for ref in
                           conjunct.referenced_columns()} & modified)]
        seq_where = and_all(stable)
        subquery = f"SELECT DISTINCT {ckey} FROM {table_name}"
        if seq_where is not None:
            subquery += f" WHERE {seq_where.to_sql()}"
        base_where = and_all(analysis.ec_conjuncts) \
            if analysis.feasible else None
        cleansed = cleansed_table_sql(database, registry, rules,
                                      table_name, base_where=base_where,
                                      sequence_subquery=subquery)
    else:
        raise RewriteError(f"unknown strategy {strategy!r}")
    _substitute_table(statement, table_name, parse_select(cleansed))
    return statement.to_sql()


def _tables_of(statement: SelectStmt) -> set[str]:
    names: set[str] = set()

    def walk_ref(ref: TableRef) -> None:
        if isinstance(ref, TableName):
            names.add(ref.name)
        elif isinstance(ref, DerivedTable):
            visit(ref.select)
        elif isinstance(ref, JoinRef):
            walk_ref(ref.left)
            walk_ref(ref.right)

    def visit(select: SelectStmt) -> None:
        for cte in select.ctes:
            visit(cte.select)
        for ref in select.from_refs:
            walk_ref(ref)
        if select.set_op is not None:
            visit(select.set_op.right)

    visit(statement)
    return names
