"""Eager cleansing: materialize a cleansed copy of a reads table.

The conventional approach the paper contrasts with (§1): apply every
rule up front and store only cleaned data. It remains the right tool for
anomalies whose definition and correction are shared by *all* consumers
("known anomalies ... are still handled eagerly"), and this module
provides it so applications can mix both modes — eager for the common
rules, deferred for application-specific ones.

The materialized table inherits the source's physical design (same
indexes) and gets fresh statistics, so queries against it plan exactly
like queries against the raw table.
"""

from __future__ import annotations

from repro.errors import RewriteError
from repro.minidb.engine import Database
from repro.minidb.table import Table
from repro.rewrite.strategies import naive_subplan
from repro.sqlts.registry import RuleRegistry

__all__ = ["materialize_cleansed"]


def materialize_cleansed(database: Database, registry: RuleRegistry,
                         source_table: str, target_table: str,
                         ) -> Table:
    """Cleanse *source_table* with all its rules into *target_table*.

    Returns the new table. Raises :class:`RewriteError` when the source
    has no rules (materializing an identical copy is almost certainly a
    mistake) or the target already exists.
    """
    source_table = source_table.lower()
    rules = registry.rules_for(source_table)
    if not rules:
        raise RewriteError(
            f"no cleansing rules are defined on {source_table!r}; "
            "nothing to cleanse eagerly")
    if target_table.lower() in database.catalog:
        raise RewriteError(f"table {target_table!r} already exists")
    source = database.table(source_table)
    plan = naive_subplan(database, registry, rules, source_table)
    cleansed_rows = database.execute(plan).rows
    target = database.create_table(target_table, source.schema)
    target.bulk_load(cleansed_rows)
    for index in source.indexes.values():
        target.create_index(index.column)
    database.analyze(target.name)
    return target
