"""Cleansed-region cache with predicate subsumption (semantic caching).

The expanded rewrite materializes ``Φ_C(σ_ec(R))`` — the cleansed
version of exactly the region of the reads table the query (and its
rules' context needs) can touch. Analytic workloads re-issue near-
identical queries over overlapping windows, so consecutive queries very
often need a region *contained* in one already cleansed. This module
caches those regions and serves subsumed queries from them, skipping
the sort + window pass entirely.

Correctness of serving query ``Q_new`` (condition ``s_new``, expanded
condition ``ec_new``) from a cached region ``W = Φ_C(σ_ec_old(R))``
when ``ec_new ⇒ ec_old``:

* every row that can satisfy ``s_new`` after cleansing satisfies the
  stable part of ``ec_new`` before cleansing (it is a disjunct of the
  OR-part and implies the factored bounds), hence is in ``σ_ec_old(R)``;
* each such row's *context rows* satisfy some context condition
  ``cc ⊆ ec_new ⇒ ec_old``, so they are in ``σ_ec_old(R)`` too, and the
  row's window frames over ``σ_ec_old(R)`` equal its frames over ``R``
  (frame membership depends only on cluster/sequence values, and a
  subset input can only lose frame rows — none of which are lost here);
  its cleansed values in ``W`` therefore equal those in ``Φ_C(R)``;
* the full original condition ``s`` is re-applied over the cached
  (already cleansed) rows, so the extra rows ``W`` holds beyond
  ``Q_new``'s region are filtered out.

The subsumption test ``ec_new ⇒ ec_old`` works conjunct-by-conjunct
with three weapons: structural equality, numeric bound entailment
through the difference-constraint closure of
:class:`~repro.rewrite.transitivity.DifferenceClosure`, and disjunction
handling (a goal OR needs one entailed disjunct; a fact OR is
case-split, every branch must entail the goal).

Entries are keyed on the ordered rule list and the source table (object
identity + version counter). A version bump used to drop the entry
unconditionally; with the table delta log, an entry whose source only
*appended* rows since materialization is instead **patched**: the dirty
cluster-key values (those appearing in appended rows) are re-cleansed
through the caller-supplied ``patcher`` and spliced over the stale
sequences, which is sound because Φ_C windows never cross cluster-key
partitions — untouched sequences cleanse to exactly their cached rows.
Materialized regions live as catalog temp tables under a byte budget
with LRU eviction.
"""

from __future__ import annotations

import heapq
import itertools
import sys
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.analysis.linear import LinearForm, normalize_comparison
from repro.errors import CatalogError
from repro.minidb.engine import Database
from repro.minidb.expressions import BinaryOp, Expr, Literal
from repro.minidb.schema import Column, TableSchema
from repro.minidb.table import Table
from repro.minidb.types import sort_key
from repro.rewrite.transitivity import DifferenceClosure, ZERO_VAR

__all__ = ["CacheOptions", "CleansingRegionCache", "RegionEntry",
           "conjunction_implies"]

#: A patcher re-cleanses the given dirty cluster-key values under the
#: entry's own ec and returns the resulting rows (region column order).
Patcher = Callable[["RegionEntry", Sequence[object]], list[tuple]]

#: Global sequence for temp-table names; engines sharing one database
#: must never collide.
_SEQUENCE = itertools.count(1)

#: Recursion cap for OR-fact case splits (ec conjunctions are tiny; the
#: cap only guards against pathological hand-built predicates).
_MAX_SPLIT_DEPTH = 4


# ---------------------------------------------------------------------------
# Predicate subsumption
# ---------------------------------------------------------------------------


def _is_or(expr: Expr) -> bool:
    return isinstance(expr, BinaryOp) and expr.op == "or"


def _disjuncts(expr: Expr) -> list[Expr]:
    if _is_or(expr):
        return _disjuncts(expr.left) + _disjuncts(expr.right)
    return [expr]


def _conjuncts(expr: Expr) -> list[Expr]:
    if isinstance(expr, BinaryOp) and expr.op == "and":
        return _conjuncts(expr.left) + _conjuncts(expr.right)
    return [expr]


def _flatten(exprs: Sequence[Expr]) -> list[Expr]:
    out: list[Expr] = []
    for expr in exprs:
        out.extend(_conjuncts(expr))
    return out


def _edge_entails(closed, form: LinearForm, goal_strict: bool) -> bool:
    """Does the closed constraint graph entail ``form <= 0`` (``< 0``
    when *goal_strict*)? Mirrors ``DifferenceClosure._ingest_inequality``:
    only <=2 unit-coefficient variables map onto a graph edge."""
    refs = list(form.coeffs.items())
    if not refs:
        constant = form.constant
        return constant < 0 or (constant == 0 and not goal_strict)
    if len(refs) == 1:
        ref, coeff = refs[0]
        if coeff == 1:
            edge = (ref, ZERO_VAR)
        elif coeff == -1:
            edge = (ZERO_VAR, ref)
        else:
            return False
    elif len(refs) == 2:
        (ref_a, coeff_a), (ref_b, coeff_b) = refs
        if coeff_a == 1 and coeff_b == -1:
            edge = (ref_a, ref_b)
        elif coeff_a == -1 and coeff_b == 1:
            edge = (ref_b, ref_a)
        else:
            return False
    else:
        return False
    derived = closed.get(edge)
    if derived is None:
        return False
    limit = -form.constant
    if derived.value < limit:
        return True
    return derived.value == limit and (derived.strict or not goal_strict)


def _closure_entails(atoms: Sequence[Expr], goal: Expr) -> bool:
    """Numeric entailment of one comparison atom from plain fact atoms."""
    normalized = normalize_comparison(goal)
    if normalized is None:
        return False
    form, op = normalized
    closure = DifferenceClosure()
    usable = False
    for atom in atoms:
        usable = closure.add_atom(atom) or usable
    if not usable:
        return False
    closed = closure.close()
    if op == "=":
        return (_edge_entails(closed, form, False)
                and _edge_entails(closed, form.negate(), False))
    if op == "!=":
        return False
    if op in (">", ">="):
        form = form.negate()
        op = "<" if op == ">" else "<="
    return _edge_entails(closed, form, op == "<")


def _implies(facts: list[Expr], goal: Expr, depth: int) -> bool:
    if isinstance(goal, Literal) and goal.value is True:
        return True
    if any(goal == fact for fact in facts):
        return True
    plain = [fact for fact in facts if not _is_or(fact)]
    if _is_or(goal):
        for disjunct in _disjuncts(goal):
            if all(_implies(facts, conjunct, depth)
                   for conjunct in _conjuncts(disjunct)):
                return True
    elif _closure_entails(plain, goal):
        return True
    if depth >= _MAX_SPLIT_DEPTH:
        return False
    ors = [fact for fact in facts if _is_or(fact)]
    for index, fact in enumerate(ors):
        rest = plain + ors[:index] + ors[index + 1:]
        if all(_implies(rest + _conjuncts(disjunct), goal, depth + 1)
               for disjunct in _disjuncts(fact)):
            return True
    return False


def conjunction_implies(facts: Sequence[Expr],
                        goals: Sequence[Expr]) -> bool:
    """Does ``AND(facts)`` logically imply ``AND(goals)``?

    Sound but incomplete: True only when every goal conjunct is provably
    entailed (structurally, through the difference closure, or by OR
    case analysis); a False answer merely declines the cache hit.
    """
    fact_list = _flatten(facts)
    return all(_implies(fact_list, goal, 0)
               for goal in _flatten(goals))


# ---------------------------------------------------------------------------
# The region cache
# ---------------------------------------------------------------------------


@dataclass
class CacheOptions:
    """Knobs for the cleansed-region cache.

    The cache is opt-in: pass an instance to
    :class:`~repro.rewrite.engine.DeferredCleansingEngine` to enable it.
    The default-off posture keeps plan-shape tests and the paper's
    experiment harness byte-identical to the uncached engine.
    """

    enabled: bool = True
    #: Byte budget across all materialized regions (LRU-evicted beyond).
    max_bytes: int = 64 << 20
    #: Hard cap on the number of cached regions.
    max_entries: int = 16
    #: Patch-vs-invalidate thresholds: an append dirtying more than
    #: ``max_patch_keys`` cluster-key values, or more than
    #: ``max_patch_fraction`` of the region's sequences, falls back to
    #: full invalidation (re-cleansing most of the region through the
    #: OR-of-equalities patch path would cost more than a rebuild).
    max_patch_keys: int = 64
    max_patch_fraction: float = 0.5


@dataclass
class RegionEntry:
    """One materialized cleansed region."""

    #: The reads table the region was cleansed from.
    source_table: Table
    #: ``source_table.version`` at materialization time (observability;
    #: staleness is decided on ``source_data_epoch`` alone, so schema-only
    #: changes such as CREATE INDEX never invalidate a cleansed region —
    #: cleansing depends on row data, not on access paths).
    source_version: int
    #: Ordered names of the rules applied (registry creation order).
    rule_key: tuple[str, ...]
    #: Top-level conjuncts of the ec the region was materialized under.
    ec_conjuncts: list[Expr]
    #: Catalog temp table holding the cleansed rows.
    table: Table
    #: Estimated in-memory footprint of the rows.
    nbytes: int
    #: CLUSTER BY column of the rules (patch granularity); None disables
    #: patching for this entry.
    cluster_key: str | None = None
    #: True when some rule MODIFYs the cluster key itself — cached rows
    #: can then carry rewritten key values, so stale sequences cannot be
    #: located by source-key and the entry must invalidate, not patch.
    cluster_key_modified: bool = False
    #: ``source_table.data_epoch`` at materialization time, the cursor
    #: into the table's delta log.
    source_data_epoch: int = 0


def _bound_column(conjuncts: Sequence[Expr]) -> str | None:
    """The first column carrying a unit-coefficient range bound in
    *conjuncts* — the natural index key for the materialized region,
    since subsumed probes filter on a tighter range of that column."""
    for conjunct in conjuncts:
        normalized = normalize_comparison(conjunct)
        if normalized is None:
            continue
        form, op = normalized
        if op not in ("<", "<=", ">", ">="):
            continue
        ref = form.single_reference() or form.negate().single_reference()
        if ref is not None:
            return ref.name
    return None


def _estimate_bytes(rows: list[tuple]) -> int:
    """Sampled ``sys.getsizeof`` estimate of a row list's footprint."""
    if not rows:
        return 256
    step = max(1, len(rows) // 100)
    sample = rows[::step][:100]
    per_row = sum(
        sys.getsizeof(row) + sum(sys.getsizeof(value) for value in row)
        for row in sample) / len(sample)
    return int(per_row * len(rows)) + 256


class CleansingRegionCache:
    """LRU cache of materialized ``Φ_C(σ_ec(R))`` regions.

    ``lookup`` first drops stale entries (source-table version bumped or
    table replaced in the catalog), then — among entries for the same
    table and rule list — returns the smallest region whose ec is
    implied by the probe's ec. ``store`` materializes rows into a fresh
    ``__region_cache_<n>`` catalog table and evicts least-recently-used
    regions beyond the byte/entry budget.
    """

    def __init__(self, database: Database,
                 options: CacheOptions | None = None) -> None:
        self.database = database
        self.options = options or CacheOptions()
        self._entries: OrderedDict[str, RegionEntry] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        self.invalidations = 0
        #: Incremental-maintenance counters: entries patched in place,
        #: cluster-key sequences re-cleansed by those patches, and delta
        #: epochs consumed from source-table delta logs.
        self.patches = 0
        self.sequences_recleaned = 0
        self.delta_epochs_applied = 0

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def total_bytes(self) -> int:
        return sum(entry.nbytes for entry in self._entries.values())

    def _is_orphaned(self, entry: RegionEntry) -> bool:
        """Source table dropped or replaced in the catalog."""
        catalog = self.database.catalog
        name = entry.source_table.name
        return name not in catalog \
            or catalog.table(name) is not entry.source_table

    def _is_stale(self, entry: RegionEntry) -> bool:
        # Epoch-pinned: only *data* epochs matter. A schema-only change
        # (CREATE INDEX bumps schema_epoch, hence version) cannot alter
        # what Φ_C(σ_ec(R)) evaluates to, so the region stays servable.
        if entry.source_table.data_epoch != entry.source_data_epoch:
            return True
        return self._is_orphaned(entry)

    def _drop(self, name: str, *, evicted: bool) -> None:
        self._entries.pop(name, None)
        try:
            self.database.drop_table(name)
        except CatalogError:
            pass
        if evicted:
            self.evictions += 1
        else:
            self.invalidations += 1

    def _prune_stale(self, *, keep_patchable: bool) -> None:
        for name in list(self._entries):
            entry = self._entries[name]
            if not self._is_stale(entry):
                continue
            if keep_patchable and not self._is_orphaned(entry) \
                    and entry.cluster_key is not None \
                    and not entry.cluster_key_modified \
                    and entry.source_table.delta_since(
                        entry.source_data_epoch) is not None:
                continue
            self._drop(name, evicted=False)

    # ------------------------------------------------------------------
    # Patch-vs-invalidate
    # ------------------------------------------------------------------

    def _patch_plan(self, entry: RegionEntry) \
            -> tuple[int, list[object]] | None:
        """Decide whether *entry* can be patched back to freshness.

        Returns ``(delta_epochs, dirty_values)`` when every mutation
        since materialization was an append, the appended rows carry
        usable cluster keys, the dirty-sequence count is under the
        thresholds, and the cached region is laid out as sorted
        contiguous cluster-key runs (the splice invariant). None means
        the entry must be invalidated instead.
        """
        if entry.cluster_key is None or entry.cluster_key_modified:
            return None
        table = entry.source_table
        if entry.cluster_key not in table.schema.names:
            return None
        delta = table.delta_since(entry.source_data_epoch)
        if delta is None:
            return None
        key_position = table.schema.position_of(entry.cluster_key)
        dirty: set = set()
        for start, count in delta:
            for row in table.rows[start:start + count]:
                value = row[key_position]
                if value is None:
                    # An equality predicate can never re-select a NULL
                    # sequence; the patch would silently lose those rows.
                    return None
                dirty.add(value)
        options = self.options
        if len(dirty) > options.max_patch_keys:
            return None
        region_position = entry.table.schema.position_of(entry.cluster_key)
        region_keys: set = set()
        previous = None
        for row in entry.table.rows:
            value = row[region_position]
            key = sort_key(value)
            if previous is not None and key < previous:
                # Rules without window columns emit unsorted regions;
                # run-splicing needs sorted contiguous runs.
                return None
            region_keys.add(value)
            previous = key
        total = len(region_keys | dirty)
        if total and len(dirty) / total > options.max_patch_fraction:
            return None
        return len(delta), sorted(dirty, key=sort_key)

    def _patch(self, entry: RegionEntry, patcher: Patcher) -> bool:
        """Re-cleanse *entry*'s dirty sequences and splice them in.

        Soundness: rules are per-sequence (windows partition by the
        cluster key), so for every non-dirty key the cached run equals
        its full-recompute run, and the patcher's output — the expanded
        subplan restricted to the dirty keys, under the entry's own ec —
        equals the full recompute's runs for the dirty keys. Both inputs
        arrive sorted by the cluster key's sort order with disjoint key
        sets, so a single ordered merge reproduces the full recompute
        byte-for-byte.
        """
        plan = self._patch_plan(entry)
        if plan is None:
            return False
        epochs, dirty_values = plan
        table = entry.source_table
        if dirty_values:
            dirty = set(dirty_values)
            position = entry.table.schema.position_of(entry.cluster_key)
            fresh_rows = patcher(entry, dirty_values)
            fresh_rows.sort(key=lambda row: sort_key(row[position]))
            kept_rows = [row for row in entry.table.rows
                         if row[position] not in dirty]
            merged = list(heapq.merge(
                kept_rows, fresh_rows,
                key=lambda row: sort_key(row[position])))
            entry.table.replace_rows(merged, coerced=True)
            self.database.stats.rebase(entry.table)
            entry.nbytes = _estimate_bytes(entry.table.rows)
            self.sequences_recleaned += len(dirty_values)
        entry.source_version = table.version
        entry.source_data_epoch = table.data_epoch
        self.patches += 1
        self.delta_epochs_applied += epochs
        return True

    # ------------------------------------------------------------------

    def lookup(self, table: Table, rule_key: tuple[str, ...],
               ec_conjuncts: Sequence[Expr], *,
               patcher: Patcher | None = None) -> RegionEntry | None:
        """The smallest region subsuming *ec_conjuncts*, or None.

        Fresh subsuming entries win outright. When *patcher* is given,
        stale-but-patchable entries are considered next (smallest
        first): the first one that patches successfully is served; ones
        that decline are invalidated. Without a patcher the original
        drop-on-stale behavior is preserved.
        """
        self._prune_stale(keep_patchable=patcher is not None)
        fresh: tuple[str, RegionEntry] | None = None
        stale: list[tuple[str, RegionEntry]] = []
        for name, entry in self._entries.items():
            if entry.source_table is not table \
                    or entry.rule_key != rule_key:
                continue
            if not conjunction_implies(ec_conjuncts, entry.ec_conjuncts):
                continue
            if self._is_stale(entry):
                stale.append((name, entry))
            elif fresh is None or entry.nbytes < fresh[1].nbytes:
                fresh = (name, entry)
        if fresh is not None:
            self._entries.move_to_end(fresh[0])
            self.hits += 1
            return fresh[1]
        if patcher is not None:
            for name, entry in sorted(stale,
                                      key=lambda pair: pair[1].nbytes):
                if self._patch(entry, patcher):
                    self._entries.move_to_end(name)
                    self.hits += 1
                    return entry
                self._drop(name, evicted=False)
        self.misses += 1
        return None

    def store(self, table: Table, rule_key: tuple[str, ...],
              ec_conjuncts: Sequence[Expr],
              rows: list[tuple], *,
              cluster_key: str | None = None,
              cluster_key_modified: bool = False) -> RegionEntry | None:
        """Materialize *rows* as a cached region; None if over budget."""
        nbytes = _estimate_bytes(rows)
        if nbytes > self.options.max_bytes:
            return None
        name = f"__region_cache_{next(_SEQUENCE)}"
        schema = TableSchema(Column(column.name, column.sql_type)
                             for column in table.schema)
        cached = self.database.create_table(name, schema)
        cached.bulk_load(rows)
        bound = _bound_column(ec_conjuncts)
        if bound is not None and bound in schema.names:
            cached.create_index(bound)
        entry = RegionEntry(
            source_table=table, source_version=table.version,
            rule_key=rule_key, ec_conjuncts=list(ec_conjuncts),
            table=cached, nbytes=nbytes,
            cluster_key=cluster_key,
            cluster_key_modified=cluster_key_modified,
            source_data_epoch=table.data_epoch)
        self._entries[name] = entry
        self.stores += 1
        while len(self._entries) > self.options.max_entries \
                or self.total_bytes() > self.options.max_bytes:
            oldest = next(iter(self._entries))
            if self._entries[oldest] is entry:
                break
            self._drop(oldest, evicted=True)
        return entry

    def clear(self) -> None:
        for name in list(self._entries):
            self._drop(name, evicted=False)
