"""Construction of the cleansed-reads-table subplans for each rewrite
strategy (naive, expanded, join-back), including multi-rule chains and
rules whose FROM input is a derived view over the reads table.

All builders return a logical plan producing exactly the reads table's
columns; the engine splices it into the user query via ``table_plans``.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.errors import RewriteError
from repro.minidb.engine import Database
from repro.minidb.expressions import (
    ColumnRef,
    Expr,
    InSubquery,
    and_all,
)
from repro.minidb.plan.builder import build_plan
from repro.minidb.plan.logical import (
    LogicalDistinct,
    LogicalFilter,
    LogicalNode,
    LogicalProject,
    LogicalScan,
    LogicalSemiJoin,
)
from repro.rewrite.context import DimensionJoin
from repro.sqlts.compiler import CompiledRule
from repro.sqlts.registry import RuleRegistry

__all__ = [
    "naive_subplan",
    "expanded_subplan",
    "joinback_subplan",
    "validate_rule_keys",
]


def validate_rule_keys(rules: Sequence[CompiledRule]) -> tuple[str, str]:
    """All rules of one application must share cluster/sequence keys."""
    if not rules:
        raise RewriteError("no cleansing rules to apply")
    ckey = rules[0].rule.cluster_key
    skey = rules[0].rule.sequence_key
    for compiled in rules[1:]:
        if compiled.rule.cluster_key != ckey \
                or compiled.rule.sequence_key != skey:
            raise RewriteError(
                "rules applied together must share CLUSTER BY and "
                f"SEQUENCE BY keys; {compiled.name!r} differs")
    return ckey, skey


def _reads_columns(database: Database, table_name: str) -> list[str]:
    return list(database.table(table_name).schema.names)


def _project_to_reads(plan: LogicalNode, columns: list[str]) -> LogicalNode:
    return LogicalProject(plan, [(ColumnRef(name), name)
                                 for name in columns])


def _dim_semi_join(database: Database, plan: LogicalNode,
                   dimension: DimensionJoin) -> LogicalNode:
    """Attach ``R.K IN (SELECT Kd FROM D WHERE S_d)`` as a semi-join."""
    conjunct = dimension.in_conjunct()
    subplan = build_plan(conjunct.subquery, database.catalog)
    return LogicalSemiJoin(plan, subplan, conjunct.operand)


def _filter_conjuncts(database: Database, plan: LogicalNode,
                      conjuncts: Sequence[Expr]) -> LogicalNode:
    """Filter *plan* by *conjuncts*, planning IN-subqueries as semi-joins."""
    plain: list[Expr] = []
    for conjunct in conjuncts:
        if isinstance(conjunct, InSubquery):
            subplan = build_plan(conjunct.subquery, database.catalog)
            plan = LogicalSemiJoin(plan, subplan, conjunct.operand,
                                   conjunct.negated)
        else:
            plain.append(conjunct)
    predicate = and_all(plain)
    if predicate is not None:
        plan = LogicalFilter(plan, predicate)
    return plan


def _safe_guards(guards: Sequence[Expr],
                 modified_columns: set[str]) -> list[Expr]:
    """Guard conjuncts that survive earlier rules' MODIFY actions and
    contain no subqueries (they are re-applied over derived inputs)."""
    safe = []
    for guard in guards:
        if any(isinstance(node, InSubquery) for node in guard.walk()):
            continue
        touched = {ref.name for ref in guard.referenced_columns()}
        if touched & modified_columns:
            continue
        safe.append(guard)
    return safe


def _chain_rules(database: Database, registry: RuleRegistry,
                 rules: Sequence[CompiledRule],
                 stream: LogicalNode,
                 guards: Sequence[Expr],
                 seqlist_builder: Callable[[], LogicalNode] | None,
                 cluster_key: str) -> LogicalNode:
    """Apply Φ_C1 ... Φ_Cn in creation order over *stream*.

    Rules whose FROM differs from their ON table get their input view
    instantiated with the cleansed-so-far stream substituted for the ON
    table (§4.2's ON/FROM separation). The view's extra branches are
    restricted by the still-valid guard conjuncts, and — for join-back —
    by a fresh semi-join against the relevant-sequence list, matching the
    paper's "join-back is also performed on both tables".
    """
    modified: set[str] = set()
    for compiled in rules:
        rule = compiled.rule
        if rule.from_table != rule.on_table:
            view = registry.view(rule.from_table)
            if view is None:
                raise RewriteError(
                    f"rule {compiled.name!r} takes input from "
                    f"{rule.from_table!r}, which is neither its ON table "
                    "nor a registered rule-input view")
            view_plan = build_plan(view, database.catalog,
                                   table_plans={rule.on_table: stream})
            safe = _safe_guards(guards, modified)
            guarded: LogicalNode = view_plan
            predicate = and_all(safe)
            if predicate is not None:
                guarded = LogicalFilter(guarded, predicate)
            if seqlist_builder is not None:
                guarded = LogicalSemiJoin(guarded, seqlist_builder(),
                                          ColumnRef(cluster_key))
            stream = compiled.apply(guarded)
        else:
            stream = compiled.apply(stream)
        modified.update(rule.action.assignments)
    return stream


def naive_subplan(database: Database, registry: RuleRegistry,
                  rules: Sequence[CompiledRule],
                  table_name: str) -> LogicalNode:
    """Q_n: cleanse the entire reads table before the query runs."""
    ckey, _ = validate_rule_keys(rules)
    stream: LogicalNode = LogicalScan(database.table(table_name))
    stream = _chain_rules(database, registry, rules, stream, guards=[],
                          seqlist_builder=None, cluster_key=ckey)
    return _project_to_reads(stream, _reads_columns(database, table_name))


def expanded_subplan(database: Database, registry: RuleRegistry,
                     rules: Sequence[CompiledRule],
                     table_name: str,
                     ec_conjuncts: Sequence[Expr],
                     pushed_dimensions: Sequence[DimensionJoin] = (),
                     ) -> LogicalNode:
    """Q_e: σ_s'(Φ_Cn(...Φ_C1(σ_ec(R)))) with optional pushed dimensions.

    The residual σ_s' lives in the rewritten outer statement; this
    subplan covers σ_ec and the rule chain.
    """
    ckey, _ = validate_rule_keys(rules)
    base: LogicalNode = LogicalScan(database.table(table_name))
    predicate = and_all(list(ec_conjuncts))
    if predicate is not None:
        base = LogicalFilter(base, predicate)
    for dimension in pushed_dimensions:
        base = _dim_semi_join(database, base, dimension)
    stream = _chain_rules(database, registry, rules, base,
                          guards=list(ec_conjuncts), seqlist_builder=None,
                          cluster_key=ckey)
    return _project_to_reads(stream, _reads_columns(database, table_name))


def joinback_subplan(database: Database, registry: RuleRegistry,
                     rules: Sequence[CompiledRule],
                     table_name: str,
                     s_conjuncts: Sequence[Expr],
                     ec_conjuncts: Sequence[Expr] | None,
                     pushed_dimensions: Sequence[DimensionJoin] = (),
                     ) -> LogicalNode:
    """Q_j: σ_s'(Φ_C(σ_ec(R) ⋉_ckey Π_ckey(σ_s(R) [⋉ dims]))).

    ``ec_conjuncts`` of None means the plain join-back (no expanded
    condition available); otherwise the improved variant filters the
    joined-back rows by ec first (§5.3).

    Under shard-parallel execution the semi-join's probe side (the
    σ_ec(R) scan feeding the rule chain) lies on the shard spine and is
    partitioned by cluster key, while the relevant-sequence list on the
    build side is a broadcast subtree: every worker evaluates it in
    full, so per-shard membership checks see the complete key set and
    the merged output matches the serial plan row for row.
    """
    ckey, _ = validate_rule_keys(rules)
    table = database.table(table_name)

    def seqlist() -> LogicalNode:
        inner: LogicalNode = LogicalScan(table)
        inner = _filter_conjuncts(database, inner, s_conjuncts)
        for dimension in pushed_dimensions:
            inner = _dim_semi_join(database, inner, dimension)
        return LogicalDistinct(
            LogicalProject(inner, [(ColumnRef(ckey), ckey)]))

    base: LogicalNode = LogicalScan(table)
    guards: list[Expr] = []
    if ec_conjuncts is not None:
        predicate = and_all(list(ec_conjuncts))
        if predicate is not None:
            base = LogicalFilter(base, predicate)
        guards = list(ec_conjuncts)
    base = LogicalSemiJoin(base, seqlist(), ColumnRef(ckey))
    stream = _chain_rules(database, registry, rules, base, guards=guards,
                          seqlist_builder=seqlist, cluster_key=ckey)
    return _project_to_reads(stream, _reads_columns(database, table_name))
