"""Deferred-cleansing query rewriting (Section 5 of the paper).

Given a user query and an ordered list of cleansing rules, produces a
rewritten query answering Q[C1...Cn] over cleansed data, choosing among:

* the **naive** rewrite (cleanse all of R first);
* the **expanded** rewrite (Figure 4): push a relaxed condition into R;
* the **join-back** rewrite: cleanse only the sequences the query needs;

with join-query support (pushing selective dimensions before cleansing)
and cost-based candidate selection via the minidb optimizer.
"""

from repro.rewrite.eager import materialize_cleansed
from repro.rewrite.engine import DeferredCleansingEngine, RewriteResult
from repro.rewrite.expanded import ExpandedAnalysis, analyze_expanded
from repro.rewrite.report import RuleImpact, cleansing_report
from repro.rewrite.sqlgen import rewritten_sql

__all__ = [
    "DeferredCleansingEngine",
    "RewriteResult",
    "ExpandedAnalysis",
    "analyze_expanded",
    "materialize_cleansed",
    "cleansing_report",
    "RuleImpact",
    "rewritten_sql",
]
