"""Cleansing impact reports.

Diagnostics for rule authors: how many rows each rule in a chain
deletes, modifies, or compensates on the current data. The report runs
the chain stepwise (naive evaluation), so it costs about one naive
cleanse — a tool for rule development, not for the query path.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.minidb.engine import Database
from repro.minidb.plan.logical import LogicalNode, LogicalScan
from repro.sqlts.model import ActionKind
from repro.sqlts.registry import RuleRegistry
from repro.rewrite.strategies import validate_rule_keys

__all__ = ["RuleImpact", "cleansing_report"]


@dataclass
class RuleImpact:
    """Per-rule row accounting for one cleansing pass."""

    rule_name: str
    action: str
    rows_in: int
    rows_out: int
    #: Rows removed by DELETE/KEEP (rows_in - rows_out, never negative).
    rows_removed: int
    #: Rows whose values changed (MODIFY only; 0 for other actions).
    rows_modified: int

    def describe(self) -> str:
        parts = [f"{self.rule_name} ({self.action}): "
                 f"{self.rows_in} -> {self.rows_out} rows"]
        if self.rows_removed:
            parts.append(f"removed {self.rows_removed}")
        if self.rows_modified:
            parts.append(f"modified {self.rows_modified}")
        return ", ".join(parts)


def cleansing_report(database: Database, registry: RuleRegistry,
                     table_name: str) -> list[RuleImpact]:
    """Apply *table_name*'s rules stepwise and account for each one.

    Rules taking input from a derived view are measured over the
    instantiated view (so the missing rule's r2 reports the pallet
    ghost rows it drops as removed).
    """
    from repro.minidb.plan.builder import build_plan

    table_name = table_name.lower()
    rules = registry.rules_for(table_name)
    validate_rule_keys(rules)
    impacts: list[RuleImpact] = []
    stream: LogicalNode = LogicalScan(database.table(table_name))
    previous_rows = database.execute(stream).rows
    for compiled in rules:
        rule = compiled.rule
        if rule.from_table != rule.on_table:
            view = registry.view(rule.from_table)
            view_plan = build_plan(view, database.catalog,
                                   table_plans={rule.on_table: stream})
            input_rows = database.execute(view_plan).rows
            stream = compiled.apply(view_plan)
        else:
            input_rows = previous_rows
            stream = compiled.apply(stream)
        output_rows = database.execute(stream).rows
        removed = max(0, len(input_rows) - len(output_rows))
        modified = 0
        if rule.action.kind is ActionKind.MODIFY and output_rows:
            # Columns that existed before: multiset difference over the
            # shared prefix. Columns the rule created: rows carrying a
            # non-default value were flagged by the rule.
            width = min(len(input_rows[0]) if input_rows else 0,
                        len(output_rows[0]))
            before = Counter(row[:width] for row in input_rows)
            after = Counter(row[:width] for row in output_rows)
            modified = sum((after - before).values())
            output_names = [field.name for field in stream.schema]
            for column, value in compiled.assignments.items():
                position = output_names.index(column)
                if width and position < width:
                    continue  # pre-existing column, already counted
                default = compiled._created_default(value).value
                modified += sum(1 for row in output_rows
                                if row[position] != default)
        impacts.append(RuleImpact(
            rule_name=compiled.name,
            action=rule.action.kind.value,
            rows_in=len(input_rows),
            rows_out=len(output_rows),
            rows_removed=removed,
            rows_modified=modified))
        previous_rows = output_rows
    return impacts
