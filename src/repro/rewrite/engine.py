"""The deferred-cleansing rewrite engine (architecture steps 3–5).

Intercepts user queries, determines whether any referenced table has
cleansing rules, enumerates the correct candidate rewrites —

* naive (cleanse all of R),
* expanded rewrites pushing 0..m derivable dimension restrictions before
  cleansing (when the Figure 4 analysis is feasible),
* join-back rewrites pushing 0..n dimension semi-joins into the
  relevant-sequence subquery (always applicable),

— compiles every candidate through the minidb planner, and executes the
one with the cheapest cost estimate, exactly mirroring the paper's
m+1 / n+1 statement-selection heuristic on DB2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import RewriteError
from repro.minidb.codegen import cache_stats
from repro.minidb.engine import Database, ExecutionMetrics
from repro.minidb.expressions import (
    BinaryOp,
    ColumnRef,
    Expr,
    InSubquery,
    Literal,
    and_all,
    or_all,
)
from repro.minidb.plan.logical import (
    LogicalFilter,
    LogicalNode,
    LogicalProject,
    LogicalScan,
)
from repro.minidb.plan.builder import build_plan
from repro.minidb.plan.physical import PhysicalNode
from repro.minidb.result import ResultSet
from repro.minidb.sqlparse import parse_select
from repro.minidb.sqlparse.ast import SelectStmt, TableName
from repro.minidb.vector import encode_stats, materialize
from repro.rewrite.cache import CacheOptions, CleansingRegionCache, RegionEntry
from repro.rewrite.context import QueryContext, extract_context
from repro.rewrite.expanded import ExpandedAnalysis, analyze_expanded
from repro.rewrite.strategies import (
    expanded_subplan,
    joinback_subplan,
    naive_subplan,
    validate_rule_keys,
)
from repro.sqlts.registry import RuleRegistry

__all__ = ["DeferredCleansingEngine", "RewriteResult", "Candidate"]


@dataclass
class Candidate:
    """One candidate rewrite with its optimizer cost estimate."""

    label: str
    #: "naive" | "expanded" | "joinback" | "cached" | "passthrough"
    strategy: str
    logical: LogicalNode | None
    physical: PhysicalNode
    cost: float


@dataclass
class RewriteResult:
    """The engine's decision for one query."""

    strategy: str
    chosen: Candidate
    candidates: list[Candidate] = field(default_factory=list)
    analysis: ExpandedAnalysis | None = None
    context: QueryContext | None = None

    @property
    def physical(self) -> PhysicalNode:
        return self.chosen.physical

    def costs(self) -> dict[str, float]:
        return {candidate.label: candidate.cost
                for candidate in self.candidates}


class DeferredCleansingEngine:
    """Rewrites and executes queries over rule-governed tables."""

    def __init__(self, database: Database, registry: RuleRegistry,
                 cache: CacheOptions | None = None) -> None:
        self.database = database
        self.registry = registry
        #: Cleansed-region cache; None (the default) leaves rewrite
        #: behavior byte-identical to the uncached engine.
        self.region_cache = (CleansingRegionCache(database, cache)
                             if cache is not None and cache.enabled
                             else None)

    # ------------------------------------------------------------------

    def _referenced_tables(self, statement: SelectStmt) -> set[str]:
        names: set[str] = set()

        def visit(select: SelectStmt) -> None:
            for cte in select.ctes:
                visit(cte.select)
            from repro.minidb.sqlparse.ast import DerivedTable, JoinRef

            def walk_ref(ref) -> None:
                if isinstance(ref, TableName):
                    names.add(ref.name)
                elif isinstance(ref, DerivedTable):
                    visit(ref.select)
                elif isinstance(ref, JoinRef):
                    walk_ref(ref.left)
                    walk_ref(ref.right)

            for ref in select.from_refs:
                walk_ref(ref)
            if select.where is not None:
                for node in select.where.walk():
                    if isinstance(node, InSubquery):
                        visit(node.subquery)
            if select.set_op is not None:
                visit(select.set_op.right)

        visit(statement)
        return names

    # ------------------------------------------------------------------

    def rewrite(self, query: str | SelectStmt,
                strategies: set[str] | None = None) -> RewriteResult:
        """Produce the cheapest correct rewrite of *query*.

        ``strategies`` optionally restricts which families are considered
        (useful for the benchmark harness: ``{"naive"}``,
        ``{"expanded"}``, ``{"joinback"}``).
        """
        statement = parse_select(query) if isinstance(query, str) else query
        allowed = strategies or {"naive", "expanded", "joinback"}
        referenced = self._referenced_tables(statement)
        dirty = sorted(referenced & self.registry.tables_with_rules())
        if not dirty:
            return self._passthrough(statement)
        if len(dirty) > 1:
            return self._naive_only(statement, dirty)
        table_name = dirty[0]
        try:
            context = extract_context(statement, table_name, self.database)
        except RewriteError:
            return self._naive_only(statement, [table_name])
        rules = self.registry.rules_for(table_name)
        reads_columns = set(self.database.table(table_name).schema.names)
        analysis = analyze_expanded([compiled.rule for compiled in rules],
                                    context.s_conjuncts, reads_columns)
        if self.region_cache is not None and analysis.feasible \
                and "expanded" in allowed:
            candidate = self._region_candidate(table_name, rules, context,
                                               analysis)
            if candidate is not None:
                return RewriteResult(strategy="cached", chosen=candidate,
                                     candidates=[candidate],
                                     analysis=analysis, context=context)
        candidates: list[Candidate] = []
        if "naive" in allowed:
            subplan = naive_subplan(self.database, self.registry, rules,
                                    table_name)
            candidates.append(self._cost_candidate(
                "naive", "naive", context, subplan,
                kept_s=context.s_original))
        if analysis.feasible and "expanded" in allowed:
            pushable = self._pushable_dimensions(rules, context)
            kept = self._residual_originals(context, analysis)
            for count in range(len(pushable) + 1):
                label = "expanded" if count == 0 \
                    else f"expanded+{count}dims"
                subplan = expanded_subplan(
                    self.database, self.registry, rules, table_name,
                    analysis.ec_conjuncts, pushable[:count])
                candidates.append(self._cost_candidate(
                    label, "expanded", context, subplan, kept_s=kept))
        if "joinback" in allowed:
            ec = analysis.ec_conjuncts if analysis.feasible else None
            kept = (self._residual_originals(context, analysis)
                    if analysis.feasible else context.s_original)
            # Conjuncts (and dimension joins) over MODIFY-ed columns must
            # not restrict the relevant-sequence list: membership can
            # change under modification. Dropping them only widens the
            # sequence set, which stays correct.
            modified = set()
            for compiled in rules:
                modified.update(compiled.rule.action.assignments)
            stable_s = [
                conjunct for conjunct in context.s_conjuncts
                if not ({ref.name for ref in conjunct.referenced_columns()}
                        & modified)]
            stable_dims = [dimension for dimension in context.dimensions
                           if dimension.fact_key not in modified]
            for count in range(len(stable_dims) + 1):
                label = "joinback" if count == 0 \
                    else f"joinback+{count}dims"
                subplan = joinback_subplan(
                    self.database, self.registry, rules, table_name,
                    stable_s, ec, stable_dims[:count])
                candidates.append(self._cost_candidate(
                    label, "joinback", context, subplan, kept_s=kept))
        if not candidates:
            raise RewriteError(
                "no rewrite strategy produced a candidate (did the "
                "strategy restriction exclude every feasible one?)")
        chosen = min(candidates, key=lambda candidate: candidate.cost)
        return RewriteResult(strategy=chosen.strategy, chosen=chosen,
                             candidates=candidates, analysis=analysis,
                             context=context)

    # ------------------------------------------------------------------

    def execute(self, query: str | SelectStmt,
                strategies: set[str] | None = None) -> ResultSet:
        """Rewrite and run *query*, returning cleansed results."""
        result = self.rewrite(query, strategies)
        plan = result.physical
        rows = materialize(plan)
        return ResultSet([f.name for f in plan.schema], rows)

    def execute_with_metrics(
            self, query: str | SelectStmt,
            strategies: set[str] | None = None,
    ) -> tuple[ResultSet, ExecutionMetrics, RewriteResult]:
        spawns = self.database.pool_spawns
        reuses = self.database.pool_reuses
        codegen_before = cache_stats()
        encode_before = encode_stats()
        cache = self.region_cache
        patches = cache.patches if cache is not None else 0
        recleaned = cache.sequences_recleaned if cache is not None else 0
        epochs = cache.delta_epochs_applied if cache is not None else 0
        result = self.rewrite(query, strategies)
        plan = result.physical
        rows = materialize(plan)
        metrics = ExecutionMetrics.from_plan(plan)
        metrics.pool_spawns = self.database.pool_spawns - spawns
        metrics.pool_reuses = self.database.pool_reuses - reuses
        codegen_after = cache_stats()
        metrics.codegen_cache_hits = codegen_after[0] - codegen_before[0]
        metrics.codegen_cache_misses = codegen_after[1] - codegen_before[1]
        metrics.compile_ms = codegen_after[2] - codegen_before[2]
        encode_after = encode_stats()
        metrics.encoded_columns = encode_after[0] - encode_before[0]
        metrics.decode_fallbacks = encode_after[1] - encode_before[1]
        metrics.bytes_saved = encode_after[2] - encode_before[2]
        if cache is not None:
            metrics.cache_patches = cache.patches - patches
            metrics.sequences_recleaned = \
                cache.sequences_recleaned - recleaned
            metrics.delta_epochs_applied = \
                cache.delta_epochs_applied - epochs
        return (ResultSet([f.name for f in plan.schema], rows), metrics,
                result)

    # ------------------------------------------------------------------

    def _passthrough(self, statement: SelectStmt) -> RewriteResult:
        physical = self.database.plan(statement)
        candidate = Candidate("passthrough", "passthrough",
                              logical=None, physical=physical,
                              cost=physical.estimated_cost)
        return RewriteResult(strategy="passthrough", chosen=candidate,
                             candidates=[candidate])

    def _naive_only(self, statement: SelectStmt,
                    dirty_tables: list[str]) -> RewriteResult:
        table_plans = {}
        for table_name in dirty_tables:
            rules = self.registry.rules_for(table_name)
            table_plans[table_name] = naive_subplan(
                self.database, self.registry, rules, table_name)
        logical = build_plan(statement, self.database.catalog,
                             table_plans=table_plans)
        physical = self.database.plan(logical)
        candidate = Candidate("naive", "naive", logical, physical,
                              physical.estimated_cost)
        return RewriteResult(strategy="naive", chosen=candidate,
                             candidates=[candidate])

    def _region_candidate(self, table_name: str, rules,
                          context: QueryContext,
                          analysis: ExpandedAnalysis) -> Candidate | None:
        """Serve the query from a cached cleansed region.

        On a subsumption hit the sort + window pass is skipped entirely:
        the candidate scans the materialized region, filters it by the
        *stable* query conjuncts (plain ones over columns no rule
        modifies — the region holds post-cleansing rows, where stable
        columns still carry their original values, so these conjuncts
        prune exactly; unstable ones are simply not pushed), and
        re-applies the full original condition in the outer statement.
        On a miss the expanded region is materialized once and then
        served the same way; None means the region did not fit the
        cache budget and the normal candidate race should run.

        Materialization goes through ``Database.plan``, so when
        ``REPRO_WORKERS`` enables sharding the cleansing pipeline that
        fills the region runs shard-parallel on the persistent pool —
        the cached rows are byte-identical either way (the exchange
        merge is deterministic), so cache keys stay mode-independent.

        A region whose source table has only *appended* rows since
        materialization is patched rather than re-materialized: the
        lookup hands the cache a patcher that re-cleanses just the dirty
        cluster-key sequences (see ``CleansingRegionCache._patch``).
        """
        cache = self.region_cache
        table = self.database.table(table_name)
        rule_key = tuple(compiled.name for compiled in rules)
        cluster_key, _ = validate_rule_keys(rules)
        modified: set[str] = set()
        for compiled in rules:
            modified.update(compiled.rule.action.assignments)
        label = "cached"
        entry = cache.lookup(table, rule_key, analysis.ec_conjuncts,
                             patcher=self._region_patcher(table_name, rules))
        if entry is None:
            subplan = expanded_subplan(self.database, self.registry, rules,
                                       table_name, analysis.ec_conjuncts)
            rows = materialize(self.database.plan(subplan))
            entry = cache.store(
                table, rule_key, analysis.ec_conjuncts, rows,
                cluster_key=cluster_key,
                cluster_key_modified=cluster_key in modified)
            if entry is None:
                return None
            label = "cached-cold"
        stable = [
            conjunct for conjunct in context.s_conjuncts
            if not ({ref.name for ref in conjunct.referenced_columns()}
                    & modified)
            and not any(isinstance(node, InSubquery)
                        for node in conjunct.walk())]
        region: LogicalNode = LogicalScan(entry.table)
        predicate = and_all(stable)
        if predicate is not None:
            region = LogicalFilter(region, predicate)
        region = LogicalProject(region, [(ColumnRef(name), name)
                                         for name in table.schema.names])
        return self._cost_candidate(label, "cached", context, region,
                                    kept_s=context.s_original)

    def _region_patcher(self, table_name: str, rules):
        """Build the dirty-sequence re-cleanser handed to the cache.

        The patcher recomputes the expanded subplan under the *entry's
        own* ec (not the current probe's, which may be narrower) with an
        extra OR-of-equalities restriction to the dirty cluster keys —
        the predicate is constant per sequence, so pushing it with the
        ec guards is sound, and going through ``Database.plan`` keeps
        the recompute composed with sharding and batching.
        """

        def patch(entry: RegionEntry,
                  dirty_values: Sequence[object]) -> list[tuple]:
            predicate = or_all([
                BinaryOp("=", ColumnRef(entry.cluster_key), Literal(value))
                for value in dirty_values])
            subplan = expanded_subplan(
                self.database, self.registry, rules, table_name,
                list(entry.ec_conjuncts) + [predicate])
            return materialize(self.database.plan(subplan))

        return patch

    def _residual_originals(self, context: QueryContext,
                            analysis: ExpandedAnalysis) -> list[Expr]:
        """Map the analysis' residual (unqualified) back to the original
        qualified conjuncts of the statement's WHERE."""
        residual = list(analysis.residual)
        kept: list[Expr] = []
        for original, stripped in zip(context.s_original,
                                      context.s_conjuncts):
            if stripped in residual:
                kept.append(original)
        return kept

    def _pushable_dimensions(self, rules, context: QueryContext):
        """Dimensions whose IN-restriction is derivable on every context
        reference of every rule (§5.2 join-query support)."""
        pushable = []
        for dimension in context.dimensions:
            conjunct = dimension.in_conjunct()
            reads_columns = set(
                self.database.table(context.table_ref.name).schema.names)
            probe = analyze_expanded(
                [compiled.rule for compiled in rules],
                context.s_conjuncts + [conjunct], reads_columns)
            if not probe.feasible:
                continue
            derivable = True
            for rule_analysis in probe.per_rule:
                if not rule_analysis.context_conditions:
                    continue
                for conjuncts in rule_analysis.context_conditions.values():
                    if not any(
                            isinstance(candidate, InSubquery)
                            and candidate.operand == conjunct.operand
                            for candidate in conjuncts):
                        derivable = False
            if derivable:
                pushable.append(dimension)
        return pushable

    def _cost_candidate(self, label: str, strategy: str,
                        context: QueryContext, subplan: LogicalNode,
                        kept_s: list[Expr]) -> Candidate:
        """Splice *subplan* into the query, plan it, record its cost.

        The target statement's WHERE is temporarily rewritten to the
        non-reads conjuncts plus the kept residual conjuncts (σ_s'),
        then restored.
        """
        target = context.target_statement
        saved_where = target.where
        try:
            target.where = and_all(context.other_conjuncts + kept_s)
            logical = build_plan(
                context.statement, self.database.catalog,
                table_plans={context.table_ref.name: subplan})
        finally:
            target.where = saved_where
        physical = self.database.plan(logical)
        return Candidate(label, strategy, logical, physical,
                         physical.estimated_cost)
