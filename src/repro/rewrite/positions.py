"""Correlation-condition assembly and position-preserving analysis
(Definitions 1–2 and Observation 1 of the paper).

For each context reference X of a rule with target T this module
produces the correlation conjunct list used by transitivity analysis:

1. the rule-condition atoms mentioning X (they must form one conjunctive
   group, the same requirement the rule compiler imposes);
2. the implied conjuncts: ``X.ckey = T.ckey`` always, and
   ``X.skey < T.skey`` / ``X.skey > T.skey`` from the pattern side;
3. for *position-based* context references (no ``*``), only the
   position-preserving subset is kept (Observation 1): the cluster-key
   equality, the pattern-side sequence-key inequality, and sequence-key
   bounds of the form ``|X.skey - T.skey| < t`` that keep the context
   window contiguous with the target row. Everything else — including
   X-local predicates on non-key columns — is discarded, because
   filtering the input on such predicates would change relative sequence
   positions (the paper's C2/Q2 counterexample).
"""

from __future__ import annotations

from repro.analysis.conjunction import atoms_of, find_conjoined_group
from repro.analysis.linear import normalize_comparison
from repro.minidb.expressions import BinaryOp, ColumnRef, Expr
from repro.sqlts.model import CleansingRule, PatternRef

__all__ = ["correlation_conjuncts", "is_position_preserving"]


def _conjunctive_group(rule: CleansingRule, ref: PatternRef) -> list[Expr] | None:
    """The atoms mentioning *ref*, provided they are jointly conjoined.

    The atoms qualify when their lowest common ancestor reaches each of
    them through AND nodes only (other atoms may sit beside them). The
    whole group may live inside one OR branch: rows bound to *ref* can
    only influence the rule through that branch, so its ref-atoms still
    characterize the context set (the missing rule's r1 needs this).
    Returns None when the atoms are split across OR branches, in which
    case no single conjunction characterizes the context set.
    """
    atoms = [atom for atom in atoms_of(rule.condition)
             if ref.name in rule.references_in(atom)]
    if not atoms:
        return []
    atom_ids = {id(atom) for atom in atoms}
    if find_conjoined_group(rule.condition, atom_ids) is None:
        return None
    return atoms


def _implied_conjuncts(rule: CleansingRule, ref: PatternRef) -> list[Expr]:
    """Pattern-implied conjuncts on the cluster and sequence keys."""
    target = rule.target
    implied: list[Expr] = [
        BinaryOp("=",
                 ColumnRef(rule.cluster_key, ref.name),
                 ColumnRef(rule.cluster_key, target.name))]
    x_key = ColumnRef(rule.sequence_key, ref.name)
    t_key = ColumnRef(rule.sequence_key, target.name)
    if ref.position < target.position:
        implied.append(BinaryOp("<=", x_key, t_key))
    else:
        implied.append(BinaryOp(">=", x_key, t_key))
    return implied


def is_position_preserving(conjunct: Expr, rule: CleansingRule,
                           ref: PatternRef) -> bool:
    """Observation 1: is *conjunct* position-preserving for *ref*?

    Allowed shapes (X = *ref*, T = target, both on rule keys):

    * ``X.ckey = T.ckey``;
    * sequence-key inequalities ``X.skey - T.skey op c`` where the
      selected window stays contiguous with the target row:
      before-target references allow upper bounds with ``c >= 0`` and
      lower bounds with ``c <= 0``; after-target references mirror that.
    """
    refs = conjunct.referenced_columns()
    qualifiers = {column.qualifier for column in refs}
    if qualifiers - {ref.name, rule.target.name}:
        return False
    ckey_x = ColumnRef(rule.cluster_key, ref.name)
    ckey_t = ColumnRef(rule.cluster_key, rule.target.name)
    if isinstance(conjunct, BinaryOp) and conjunct.op == "=" \
            and {conjunct.left, conjunct.right} == {ckey_x, ckey_t}:
        return True
    normalized = normalize_comparison(conjunct)
    if normalized is None:
        return False
    form, op = normalized
    skey_x = ColumnRef(rule.sequence_key, ref.name)
    skey_t = ColumnRef(rule.sequence_key, rule.target.name)
    if set(form.coeffs) != {skey_x, skey_t}:
        return False
    if form.coeffs[skey_x] == 1 and form.coeffs[skey_t] == -1:
        pass
    elif form.coeffs[skey_x] == -1 and form.coeffs[skey_t] == 1:
        flip = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}
        if op not in flip:
            return False
        op = flip[op]
        form = form.negate()
    else:
        return False
    # Now: (X.skey - T.skey) op (-form.constant)
    bound = -form.constant
    # Upper bounds keep the window contiguous when they do not exclude
    # rows adjacent to the target (c >= 0); lower bounds mirror that
    # (c <= 0). This holds on both pattern sides.
    if op in ("<", "<="):
        return bound >= 0
    if op in (">", ">="):
        return bound <= 0
    return False


def correlation_conjuncts(rule: CleansingRule,
                          ref: PatternRef) -> list[Expr] | None:
    """Figure 4, lines 3–5: the correlation conjuncts for one context ref.

    Returns None when the rule condition's atoms for *ref* cannot be
    isolated as a conjunction (no safe analysis possible).
    """
    group = _conjunctive_group(rule, ref)
    if group is None:
        return None
    conjuncts = list(group) + _implied_conjuncts(rule, ref)
    if not ref.is_set:
        conjuncts = [conjunct for conjunct in conjuncts
                     if is_position_preserving(conjunct, rule, ref)]
    return conjuncts
