"""Transitivity analysis between rule correlation conditions and query
conditions (the core of the Figure 4 algorithm).

Variables are ``(pattern reference, column)`` pairs represented as
qualified :class:`ColumnRef` expressions (``a.rtime``). Two engines are
combined:

* a **difference-constraint closure** over atoms normalizable to
  ``u - v <= c`` / ``u <= c`` (with strictness tracked), run as an
  all-pairs shortest path over a small constraint graph with a virtual
  zero node — deriving bounds like ``B.rtime < T1 + 5 mins`` from
  ``A.rtime < T1`` and ``B.rtime - A.rtime < 5 mins``;
* **equality-class propagation** — atoms ``X.c = T.c`` put the two
  variables in one class, and any query conjunct whose variables all
  have class members on the context reference is replayed on it. This
  propagates non-numeric restrictions (``epc IN (SELECT ...)``, string
  equality) through the cluster key, which is what lets selective
  dimension predicates travel into context conditions for join queries.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.linear import normalize_comparison
from repro.minidb.expressions import (
    BinaryOp,
    ColumnRef,
    Expr,
    Literal,
)

__all__ = ["Bound", "derive_context_conjuncts", "DifferenceClosure",
           "ZERO_VAR"]

#: Virtual node representing the constant 0 in the constraint graph.
_ZERO = ColumnRef("_zero_", "_const_")

#: Public alias for the zero node, used by consumers that query the
#: closed constraint graph directly (the region cache's subsumption
#: check reads ``(var, ZERO_VAR)`` edges to test bound entailment).
ZERO_VAR = _ZERO


@dataclass(frozen=True)
class Bound:
    """A weight in the constraint graph: value plus strictness."""

    value: float
    strict: bool = False

    def __add__(self, other: "Bound") -> "Bound":
        return Bound(self.value + other.value, self.strict or other.strict)

    def tighter_than(self, other: "Bound") -> bool:
        if self.value != other.value:
            return self.value < other.value
        return self.strict and not other.strict


class DifferenceClosure:
    """All-pairs closure over difference constraints ``u - v <= bound``."""

    def __init__(self) -> None:
        self._edges: dict[tuple[ColumnRef, ColumnRef], Bound] = {}
        self._vars: set[ColumnRef] = {_ZERO}

    def add_edge(self, u: ColumnRef, v: ColumnRef, bound: Bound) -> None:
        """Record the constraint ``u - v <= bound``."""
        self._vars.add(u)
        self._vars.add(v)
        key = (u, v)
        existing = self._edges.get(key)
        if existing is None or bound.tighter_than(existing):
            self._edges[key] = bound

    def add_atom(self, atom: Expr) -> bool:
        """Ingest one comparison atom; returns True when usable."""
        normalized = normalize_comparison(atom)
        if normalized is None:
            return False
        form, op = normalized
        if op in ("=", "!="):
            if op == "!=":
                return False
            # u = v + c  ==>  u - v <= c and v - u <= -c.
            usable = self._ingest_inequality(form, "<=")
            usable = self._ingest_inequality(form.negate(), "<=") and usable
            return usable
        if op in (">", ">="):
            form = form.negate()
            op = "<" if op == ">" else "<="
        return self._ingest_inequality(form, op)

    def _ingest_inequality(self, form, op: str) -> bool:
        """``form op 0`` with op in {<, <=}; accepts <=2 unit variables."""
        strict = op == "<"
        refs = list(form.coeffs.items())
        if len(refs) == 1:
            ref, coeff = refs[0]
            if coeff == 1:
                # ref <= -constant
                self.add_edge(ref, _ZERO, Bound(-form.constant, strict))
                return True
            if coeff == -1:
                # -ref + c <= 0  ==>  ZERO - ref <= -c
                self.add_edge(_ZERO, ref, Bound(-form.constant, strict))
                return True
            return False
        if len(refs) == 2:
            (ref_a, coeff_a), (ref_b, coeff_b) = refs
            if coeff_a == 1 and coeff_b == -1:
                self.add_edge(ref_a, ref_b, Bound(-form.constant, strict))
                return True
            if coeff_a == -1 and coeff_b == 1:
                self.add_edge(ref_b, ref_a, Bound(-form.constant, strict))
                return True
        return False

    def close(self) -> dict[tuple[ColumnRef, ColumnRef], Bound]:
        """Floyd–Warshall closure; returns the tightest derived edges."""
        distance = dict(self._edges)
        variables = list(self._vars)
        for middle in variables:
            for source in variables:
                through = distance.get((source, middle))
                if through is None:
                    continue
                for sink in variables:
                    tail = distance.get((middle, sink))
                    if tail is None:
                        continue
                    candidate = through + tail
                    existing = distance.get((source, sink))
                    if existing is None or candidate.tighter_than(existing):
                        distance[(source, sink)] = candidate
        return distance

    def derived_bounds(self, ref_name: str) -> list[Expr]:
        """Upper/lower bound conjuncts for every variable of *ref_name*."""
        conjuncts: list[Expr] = []
        closure = self.close()
        for variable in self._vars:
            if variable.qualifier != ref_name:
                continue
            upper = closure.get((variable, _ZERO))
            if upper is not None:
                op = "<" if upper.strict else "<="
                conjuncts.append(
                    BinaryOp(op, variable, Literal(_as_number(upper.value))))
            lower = closure.get((_ZERO, variable))
            if lower is not None:
                op = ">" if lower.strict else ">="
                conjuncts.append(
                    BinaryOp(op, variable, Literal(_as_number(-lower.value))))
        return conjuncts


def _as_number(value: float) -> int | float:
    return int(value) if value == int(value) else value


class _EqualityClasses:
    """Union-find over variables related by equality atoms."""

    def __init__(self) -> None:
        self._parent: dict[ColumnRef, ColumnRef] = {}

    def _find(self, ref: ColumnRef) -> ColumnRef:
        parent = self._parent.setdefault(ref, ref)
        if parent is ref or parent == ref:
            return ref
        root = self._find(parent)
        self._parent[ref] = root
        return root

    def union(self, left: ColumnRef, right: ColumnRef) -> None:
        self._parent[self._find(left)] = self._find(right)

    def add_atom(self, atom: Expr) -> None:
        if isinstance(atom, BinaryOp) and atom.op == "=" \
                and isinstance(atom.left, ColumnRef) \
                and isinstance(atom.right, ColumnRef):
            self.union(atom.left, atom.right)

    def counterpart(self, ref: ColumnRef, target_qualifier: str,
                    candidates: set[ColumnRef]) -> ColumnRef | None:
        """A variable of *target_qualifier* equal to *ref*, if any."""
        root = self._find(ref)
        for candidate in candidates:
            if candidate.qualifier == target_qualifier \
                    and self._find(candidate) == root:
                return candidate
        return None


def derive_context_conjuncts(
        correlation: list[Expr],
        query_conjuncts: list[Expr],
        context_name: str,
        target_name: str) -> list[Expr]:
    """Figure 4, lines 6–7: derive conjuncts referring only to *context*.

    *correlation* holds the (position-filtered) correlation conjuncts
    between the context and target references; *query_conjuncts* are the
    query condition's conjuncts bound to the target reference. Both use
    qualified column references (``a.rtime``).

    The result contains, deduplicated:

    * correlation conjuncts already referring only to the context;
    * equality-propagated query conjuncts;
    * difference-closure bounds on the context's numeric variables.
    """
    context_name = context_name.lower()
    target_name = target_name.lower()
    derived: list[Expr] = []
    seen: set[Expr] = set()

    def emit(conjunct: Expr) -> None:
        if conjunct not in seen:
            seen.add(conjunct)
            derived.append(conjunct)

    # 1. Correlation conjuncts local to the context reference.
    for conjunct in correlation:
        qualifiers = {ref.qualifier for ref in conjunct.referenced_columns()}
        if qualifiers == {context_name}:
            emit(conjunct)

    # 2. Equality propagation of query conjuncts.
    classes = _EqualityClasses()
    all_vars: set[ColumnRef] = set()
    for conjunct in correlation:
        classes.add_atom(conjunct)
        all_vars.update(conjunct.referenced_columns())
    for conjunct in query_conjuncts:
        all_vars.update(conjunct.referenced_columns())
    for conjunct in query_conjuncts:
        refs = conjunct.referenced_columns()
        if not refs:
            continue
        mapping: dict[Expr, Expr] = {}
        replaceable = True
        for ref in refs:
            if ref.qualifier == context_name:
                continue
            counterpart = classes.counterpart(ref, context_name, all_vars)
            if counterpart is None:
                replaceable = False
                break
            mapping[ref] = counterpart
        if replaceable:
            emit(conjunct.substitute(mapping))

    # 3. Numeric difference-constraint closure.
    closure = DifferenceClosure()
    ingested_any = False
    for conjunct in correlation + query_conjuncts:
        if closure.add_atom(conjunct):
            ingested_any = True
    if ingested_any:
        for bound in closure.derived_bounds(context_name):
            emit(bound)
    return derived
