"""The expanded-rewrite analysis (Figure 4 of the paper).

Given the query condition ``s`` on the reads table and an ordered rule
list, derives for every rule and context reference a *context condition*
(the data needed to decide the rule's action on query rows), and
assembles:

* ``cc`` — the union (OR) of all context conditions;
* ``ec`` — the expanded condition ``s OR cc``, strengthened with
  *factored bounds*: when every disjunct implies a bound on the same
  column (e.g. ``rtime < T1`` and ``rtime < T1 + 5 mins``), the weaker
  bound is emitted as a top-level conjunct so the planner can drive an
  index range scan through it;
* the residual condition ``s'`` to re-apply after cleansing, minus
  conjuncts provably covered by every context condition (and touching
  no column any rule modifies).

Infeasibility (``Q_e = null``) arises exactly as in the paper: some
context reference yields no derivable conjunct (its context set is
unbounded), so no condition can be pushed below cleansing.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.analysis.linear import normalize_comparison
from repro.minidb.expressions import (
    BinaryOp,
    ColumnRef,
    Expr,
    InSubquery,
    Literal,
    and_all,
    or_all,
)
from repro.rewrite.positions import correlation_conjuncts
from repro.rewrite.transitivity import derive_context_conjuncts
from repro.sqlts.model import CleansingRule

__all__ = ["RuleContextAnalysis", "ExpandedAnalysis", "analyze_expanded",
           "FAULT_ENV"]

#: Test-only fault injection: when this environment variable is set to a
#: non-empty value other than "0", :func:`analyze_expanded` deliberately
#: drops every derived context condition, collapsing the expanded
#: condition ``ec = s OR cc`` to just ``s``. That is precisely the class
#: of silent wrong-answer bug the differential fuzzer exists to catch
#: (the cleansing window loses the context rows outside the query
#: region), and the fuzz acceptance test flips this flag to prove the
#: oracle detects it and the shrinker minimizes it. Never set outside
#: tests; the flag is read per call and defaults to off. The value
#: ``codegen`` selects the codegen emitter's fault instead (see
#: ``repro.minidb.codegen.pipeline``) and ``storage`` the disk
#: backend's page-decode fault (``repro.minidb.storage.heap``), so
#: the drills stay separable.
FAULT_ENV = "REPRO_FUZZ_INJECT_BUG"


def _fault_injected() -> bool:
    return os.environ.get(FAULT_ENV, "") not in ("", "0", "codegen",
                                             "storage")


@dataclass
class RuleContextAnalysis:
    """Per-rule outcome of the Figure 4 loop (lines 2–10)."""

    rule: CleansingRule
    #: context-reference name -> derived conjuncts (unqualified, over R).
    context_conditions: dict[str, list[Expr]] = field(default_factory=dict)
    feasible: bool = True

    def disjuncts(self) -> list[Expr]:
        """One AND-ed context condition per context reference."""
        out = []
        for conjuncts in self.context_conditions.values():
            combined = and_all(conjuncts)
            if combined is not None:
                out.append(combined)
        return out


@dataclass
class ExpandedAnalysis:
    """The assembled expanded-rewrite conditions."""

    feasible: bool
    per_rule: list[RuleContextAnalysis]
    #: OR of all context conditions (None when no context data is needed).
    cc: Expr | None
    #: Expanded condition to push into R (None when infeasible).
    ec: Expr | None
    #: Top-level conjuncts of ec (factored bounds + the disjunction).
    ec_conjuncts: list[Expr] = field(default_factory=list)
    #: Residual conjuncts (s') to re-apply after cleansing.
    residual: list[Expr] = field(default_factory=list)


def _strip_qualifiers(expr: Expr) -> Expr:
    mapping = {ref: ColumnRef(ref.name)
               for ref in expr.referenced_columns()
               if ref.qualifier is not None}
    return expr.substitute(mapping)


def _qualify(expr: Expr, qualifier: str) -> Expr:
    mapping = {ref: ColumnRef(ref.name, qualifier)
               for ref in expr.referenced_columns()
               if ref.qualifier is None}
    return expr.substitute(mapping)


def analyze_rule(rule: CleansingRule,
                 s_conjuncts: list[Expr],
                 allowed_columns: set[str] | None = None,
                 ) -> RuleContextAnalysis:
    """Run lines 2–10 of Figure 4 for one rule.

    *s_conjuncts* are the query's conjuncts on the reads table with
    unqualified column references. ``allowed_columns``, when given,
    restricts derived context conjuncts to columns that exist where the
    expanded condition is pushed (the base reads table): conjuncts over
    rule-created columns (e.g. ``has_case_nearby``) cannot travel into
    σ_ec(R) and are dropped — which is what makes the missing rule's r2
    infeasible for upper-bounded queries, as in the paper's Table 1.
    """
    analysis = RuleContextAnalysis(rule)
    bound_s = [_qualify(conjunct, rule.target.name)
               for conjunct in s_conjuncts]
    for ref in rule.context_references:
        correlation = correlation_conjuncts(rule, ref)
        if correlation is None:
            analysis.feasible = False
            analysis.context_conditions.clear()
            return analysis
        derived = derive_context_conjuncts(correlation, bound_s, ref.name,
                                           rule.target.name)
        stripped = [_strip_qualifiers(conjunct) for conjunct in derived]
        if allowed_columns is not None:
            stripped = [
                conjunct for conjunct in stripped
                if {r.name for r in conjunct.referenced_columns()}
                <= allowed_columns]
        if not stripped:
            analysis.feasible = False
            analysis.context_conditions.clear()
            return analysis
        analysis.context_conditions[ref.name] = stripped
    return analysis


def _column_bounds(conjuncts: list[Expr]) -> dict[str, list]:
    """Per-column (upper, lower) numeric bounds implied by *conjuncts*.

    Returns ``{column: [upper|None, lower|None]}`` with each bound a
    ``(value, strict)`` pair; only single-variable unit-coefficient
    comparisons contribute.
    """
    bounds: dict[str, list] = {}
    for conjunct in conjuncts:
        normalized = normalize_comparison(conjunct)
        if normalized is None:
            continue
        form, op = normalized
        ref = form.single_reference()
        if ref is None:
            negated = form.negate()
            ref = negated.single_reference()
            if ref is None:
                continue
            flip = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}
            if op not in flip:
                continue
            op = flip[op]
            form = negated
        if op in ("=", "!="):
            continue
        value = -form.constant
        strict = op in ("<", ">")
        entry = bounds.setdefault(ref.name, [None, None])
        if op in ("<", "<="):
            if entry[0] is None or value < entry[0][0]:
                entry[0] = (value, strict)
        else:
            if entry[1] is None or value > entry[1][0]:
                entry[1] = (value, strict)
    return bounds


def _factored_bound_conjuncts(disjuncts: list[list[Expr]]) -> list[Expr]:
    """Bounds implied by *every* disjunct, weakened to their union."""
    if not disjuncts:
        return []
    per_disjunct = [_column_bounds(conjuncts) for conjuncts in disjuncts]
    columns = set(per_disjunct[0])
    for bounds in per_disjunct[1:]:
        columns &= set(bounds)
    factored: list[Expr] = []
    for column in sorted(columns):
        uppers = [bounds[column][0] for bounds in per_disjunct]
        lowers = [bounds[column][1] for bounds in per_disjunct]
        if all(upper is not None for upper in uppers):
            value = max(upper[0] for upper in uppers)
            strict = all(upper[1] for upper in uppers if upper[0] == value)
            op = "<" if strict else "<="
            factored.append(BinaryOp(op, ColumnRef(column),
                                     Literal(_number(value))))
        if all(lower is not None for lower in lowers):
            value = min(lower[0] for lower in lowers)
            strict = all(lower[1] for lower in lowers if lower[0] == value)
            op = ">" if strict else ">="
            factored.append(BinaryOp(op, ColumnRef(column),
                                     Literal(_number(value))))
    return factored


def _number(value: float) -> int | float:
    return int(value) if value == int(value) else value


def analyze_expanded(rules: list[CleansingRule],
                     s_conjuncts: list[Expr],
                     allowed_columns: set[str] | None = None,
                     ) -> ExpandedAnalysis:
    """Assemble the expanded rewrite's conditions for an ordered rule list.

    Multiple rules follow §5.4: the overall context condition is the OR
    of each rule's, and any infeasible rule makes the whole expanded
    rewrite infeasible. ``allowed_columns`` restricts context conjuncts
    to pushable columns (see :func:`analyze_rule`).
    """
    # Conjuncts over columns some rule MODIFYs are unreliable before
    # cleansing completes: a row may satisfy them only after (or only
    # before) modification. They are excluded from context derivation
    # and from the expanded condition's s-disjunct (a sound weakening),
    # and always re-applied in the residual.
    modified_columns: set[str] = set()
    for rule in rules:
        modified_columns.update(rule.action.assignments)
    s_stable = [conjunct for conjunct in s_conjuncts
                if not ({ref.name for ref in conjunct.referenced_columns()}
                        & modified_columns)]
    per_rule = [analyze_rule(rule, s_stable, allowed_columns)
                for rule in rules]
    if any(not analysis.feasible for analysis in per_rule):
        return ExpandedAnalysis(feasible=False, per_rule=per_rule,
                                cc=None, ec=None)
    context_disjuncts: list[Expr] = []
    context_conjunct_lists: list[list[Expr]] = []
    for analysis in per_rule:
        for conjuncts in analysis.context_conditions.values():
            # IN-subqueries cannot appear under OR in the engine's
            # dialect; dropping them from a disjunct only widens ec.
            plain = [conjunct for conjunct in conjuncts
                     if not _contains_subquery(conjunct)]
            combined = and_all(plain)
            if combined is not None:
                context_disjuncts.append(combined)
                context_conjunct_lists.append(plain)
    if context_disjuncts and _fault_injected():
        # Deliberate test-only wrong-answer bug (see FAULT_ENV above).
        context_disjuncts = []
        context_conjunct_lists = []
    cc = or_all(context_disjuncts)

    # The s-disjunct excludes IN-subquery conjuncts (weakening is safe:
    # ec only needs to select a superset of the required rows), because
    # subqueries cannot appear under OR in the engine's dialect.
    s_plain = [conjunct for conjunct in s_stable
               if not _contains_subquery(conjunct)]
    disjunct_lists = [s_plain] + context_conjunct_lists
    factored = _factored_bound_conjuncts(disjunct_lists)
    s_disjunct = and_all(s_plain) or Literal(True)
    unique_disjuncts: list[Expr] = []
    for disjunct in [s_disjunct] + context_disjuncts:
        if disjunct not in unique_disjuncts:
            unique_disjuncts.append(disjunct)
    or_part = or_all(unique_disjuncts)
    ec_conjuncts = list(factored)
    if context_disjuncts:
        ec_conjuncts.append(or_part)
    else:
        # No context data needed at all: ec degenerates to s.
        ec_conjuncts = list(s_plain)
    deduped: list[Expr] = []
    for conjunct in ec_conjuncts:
        if conjunct not in deduped:
            deduped.append(conjunct)
    ec_conjuncts = deduped
    ec = and_all(ec_conjuncts) or Literal(True)

    residual: list[Expr] = []
    for conjunct in s_conjuncts:
        touched = {ref.name for ref in conjunct.referenced_columns()}
        covered_everywhere = context_conjunct_lists and all(
            conjunct in conjuncts for conjuncts in context_conjunct_lists)
        if covered_everywhere and not (touched & modified_columns):
            continue
        residual.append(conjunct)
    return ExpandedAnalysis(feasible=True, per_rule=per_rule, cc=cc, ec=ec,
                            ec_conjuncts=ec_conjuncts, residual=residual)


def _contains_subquery(conjunct: Expr) -> bool:
    return any(isinstance(node, InSubquery) for node in conjunct.walk())
