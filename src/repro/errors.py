"""Exception hierarchy shared by all repro subsystems.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch one base class. Subsystems raise the most specific
subclass that applies; error messages always name the offending object
(table, column, rule, token) to make failures diagnosable without a
debugger.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class MiniDbError(ReproError):
    """Base class for errors raised by the minidb engine."""


class CatalogError(MiniDbError):
    """A table, column, or index was missing or already defined."""


class SchemaError(MiniDbError):
    """A schema definition or row value violated the declared schema."""


class TypeMismatchError(MiniDbError):
    """An expression combined values of incompatible SQL types."""


class SqlSyntaxError(MiniDbError):
    """The SQL text could not be tokenized or parsed.

    Attributes:
        line: 1-based line of the offending token, when known.
        column: 1-based column of the offending token, when known.
    """

    def __init__(self, message: str, line: int | None = None,
                 column: int | None = None) -> None:
        location = ""
        if line is not None:
            location = f" (line {line}, column {column})"
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class PlanningError(MiniDbError):
    """A semantically invalid query was handed to the planner."""


class ExecutionError(MiniDbError):
    """A runtime failure while executing a physical plan."""


class SnapshotError(MiniDbError):
    """An MVCC snapshot was used after release or outside its scope."""


class StorageError(MiniDbError):
    """The on-disk storage engine hit an invalid format or state."""


class StorageCorruptionError(StorageError):
    """A page or log record failed its checksum or structural checks."""


class RuleError(ReproError):
    """Base class for SQL-TS cleansing-rule errors."""


class RuleSyntaxError(RuleError):
    """The SQL-TS rule text could not be parsed."""


class RuleValidationError(RuleError):
    """A parsed rule violated a semantic constraint (e.g. two targets)."""


class RewriteError(ReproError):
    """The rewrite engine could not produce a correct rewritten query."""


class DataGenError(ReproError):
    """RFIDGen was configured inconsistently."""
