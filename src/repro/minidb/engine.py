"""The minidb database facade.

:class:`Database` ties the subsystems together: catalog, statistics,
planner, executor. It accepts SQL text, parsed statements, or logical
plans, and returns materialized :class:`ResultSet` objects. ``explain``
surfaces the costed physical plan; the deferred-cleansing rewrite engine
uses its root cost estimate to choose among candidate rewrites, mirroring
how the paper compiles m+1 SQL statements on DB2 and keeps the cheapest.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from repro import knobs
from repro.minidb import parallel
from repro.minidb.catalog import Catalog
from repro.minidb.codegen import CompiledSpineOp, cache_stats, codegen_enabled
from repro.minidb.optimizer.cost import CostModel
from repro.minidb.optimizer.planner import Planner, PlannerOptions
from repro.minidb.optimizer.stats import StatsRepository
from repro.minidb.plan import shard
from repro.minidb.plan.builder import build_plan
from repro.minidb.plan.logical import LogicalNode
from repro.minidb.plan.physical import FilterOp, PhysicalNode, SortOp
from repro.minidb.plan.shard import ExchangeOp
from repro.minidb.plan.window import WindowOp
from repro.minidb import vector
from repro.minidb.vector import materialize
from repro.minidb.result import ResultSet
from repro.minidb.schema import Column, TableSchema
from repro.minidb.sqlparse import parse_select, parse_sql
from repro.minidb.sqlparse.ast import (
    CreateIndexStmt,
    CreateTableStmt,
    DropTableStmt,
    InsertStmt,
    SelectStmt,
)
from repro.minidb.table import Table

__all__ = ["Database", "Explained", "ExecutionMetrics", "PreparedPlanCache"]


@dataclass
class ExecutionMetrics:
    """Work counters collected from an executed physical plan.

    These are the quantities the paper's analysis reasons about: how many
    rows each rewrite pulls from base tables, how many rows it sorts, and
    how many sort passes it needs.
    """

    rows_emitted: int = 0
    rows_sorted: int = 0
    sort_operators: int = 0
    operators: int = 0
    #: Window operators whose last execution actually fanned out to a
    #: worker pool (0 under serial evaluation — the fuzz oracle asserts
    #: on this to prove the parallel path was exercised, not skipped).
    parallel_window_ops: int = 0
    #: Prepared-plan cache counters for the call that produced these
    #: metrics (filled in by ``Database.execute_with_metrics``).
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    #: Columnar chunks emitted across all operators; 0 when the plan ran
    #: tuple-at-a-time (``REPRO_BATCH_SIZE=0``). The fuzz oracle's
    #: ``vectorized`` strategy asserts on this to prove the batch path
    #: actually executed.
    batches: int = 0
    #: Rows filter predicates evaluated vs rows that survived, summed
    #: over every FilterOp — their ratio is the selection-vector density.
    filter_input_rows: int = 0
    filter_output_rows: int = 0
    #: (operator label, rows produced) per plan node in walk order.
    operator_rows: list[tuple[str, int]] = field(default_factory=list)
    #: Exchange operators that actually fanned out to the shard pool.
    sharded_segments: int = 0
    #: Largest pool size any Exchange used this execution (0 = serial).
    shard_workers: int = 0
    #: Morsels dispatched / morsels run by a worker other than their
    #: round-robin home (work stealing), summed over all Exchanges.
    shard_morsels: int = 0
    shard_steals: int = 0
    #: Rows produced per morsel, concatenated across Exchanges in plan
    #: walk order — the shard balance the morsel builder achieved.
    shard_rows: list[int] = field(default_factory=list)
    #: Shard-pool lifecycle counters for the call that produced these
    #: metrics (filled in by ``Database.execute_with_metrics``); a reused
    #: warm pool shows spawns=0.
    pool_spawns: int = 0
    pool_reuses: int = 0
    #: Incremental-cleansing counters for the call that produced these
    #: metrics (filled in by the rewrite engine's
    #: ``execute_with_metrics``): delta epochs consumed from table delta
    #: logs, cluster-key sequences re-cleansed by region-cache patches,
    #: and region-cache entries patched in place instead of discarded.
    delta_epochs_applied: int = 0
    sequences_recleaned: int = 0
    cache_patches: int = 0
    #: Compiled spines in the executed plan (0 unless REPRO_CODEGEN=1
    #: produced at least one fused kernel for this query).
    fused_pipelines: int = 0
    #: Disk-storage counters for the call that produced these metrics
    #: (filled in by ``execute_with_metrics``; all 0 in memory mode):
    #: pages faulted into the buffer pool, pages written back, pages
    #: evicted from it, WAL bytes appended (non-zero only if the call
    #: mutated tables), pages skipped by zone-map pruning, and
    #: readahead activity (pages staged ahead / staged but never used).
    pages_read: int = 0
    pages_written: int = 0
    pages_evicted: int = 0
    wal_bytes: int = 0
    pages_pruned: int = 0
    pages_prefetched: int = 0
    prefetch_wasted: int = 0
    #: Kernel compile-cache activity and compile time for the call that
    #: produced these metrics (filled in by ``execute_with_metrics``).
    #: A plan-cache hit re-runs its kernels without touching either.
    codegen_cache_hits: int = 0
    codegen_cache_misses: int = 0
    compile_ms: float = 0.0
    #: Encoded-execution activity for the call that produced these
    #: metrics (filled in by ``execute_with_metrics``): encoded columns
    #: served by scans, full decodes back to plain lists (fallback
    #: boundaries), and heap-page bytes avoided by the dictionary page
    #: codec for writes issued during the call.
    encoded_columns: int = 0
    decode_fallbacks: int = 0
    bytes_saved: int = 0

    @property
    def selection_density(self) -> float | None:
        """Fraction of filtered rows that survived, or None (no filters)."""
        if not self.filter_input_rows:
            return None
        return self.filter_output_rows / self.filter_input_rows

    @classmethod
    def from_plan(cls, plan: PhysicalNode) -> "ExecutionMetrics":
        metrics = cls()
        for node in plan.walk():
            metrics.operators += 1
            metrics.rows_emitted += node.actual_rows
            metrics.batches += node.actual_batches
            metrics.operator_rows.append((node.label(), node.actual_rows))
            if isinstance(node, FilterOp):
                metrics.filter_input_rows += node.input_rows
                metrics.filter_output_rows += node.actual_rows
            if isinstance(node, SortOp):
                metrics.rows_sorted += node.sorted_rows
                metrics.sort_operators += 1
            elif isinstance(node, WindowOp) and node.sorted_rows:
                metrics.rows_sorted += node.sorted_rows
                metrics.sort_operators += 1
            if isinstance(node, WindowOp) and node.parallel_workers:
                metrics.parallel_window_ops += 1
            if isinstance(node, CompiledSpineOp):
                metrics.fused_pipelines += 1
            if isinstance(node, ExchangeOp) and node.workers_used:
                metrics.sharded_segments += 1
                metrics.shard_workers = max(metrics.shard_workers,
                                            node.workers_used)
                metrics.shard_morsels += node.morsel_count
                metrics.shard_steals += node.steal_count
                metrics.shard_rows.extend(node.per_shard_rows)
        return metrics


@dataclass
class Explained:
    """The outcome of ``Database.explain``."""

    plan: PhysicalNode
    text: str
    estimated_cost: float
    estimated_rows: float


class PreparedPlanCache:
    """SQL text -> (parsed AST, costed physical plan) memoization.

    An entry is valid only while the database looks exactly as it did at
    planning time: the key's *fingerprint* combines the catalog version,
    the statistics version, every table's data version, and the planner
    options in effect. Any DDL, load, insert, or RUNSTATS therefore
    invalidates structurally — no explicit invalidation hooks needed.

    Parsed ASTs are kept separately from plans (parsing never goes
    stale), so a fingerprint change still skips the lexer/parser.
    Entries are LRU-evicted beyond ``capacity``.
    """

    def __init__(self, capacity: int = 256) -> None:
        self.capacity = capacity
        self._parsed: OrderedDict[str, SelectStmt] = OrderedDict()
        self._plans: OrderedDict[tuple, PhysicalNode] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def parsed(self, sql: str) -> SelectStmt | None:
        statement = self._parsed.get(sql)
        if statement is not None:
            self._parsed.move_to_end(sql)
        return statement

    def remember_parsed(self, sql: str, statement: SelectStmt) -> None:
        self._parsed[sql] = statement
        self._parsed.move_to_end(sql)
        while len(self._parsed) > self.capacity:
            self._parsed.popitem(last=False)

    def plan(self, sql: str, fingerprint: tuple) -> PhysicalNode | None:
        entry = self._plans.get((sql, fingerprint))
        if entry is None:
            self.misses += 1
            return None
        self._plans.move_to_end((sql, fingerprint))
        self.hits += 1
        entry.reset_metrics()
        return entry

    def remember_plan(self, sql: str, fingerprint: tuple,
                      plan: PhysicalNode) -> None:
        self._plans[(sql, fingerprint)] = plan
        self._plans.move_to_end((sql, fingerprint))
        while len(self._plans) > self.capacity:
            self._plans.popitem(last=False)

    def clear(self) -> None:
        self._parsed.clear()
        self._plans.clear()


class Database:
    """A relational database with a SQL/OLAP query engine.

    Row storage is pluggable: ``storage="memory"`` (the default) keeps
    rows in Python lists; ``storage="disk"`` stores them in slotted
    pages behind a bounded buffer pool, with a write-ahead log and
    checkpointing for crash recovery (see ``repro.minidb.storage``).
    ``REPRO_STORAGE`` sets the default mode; *storage_path* names the
    database directory (a throwaway temp dir when omitted), and reopening
    an existing directory runs recovery — the catalog comes back with
    the exact state of the last committed write.
    """

    def __init__(self, options: PlannerOptions | None = None,
                 plan_cache_size: int = 256, *,
                 storage: str | None = None,
                 storage_path: str | None = None,
                 buffer_pages: int | None = None,
                 page_size: int | None = None,
                 group_commit: object | None = None,
                 readahead: int | None = None,
                 encode: bool | None = None) -> None:
        # Attributes __del__/__exit__ touch are assigned before anything
        # that can raise, so shutdown() is safe after a failed __init__.
        self.storage = None
        self._shard_pool: parallel.ShardWorkerPool | None = None
        self._storage_closed = False
        knobs.validate_environment()
        #: Per-database override for encoded columnar execution;
        #: None defers to REPRO_ENCODE (default on).
        self.encode = encode
        mode = storage or os.environ.get("REPRO_STORAGE", "memory")
        if mode not in ("memory", "disk"):
            raise ValueError(
                f"unknown storage mode {mode!r} (memory or disk)")
        if mode == "disk":
            from repro.minidb.storage.backend import DiskStorage

            self.storage = DiskStorage(path=storage_path,
                                       buffer_pages=buffer_pages,
                                       page_size=page_size,
                                       group_commit=group_commit,
                                       readahead=readahead,
                                       encode=encode)
        self.catalog = Catalog(self.storage)
        if self.storage is not None:
            self.storage.open(self.catalog)
        if encode is not None:
            for table in self.catalog:
                table.encode = encode
        self.stats = StatsRepository()
        self.cost_model = CostModel()
        self.options = options or PlannerOptions()
        self.plan_cache = PreparedPlanCache(plan_cache_size)
        #: Lifetime shard-pool counters; the pool-reuse invariant ("one
        #: spawn per database state, not per query") is pinned on these.
        self.pool_spawns = 0
        self.pool_reuses = 0

    def __del__(self) -> None:
        try:
            self.shutdown()
        except Exception:  # noqa: BLE001 — interpreter may be tearing down
            pass

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    def close(self) -> None:
        """Release the shard pool (if any); the database stays usable."""
        pool = getattr(self, "_shard_pool", None)
        self._shard_pool = None
        if pool is not None:
            pool.close()

    def shutdown(self) -> None:
        """Release the pool and cleanly close disk storage (checkpoint,
        truncate the WAL, delete a temp-owned directory). The database
        is unusable afterwards in disk mode.

        Idempotent, and safe to call on a partially constructed instance
        (``__exit__``/``__del__`` after a failed ``__init__``): every
        attribute touched here is assigned before ``__init__`` can
        raise, and the storage backend is closed exactly once.
        """
        self.close()
        storage = getattr(self, "storage", None)
        if storage is not None and not getattr(self, "_storage_closed",
                                               True):
            self._storage_closed = True
            storage.close()

    def checkpoint(self) -> None:
        """Force a storage checkpoint now (no-op in memory mode)."""
        if self.storage is not None:
            self.storage.checkpoint()

    def _encode_resolved(self) -> bool:
        """Effective encoded-execution setting (kwarg over knob)."""
        if self.encode is None:
            return vector.encode_enabled()
        return bool(self.encode)

    def snapshot(self, *, plan_cache: PreparedPlanCache | None = None):
        """Pin a consistent MVCC read view over every table.

        The returned :class:`~repro.minidb.snapshot.Snapshot` sees
        exactly the current (schema_epoch, data_epoch, stats) per table:
        concurrent :meth:`append` calls land invisibly, and a
        ``replace_rows``/``drop_table`` detaches the pinned versions
        onto frozen copies. Use it as a context manager (or call
        ``release()``) so pinned epochs can retire. *plan_cache* lets a
        serving session reuse prepared plans across its snapshots.
        """
        from repro.minidb.snapshot import Snapshot

        return Snapshot(self, plan_cache=plan_cache)

    # -- shard pool ---------------------------------------------------------

    def _pool_fingerprint(self) -> tuple:
        """Everything a forked worker snapshot depends on.

        Workers hold fork-time copies of the catalog and table rows, so
        any data/DDL/stats change — or a knob change that alters plan
        shapes — makes the current pool stale.
        """
        return (self.catalog.version, self.stats.version,
                tuple(table.version for table in self.catalog),
                parallel.configured_worker_count(),
                shard.SHARD_ROW_THRESHOLD,
                codegen_enabled(),
                self._encode_resolved())

    def shard_pool(self) -> "parallel.ShardWorkerPool | None":
        """The persistent worker pool, spawning or respawning as needed.

        Returns None when ``REPRO_WORKERS`` disables parallelism. The
        pool is forked lazily on the first dispatch and reused across
        queries until the database fingerprint moves.
        """
        workers = parallel.configured_worker_count()
        if workers < 2:
            self.close()
            return None
        fingerprint = self._pool_fingerprint()
        pool = self._shard_pool
        if pool is not None and pool.alive \
                and pool.fingerprint == fingerprint:
            self.pool_reuses += 1
            return pool
        self.close()
        pool = parallel.ShardWorkerPool(self, workers, fingerprint)
        self._shard_pool = pool
        self.pool_spawns += 1
        return pool

    def discard_shard_pool(self) -> None:
        """Drop a failed pool so the next dispatch forks a fresh one."""
        self.close()

    # -- DDL / loading ------------------------------------------------------

    def create_table(self, name: str, schema: TableSchema) -> Table:
        """Create an empty table."""
        table = self.catalog.create_table(name, schema)
        if self.encode is not None:
            table.encode = self.encode
        return table

    def drop_table(self, name: str) -> None:
        self.catalog.drop_table(name)
        self.stats.invalidate(name)

    def table(self, name: str) -> Table:
        return self.catalog.table(name)

    def load(self, name: str,
             rows: Iterable[Sequence[Any] | Mapping[str, Any]]) -> int:
        """Bulk-load rows and refresh the table's statistics."""
        table = self.catalog.table(name)
        buffered = list(rows)
        if buffered and isinstance(buffered[0], Mapping):
            names = table.schema.names
            buffered = [[row.get(column) for column in names]
                        for row in buffered]
        loaded = table.bulk_load(buffered)
        self.stats.analyze(table)
        return loaded

    def append(self, name: str,
               rows: Iterable[Sequence[Any] | Mapping[str, Any]]) -> int:
        """Streaming ingest: append rows, patching warm state in place.

        The incremental counterpart to :meth:`load`: rows land as one
        delta epoch (``Table.append_rows``), indexes are merged rather
        than rebuilt, the columnar cache extends lazily, and statistics
        are patched in place when a fresh analysis exists — keeping
        prepared plans and (via the delta log) materialized cleansing
        regions warm. Falls back to a full analyze when the cached stats
        were already stale. Returns the number of rows appended.
        """
        table = self.catalog.table(name)
        buffered = list(rows)
        if buffered and isinstance(buffered[0], Mapping):
            names = table.schema.names
            buffered = [[row.get(column) for column in names]
                        for row in buffered]
        if not buffered:
            return 0
        # get() both answers freshness and evicts a stale entry, so a
        # later apply_append can never patch on top of pre-append drift.
        stats_fresh = self.stats.get(table.name) is not None
        start = len(table.rows)
        appended = table.append_rows(buffered)
        if not (stats_fresh and self.stats.apply_append(table, start)):
            self.stats.analyze(table)
        return appended

    def create_index(self, table_name: str, column: str,
                     name: str | None = None) -> None:
        self.catalog.table(table_name).create_index(column, name)

    def analyze(self, table_name: str | None = None) -> None:
        """Recompute statistics (RUNSTATS equivalent)."""
        if table_name is not None:
            self.stats.analyze(self.catalog.table(table_name))
            return
        for table in self.catalog:
            self.stats.analyze(table)

    # -- planning -------------------------------------------------------

    def _ensure_stats(self) -> None:
        for table in self.catalog:
            if self.stats.get(table.name) is None:
                self.stats.analyze(table)

    def _to_logical(self, query: str | SelectStmt | LogicalNode) -> LogicalNode:
        if isinstance(query, LogicalNode):
            return query
        if isinstance(query, str):
            query = parse_select(query)
        return build_plan(query, self.catalog)

    def _fingerprint(self, options: PlannerOptions) -> tuple:
        """The staleness key guarding prepared-plan reuse.

        The worker count and shard threshold participate because the
        shard pass changes the plan *shape* with them: a plan cached
        under one setting must not be replayed under another.

        Table *data* epochs deliberately do not participate: physical
        plans read table rows live at execution time (Exchange morsels
        are built at dispatch), so an append never makes a plan wrong —
        only stale statistics can, and those are covered by the stats
        version (``StatsRepository.apply_append`` keeps it unchanged for
        trickle appends precisely so prepared plans stay warm). Schema
        epochs still participate: a new index should trigger replanning.
        """
        return (self.catalog.version, self.stats.version,
                tuple(table.schema_epoch for table in self.catalog),
                tuple(sorted(vars(options).items())),
                parallel.configured_worker_count(),
                shard.SHARD_ROW_THRESHOLD,
                codegen_enabled(),
                self._encode_resolved())

    def _arm_exchanges(self, plan: PhysicalNode, logical: LogicalNode,
                       options: PlannerOptions) -> None:
        """Attach the dispatch payload to every Exchange in *plan*.

        The payload is the pickled logical plan + options: workers
        re-plan it serially to reconstruct the segment subtrees. Plans
        without Exchanges pay nothing here.
        """
        exchanges = [node for node in plan.walk()
                     if isinstance(node, ExchangeOp)]
        if not exchanges:
            return
        payload = parallel.dumps_plan(logical, options)
        for exchange in exchanges:
            exchange.attach(self, payload)

    def plan(self, query: str | SelectStmt | LogicalNode,
             options: PlannerOptions | None = None) -> PhysicalNode:
        """Produce the costed physical plan without executing it.

        Plans for SQL *text* are memoized in :attr:`plan_cache`: repeated
        workload queries skip the parse and costing passes entirely as
        long as the catalog, statistics, and table versions are
        unchanged. A cache hit returns the same plan object with its
        execution counters reset.
        """
        self._ensure_stats()
        effective = options or self.options
        if isinstance(query, str):
            fingerprint = self._fingerprint(effective)
            cached = self.plan_cache.plan(query, fingerprint)
            if cached is not None:
                return cached
            statement = self.plan_cache.parsed(query)
            if statement is None:
                statement = parse_select(query)
                self.plan_cache.remember_parsed(query, statement)
            planner = Planner(self.catalog, self.stats, self.cost_model,
                              effective)
            logical = build_plan(statement, self.catalog)
            plan = planner.plan(logical)
            self._arm_exchanges(plan, logical, effective)
            self.plan_cache.remember_plan(query, fingerprint, plan)
            return plan
        planner = Planner(self.catalog, self.stats, self.cost_model,
                          effective)
        logical = self._to_logical(query)
        plan = planner.plan(logical)
        self._arm_exchanges(plan, logical, effective)
        return plan

    def explain(self, query: str | SelectStmt | LogicalNode,
                options: PlannerOptions | None = None) -> Explained:
        """Plan *query* and return the plan with its cost estimate."""
        plan = self.plan(query, options)
        return Explained(plan=plan, text=plan.explain(),
                         estimated_cost=plan.estimated_cost,
                         estimated_rows=plan.estimated_rows)

    def explain_analyze(self, query: str | SelectStmt | LogicalNode,
                        options: PlannerOptions | None = None, *,
                        include_storage: bool = False) -> Explained:
        """Execute *query* and return the plan annotated with actual row
        counts (EXPLAIN ANALYZE).

        With ``include_storage=True`` (and disk storage) the text gains
        a trailing section with the storage-counter deltas this
        execution caused — pages read/written/evicted/pruned, readahead
        activity, and WAL bytes. Opt-in so the default text stays
        byte-stable across storage modes and execution paths.
        """
        before = (self.storage.counters
                  if include_storage and self.storage is not None else None)
        plan = self.plan(query, options)
        materialize(plan)
        text = plan.explain(analyze=True)
        if before is not None:
            after = self.storage.counters
            lines = [f"  {name}={after[name] - before[name]}"
                     for name in ("pages_read", "pages_written",
                                  "pages_evicted", "pages_pruned",
                                  "pages_prefetched", "prefetch_hits",
                                  "prefetch_wasted", "wal_bytes")]
            text = "\n".join([text, "Storage:"] + lines)
        return Explained(plan=plan, text=text,
                         estimated_cost=plan.estimated_cost,
                         estimated_rows=plan.estimated_rows)

    def explain_codegen(self, query: str | SelectStmt | LogicalNode,
                        options: PlannerOptions | None = None) -> str:
        """EXPLAIN CODEGEN: the generated kernel source for *query*.

        Plans the query (honoring ``REPRO_CODEGEN``) and returns the
        emitted source of every compiled spine, headed by its virtual
        filename (the one tracebacks and ``linecache`` report). When the
        plan contains no compiled pipeline, says why-ish: the knob state
        is included so a disabled knob is obvious.
        """
        plan = self.plan(query, options)
        sections: list[str] = []
        for index, node in enumerate(node for node in plan.walk()
                                     if isinstance(node, CompiledSpineOp)):
            sections.append(f"-- pipeline {index}: {node.filename}\n"
                            f"{node.source_text}")
        if not sections:
            state = "on" if codegen_enabled() else "off"
            return (f"-- no compiled pipelines "
                    f"(REPRO_CODEGEN is {state})\n")
        return "\n".join(sections)

    # -- execution --------------------------------------------------------

    def execute(self, query: str | SelectStmt | LogicalNode,
                options: PlannerOptions | None = None) -> ResultSet:
        """Plan and run *query*, returning a materialized result."""
        plan = self.plan(query, options)
        rows = materialize(plan)
        columns = [out.name for out in plan.schema]
        return ResultSet(columns, rows)

    def run(self, sql: str) -> ResultSet:
        """Execute any supported SQL statement.

        SELECT returns its result set; CREATE TABLE / CREATE INDEX return
        an empty ``ok`` result; INSERT returns the inserted-row count.
        """
        statement = parse_sql(sql)
        if isinstance(statement, SelectStmt):
            return self.execute(statement)
        if isinstance(statement, CreateTableStmt):
            self.create_table(statement.name, TableSchema(
                Column(name, sql_type)
                for name, sql_type in statement.columns))
            return ResultSet(["ok"], [])
        if isinstance(statement, CreateIndexStmt):
            self.create_index(statement.table, statement.column,
                              statement.name)
            return ResultSet(["ok"], [])
        if isinstance(statement, DropTableStmt):
            self.drop_table(statement.name)
            return ResultSet(["ok"], [])
        if isinstance(statement, InsertStmt):
            table = self.catalog.table(statement.table)
            names = statement.columns or list(table.schema.names)
            inserted = 0
            for row in statement.rows:
                if len(row) != len(names):
                    from repro.errors import SchemaError
                    raise SchemaError(
                        f"INSERT expects {len(names)} values, got {len(row)}")
                values = {
                    name: expr.bind(lambda q, n: 0)(())
                    for name, expr in zip(names, row)}
                table.insert(values)
                inserted += 1
            self.stats.analyze(table)
            return ResultSet(["rows_inserted"], [(inserted,)])
        raise AssertionError(f"unhandled statement {statement!r}")

    def execute_with_metrics(
            self, query: str | SelectStmt | LogicalNode,
            options: PlannerOptions | None = None,
    ) -> tuple[ResultSet, ExecutionMetrics]:
        """Run *query* and also report per-operator work counters."""
        hits_before = self.plan_cache.hits
        misses_before = self.plan_cache.misses
        spawns_before = self.pool_spawns
        reuses_before = self.pool_reuses
        codegen_before = cache_stats()
        encode_before = vector.encode_stats()
        storage_before = (self.storage.counters
                          if self.storage is not None else None)
        plan = self.plan(query, options)
        rows = materialize(plan)
        columns = [out.name for out in plan.schema]
        metrics = ExecutionMetrics.from_plan(plan)
        metrics.plan_cache_hits = self.plan_cache.hits - hits_before
        metrics.plan_cache_misses = self.plan_cache.misses - misses_before
        metrics.pool_spawns = self.pool_spawns - spawns_before
        metrics.pool_reuses = self.pool_reuses - reuses_before
        codegen_after = cache_stats()
        metrics.codegen_cache_hits = codegen_after[0] - codegen_before[0]
        metrics.codegen_cache_misses = codegen_after[1] - codegen_before[1]
        metrics.compile_ms = codegen_after[2] - codegen_before[2]
        encode_after = vector.encode_stats()
        metrics.encoded_columns = encode_after[0] - encode_before[0]
        metrics.decode_fallbacks = encode_after[1] - encode_before[1]
        metrics.bytes_saved = encode_after[2] - encode_before[2]
        if storage_before is not None:
            storage_after = self.storage.counters
            for name in ("pages_read", "pages_written", "pages_evicted",
                         "wal_bytes", "pages_pruned", "pages_prefetched",
                         "prefetch_wasted"):
                setattr(metrics, name,
                        storage_after[name] - storage_before[name])
        return (ResultSet(columns, rows), metrics)
