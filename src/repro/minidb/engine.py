"""The minidb database facade.

:class:`Database` ties the subsystems together: catalog, statistics,
planner, executor. It accepts SQL text, parsed statements, or logical
plans, and returns materialized :class:`ResultSet` objects. ``explain``
surfaces the costed physical plan; the deferred-cleansing rewrite engine
uses its root cost estimate to choose among candidate rewrites, mirroring
how the paper compiles m+1 SQL statements on DB2 and keeps the cheapest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Sequence

from repro.minidb.catalog import Catalog
from repro.minidb.optimizer.cost import CostModel
from repro.minidb.optimizer.planner import Planner, PlannerOptions
from repro.minidb.optimizer.stats import StatsRepository
from repro.minidb.plan.builder import build_plan
from repro.minidb.plan.logical import LogicalNode
from repro.minidb.plan.physical import PhysicalNode, SortOp
from repro.minidb.plan.window import WindowOp
from repro.minidb.result import ResultSet
from repro.minidb.schema import Column, TableSchema
from repro.minidb.sqlparse import parse_select, parse_sql
from repro.minidb.sqlparse.ast import (
    CreateIndexStmt,
    CreateTableStmt,
    DropTableStmt,
    InsertStmt,
    SelectStmt,
)
from repro.minidb.table import Table

__all__ = ["Database", "Explained", "ExecutionMetrics"]


@dataclass
class ExecutionMetrics:
    """Work counters collected from an executed physical plan.

    These are the quantities the paper's analysis reasons about: how many
    rows each rewrite pulls from base tables, how many rows it sorts, and
    how many sort passes it needs.
    """

    rows_emitted: int = 0
    rows_sorted: int = 0
    sort_operators: int = 0
    operators: int = 0

    @classmethod
    def from_plan(cls, plan: PhysicalNode) -> "ExecutionMetrics":
        metrics = cls()
        for node in plan.walk():
            metrics.operators += 1
            metrics.rows_emitted += node.actual_rows
            if isinstance(node, SortOp):
                metrics.rows_sorted += node.sorted_rows
                metrics.sort_operators += 1
            elif isinstance(node, WindowOp) and node.sorted_rows:
                metrics.rows_sorted += node.sorted_rows
                metrics.sort_operators += 1
        return metrics


@dataclass
class Explained:
    """The outcome of ``Database.explain``."""

    plan: PhysicalNode
    text: str
    estimated_cost: float
    estimated_rows: float


class Database:
    """An in-memory relational database with a SQL/OLAP query engine."""

    def __init__(self, options: PlannerOptions | None = None) -> None:
        self.catalog = Catalog()
        self.stats = StatsRepository()
        self.cost_model = CostModel()
        self.options = options or PlannerOptions()

    # -- DDL / loading ------------------------------------------------------

    def create_table(self, name: str, schema: TableSchema) -> Table:
        """Create an empty table."""
        return self.catalog.create_table(name, schema)

    def drop_table(self, name: str) -> None:
        self.catalog.drop_table(name)
        self.stats.invalidate(name)

    def table(self, name: str) -> Table:
        return self.catalog.table(name)

    def load(self, name: str,
             rows: Iterable[Sequence[Any] | Mapping[str, Any]]) -> int:
        """Bulk-load rows and refresh the table's statistics."""
        table = self.catalog.table(name)
        buffered = list(rows)
        if buffered and isinstance(buffered[0], Mapping):
            names = table.schema.names
            buffered = [[row.get(column) for column in names]
                        for row in buffered]
        loaded = table.bulk_load(buffered)
        self.stats.analyze(table)
        return loaded

    def create_index(self, table_name: str, column: str,
                     name: str | None = None) -> None:
        self.catalog.table(table_name).create_index(column, name)

    def analyze(self, table_name: str | None = None) -> None:
        """Recompute statistics (RUNSTATS equivalent)."""
        if table_name is not None:
            self.stats.analyze(self.catalog.table(table_name))
            return
        for table in self.catalog:
            self.stats.analyze(table)

    # -- planning -------------------------------------------------------

    def _ensure_stats(self) -> None:
        for table in self.catalog:
            if self.stats.get(table.name) is None:
                self.stats.analyze(table)

    def _to_logical(self, query: str | SelectStmt | LogicalNode) -> LogicalNode:
        if isinstance(query, LogicalNode):
            return query
        if isinstance(query, str):
            query = parse_select(query)
        return build_plan(query, self.catalog)

    def plan(self, query: str | SelectStmt | LogicalNode,
             options: PlannerOptions | None = None) -> PhysicalNode:
        """Produce the costed physical plan without executing it."""
        self._ensure_stats()
        planner = Planner(self.catalog, self.stats, self.cost_model,
                          options or self.options)
        return planner.plan(self._to_logical(query))

    def explain(self, query: str | SelectStmt | LogicalNode,
                options: PlannerOptions | None = None) -> Explained:
        """Plan *query* and return the plan with its cost estimate."""
        plan = self.plan(query, options)
        return Explained(plan=plan, text=plan.explain(),
                         estimated_cost=plan.estimated_cost,
                         estimated_rows=plan.estimated_rows)

    def explain_analyze(self, query: str | SelectStmt | LogicalNode,
                        options: PlannerOptions | None = None) -> Explained:
        """Execute *query* and return the plan annotated with actual row
        counts (EXPLAIN ANALYZE)."""
        plan = self.plan(query, options)
        for _ in plan.rows():
            pass
        return Explained(plan=plan, text=plan.explain(analyze=True),
                         estimated_cost=plan.estimated_cost,
                         estimated_rows=plan.estimated_rows)

    # -- execution --------------------------------------------------------

    def execute(self, query: str | SelectStmt | LogicalNode,
                options: PlannerOptions | None = None) -> ResultSet:
        """Plan and run *query*, returning a materialized result."""
        plan = self.plan(query, options)
        rows = list(plan.rows())
        columns = [field.name for field in plan.schema]
        return ResultSet(columns, rows)

    def run(self, sql: str) -> ResultSet:
        """Execute any supported SQL statement.

        SELECT returns its result set; CREATE TABLE / CREATE INDEX return
        an empty ``ok`` result; INSERT returns the inserted-row count.
        """
        statement = parse_sql(sql)
        if isinstance(statement, SelectStmt):
            return self.execute(statement)
        if isinstance(statement, CreateTableStmt):
            self.create_table(statement.name, TableSchema(
                Column(name, sql_type)
                for name, sql_type in statement.columns))
            return ResultSet(["ok"], [])
        if isinstance(statement, CreateIndexStmt):
            self.create_index(statement.table, statement.column,
                              statement.name)
            return ResultSet(["ok"], [])
        if isinstance(statement, DropTableStmt):
            self.drop_table(statement.name)
            return ResultSet(["ok"], [])
        if isinstance(statement, InsertStmt):
            table = self.catalog.table(statement.table)
            names = statement.columns or list(table.schema.names)
            inserted = 0
            for row in statement.rows:
                if len(row) != len(names):
                    from repro.errors import SchemaError
                    raise SchemaError(
                        f"INSERT expects {len(names)} values, got {len(row)}")
                values = {
                    name: expr.bind(lambda q, n: 0)(())
                    for name, expr in zip(names, row)}
                table.insert(values)
                inserted += 1
            self.stats.analyze(table)
            return ResultSet(["rows_inserted"], [(inserted,)])
        raise AssertionError(f"unhandled statement {statement!r}")

    def execute_with_metrics(
            self, query: str | SelectStmt | LogicalNode,
            options: PlannerOptions | None = None,
    ) -> tuple[ResultSet, ExecutionMetrics]:
        """Run *query* and also report per-operator work counters."""
        plan = self.plan(query, options)
        rows = list(plan.rows())
        columns = [field.name for field in plan.schema]
        return (ResultSet(columns, rows), ExecutionMetrics.from_plan(plan))
