"""Query result sets."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, Iterator, Sequence

from repro.minidb.types import sort_key

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.minidb.vector import RowBatch

__all__ = ["ResultSet"]


class ResultSet:
    """A fully-materialized query result.

    Rows are tuples in output order; ``columns`` carries the output
    column names. Convenience accessors cover the common test patterns
    (dict rows, single scalar, set comparison).
    """

    def __init__(self, columns: Sequence[str], rows: list[tuple]) -> None:
        self.columns = list(columns)
        self.rows = rows

    @classmethod
    def from_batches(cls, columns: Sequence[str],
                     batches: Iterable["RowBatch"]) -> "ResultSet":
        """Materialize a stream of columnar batches into a result set."""
        rows: list[tuple] = []
        for batch in batches:
            rows.extend(batch.rows())
        return cls(columns, rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    def __getitem__(self, index: int) -> tuple:
        return self.rows[index]

    def to_dicts(self) -> list[dict[str, Any]]:
        """Rows as name -> value dictionaries."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    def column(self, name: str) -> list[Any]:
        """All values of one output column."""
        position = self.columns.index(name.lower())
        return [row[position] for row in self.rows]

    def scalar(self) -> Any:
        """The single value of a 1x1 result."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise ValueError(
                f"scalar() needs a 1x1 result, got {len(self.rows)} rows x "
                f"{len(self.columns)} columns")
        return self.rows[0][0]

    def as_set(self) -> set[tuple]:
        """Rows as a set, for order-insensitive comparisons."""
        return set(self.rows)

    def canonical(self) -> tuple[tuple, ...]:
        """Order-insensitive canonical form preserving duplicates.

        Rows sorted under the engine's total order (NULLs first, values
        type-bucketed), returned as a hashable tuple: two result sets
        over the same output columns answer the same bag of rows iff
        their canonical forms compare equal. This is the comparison the
        differential oracle uses across rewrite strategies, which may
        emit identical row bags in different physical orders.
        """
        return tuple(sorted(
            self.rows,
            key=lambda row: tuple(sort_key(value) for value in row)))

    def pretty(self, limit: int = 20) -> str:
        """A fixed-width text rendering of the first *limit* rows."""
        shown = self.rows[:limit]
        cells = [[str(value) for value in row] for row in shown]
        widths = [len(name) for name in self.columns]
        for row in cells:
            for position, text in enumerate(row):
                widths[position] = max(widths[position], len(text))
        header = " | ".join(name.ljust(width)
                            for name, width in zip(self.columns, widths))
        separator = "-+-".join("-" * width for width in widths)
        lines = [header, separator]
        for row in cells:
            lines.append(" | ".join(text.ljust(width)
                                    for text, width in zip(row, widths)))
        if len(self.rows) > limit:
            lines.append(f"... ({len(self.rows) - limit} more rows)")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"ResultSet({len(self.rows)} rows x {len(self.columns)} cols)"
