"""Columnar row batches for the vectorized execution path.

The executor moves data between operators as :class:`RowBatch` chunks:
a fixed-size block of rows stored column-wise as plain Python lists (no
numpy — the engine stays dependency-free). Vectorized operators evaluate
whole chunks with list comprehensions instead of calling a closure per
row, which removes most of the Python function-call overhead that
dominates tuple-at-a-time interpretation.

Execution mode is controlled by ``REPRO_BATCH_SIZE``:

* unset → batches of :data:`DEFAULT_BATCH_SIZE` rows;
* ``REPRO_BATCH_SIZE=<n>`` (n ≥ 1) → batches of ``n`` rows;
* ``REPRO_BATCH_SIZE=0`` → batch execution disabled; every operator runs
  its original tuple-at-a-time ``scalar_rows()`` implementation. This is
  the "before" baseline for the vectorization benchmarks and the
  reference side of the fuzz oracle's ``vectorized`` strategy.

``REPRO_VECTOR_FALLBACK=1`` additionally forces every expression to the
generic row-at-a-time batch kernel (the row-bound closure applied
elementwise) instead of the specialized vectorized kernels, giving a
second differential axis: specialized kernels vs the scalar evaluator
over identical batch plumbing.

Invariant: batch columns are never mutated in place. Operators that
drop or reorder rows build new column lists (:meth:`RowBatch.take`),
so a column list may be safely shared between a child batch, a parent
batch, and a table's columnar cache.
"""

from __future__ import annotations

import contextlib
import os
from typing import Any, Iterator, Sequence

__all__ = [
    "DEFAULT_BATCH_SIZE",
    "RowBatch",
    "batch_execution_enabled",
    "configured_batch_size",
    "forced_batch_size",
    "materialize",
    "vector_fallback_enabled",
]

#: Rows per batch when ``REPRO_BATCH_SIZE`` is unset. Large enough to
#: amortize per-batch setup, small enough to keep chunks cache-friendly.
DEFAULT_BATCH_SIZE = 1024


def configured_batch_size() -> int:
    """Batch size from ``REPRO_BATCH_SIZE``; 0 disables batch execution."""
    env = os.environ.get("REPRO_BATCH_SIZE", "").strip()
    if env:
        try:
            return max(0, int(env))
        except ValueError:
            return DEFAULT_BATCH_SIZE
    return DEFAULT_BATCH_SIZE


def batch_execution_enabled() -> bool:
    """Whether operators should run their ``batches()`` path."""
    return configured_batch_size() > 0


def vector_fallback_enabled() -> bool:
    """Whether expressions must use the generic elementwise kernel."""
    return os.environ.get("REPRO_VECTOR_FALLBACK", "").strip() == "1"


@contextlib.contextmanager
def forced_batch_size(size: int) -> Iterator[None]:
    """Pin ``REPRO_BATCH_SIZE`` for a block (0 = tuple-at-a-time)."""
    saved = os.environ.get("REPRO_BATCH_SIZE")
    os.environ["REPRO_BATCH_SIZE"] = str(size)
    try:
        yield
    finally:
        if saved is None:
            os.environ.pop("REPRO_BATCH_SIZE", None)
        else:
            os.environ["REPRO_BATCH_SIZE"] = saved


class RowBatch:
    """A columnar chunk of rows.

    ``columns`` holds one plain list per output field, all of length
    ``length``. The row-tuple form is derived lazily and cached, so a
    batch that several consumers need row-wise transposes only once.
    ``length`` is carried separately from the columns so zero-width
    batches (projections of no columns) still know their cardinality.
    """

    __slots__ = ("columns", "length", "_rows")

    def __init__(self, columns: list[list], length: int,
                 rows: list[tuple] | None = None) -> None:
        self.columns = columns
        self.length = length
        self._rows = rows

    @classmethod
    def from_rows(cls, rows: list[tuple], width: int) -> "RowBatch":
        """Transpose row tuples into a batch (caching the row form)."""
        if rows:
            columns = [list(column) for column in zip(*rows)]
        else:
            columns = [[] for _ in range(width)]
        return cls(columns, len(rows), rows=rows)

    def rows(self) -> list[tuple]:
        """The batch as row tuples (computed once, then cached)."""
        if self._rows is None:
            if self.columns:
                self._rows = list(zip(*self.columns))
            else:
                self._rows = [()] * self.length
        return self._rows

    def take(self, indices: Sequence[int]) -> "RowBatch":
        """A new batch holding the rows at *indices*, in that order."""
        return RowBatch([[column[i] for i in indices]
                         for column in self.columns], len(indices))

    def head(self, count: int) -> "RowBatch":
        """A new batch holding the first *count* rows."""
        rows = self._rows[:count] if self._rows is not None else None
        return RowBatch([column[:count] for column in self.columns],
                        count, rows=rows)

    def column(self, position: int) -> list:
        return self.columns[position]

    def __len__(self) -> int:
        return self.length

    def __repr__(self) -> str:
        return f"RowBatch({self.length} rows x {len(self.columns)} cols)"


def materialize(plan: Any) -> list[tuple]:
    """Drain a physical plan into a row list under the configured mode.

    Equivalent to ``list(plan.rows())`` but avoids the per-row generator
    hop when batch execution is enabled: batches are extended into the
    output list wholesale.
    """
    if not batch_execution_enabled():
        return list(plan.rows())
    out: list[tuple] = []
    for batch in plan.batches():
        out.extend(batch.rows())
    return out
