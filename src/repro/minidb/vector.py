"""Columnar row batches for the vectorized execution path.

The executor moves data between operators as :class:`RowBatch` chunks:
a fixed-size block of rows stored column-wise as plain Python lists (no
numpy — the engine stays dependency-free). Vectorized operators evaluate
whole chunks with list comprehensions instead of calling a closure per
row, which removes most of the Python function-call overhead that
dominates tuple-at-a-time interpretation.

Execution mode is controlled by ``REPRO_BATCH_SIZE``:

* unset → batches of :data:`DEFAULT_BATCH_SIZE` rows;
* ``REPRO_BATCH_SIZE=<n>`` (n ≥ 1) → batches of ``n`` rows;
* ``REPRO_BATCH_SIZE=0`` → batch execution disabled; every operator runs
  its original tuple-at-a-time ``scalar_rows()`` implementation. This is
  the "before" baseline for the vectorization benchmarks and the
  reference side of the fuzz oracle's ``vectorized`` strategy.

``REPRO_VECTOR_FALLBACK=1`` additionally forces every expression to the
generic row-at-a-time batch kernel (the row-bound closure applied
elementwise) instead of the specialized vectorized kernels, giving a
second differential axis: specialized kernels vs the scalar evaluator
over identical batch plumbing.

Invariant: batch columns are never mutated in place. Operators that
drop or reorder rows build new column lists (:meth:`RowBatch.take`),
so a column list may be safely shared between a child batch, a parent
batch, and a table's columnar cache.

``REPRO_ENCODE`` (default on, ``0`` = plain) additionally lets the
columnar cache hand out *encoded* columns — :class:`DictColumn`
(per-column sorted dictionary + integer codes) and :class:`RLEColumn`
(run-length runs) — that the batch kernels operate on directly:
predicates evaluate once per distinct value and map over codes, range
conjuncts on sorted dictionaries reduce to code-range tests, and RLE
filters skip whole runs. Both classes implement enough of the sequence
protocol (len / index / slice / iterate) that any consumer written for
plain lists keeps working unchanged; iteration decodes transparently,
so parity is guaranteed for every kernel that cannot run encoded.
"""

from __future__ import annotations

import contextlib
import os
from bisect import bisect_left, bisect_right
from math import copysign
from typing import Any, Callable, Iterator, Sequence

__all__ = [
    "DEFAULT_BATCH_SIZE",
    "DictColumn",
    "RLEColumn",
    "RowBatch",
    "batch_execution_enabled",
    "concat_columns",
    "configured_batch_size",
    "decode_batch",
    "encode_column",
    "encode_enabled",
    "encode_stats",
    "forced_batch_size",
    "forced_encoding",
    "materialize",
    "vector_fallback_enabled",
]

#: Rows per batch when ``REPRO_BATCH_SIZE`` is unset. Large enough to
#: amortize per-batch setup, small enough to keep chunks cache-friendly.
DEFAULT_BATCH_SIZE = 1024


def configured_batch_size() -> int:
    """Batch size from ``REPRO_BATCH_SIZE``; 0 disables batch execution."""
    env = os.environ.get("REPRO_BATCH_SIZE", "").strip()
    if env:
        try:
            return max(0, int(env))
        except ValueError:
            return DEFAULT_BATCH_SIZE
    return DEFAULT_BATCH_SIZE


def batch_execution_enabled() -> bool:
    """Whether operators should run their ``batches()`` path."""
    return configured_batch_size() > 0


def vector_fallback_enabled() -> bool:
    """Whether expressions must use the generic elementwise kernel."""
    return os.environ.get("REPRO_VECTOR_FALLBACK", "").strip() == "1"


@contextlib.contextmanager
def forced_batch_size(size: int) -> Iterator[None]:
    """Pin ``REPRO_BATCH_SIZE`` for a block (0 = tuple-at-a-time)."""
    saved = os.environ.get("REPRO_BATCH_SIZE")
    os.environ["REPRO_BATCH_SIZE"] = str(size)
    try:
        yield
    finally:
        if saved is None:
            os.environ.pop("REPRO_BATCH_SIZE", None)
        else:
            os.environ["REPRO_BATCH_SIZE"] = saved


def encode_enabled() -> bool:
    """Whether the columnar cache may hand out encoded columns."""
    return os.environ.get("REPRO_ENCODE", "").strip() != "0"


@contextlib.contextmanager
def forced_encoding(enabled: bool) -> Iterator[None]:
    """Pin ``REPRO_ENCODE`` for a block (False = plain columns)."""
    saved = os.environ.get("REPRO_ENCODE")
    os.environ["REPRO_ENCODE"] = "1" if enabled else "0"
    try:
        yield
    finally:
        if saved is None:
            os.environ.pop("REPRO_ENCODE", None)
        else:
            os.environ["REPRO_ENCODE"] = saved


#: Running totals behind :func:`encode_stats`. ``encoded_columns`` counts
#: encoded columns served to scans, ``decode_fallbacks`` counts full
#: decodes back to plain lists, ``bytes_saved`` accumulates heap-page
#: bytes avoided by the dictionary page codec.
_ENCODE_STATS = [0, 0, 0]


def encode_stats() -> tuple[int, int, int]:
    """``(encoded_columns, decode_fallbacks, bytes_saved)`` counters.

    Monotonic totals; :meth:`Database.execute_with_metrics` diffs them
    around a statement the same way it diffs the codegen cache stats.
    """
    return tuple(_ENCODE_STATS)


def record_encoded_columns(count: int) -> None:
    _ENCODE_STATS[0] += count


def record_decode_fallback() -> None:
    _ENCODE_STATS[1] += 1


def record_bytes_saved(count: int) -> None:
    _ENCODE_STATS[2] += count


def _mapped(values: list) -> list:
    """Hook for the injectable encode fault.

    Every dictionary/run *mapping* — the step that evaluates a kernel
    once per distinct value — passes its result through here. Under
    ``REPRO_FUZZ_INJECT_BUG=encode`` the mapping is rotated by one
    position whenever there are at least two distinct values, silently
    assigning each code its neighbour's result: exactly the class of
    code/value mix-up the fuzz oracle's ``encoded`` label exists to
    catch.
    """
    if (len(values) > 2
            and os.environ.get("REPRO_FUZZ_INJECT_BUG", "") == "encode"):
        return [values[0]] + values[2:] + [values[1]]
    return values


class DictColumn:
    """Dictionary-encoded column: integer codes into a value dictionary.

    ``values[0]`` is always reserved for NULL so appends that introduce
    the first NULL never restructure existing codes; the non-null
    dictionary lives in ``values[1:]``, sorted ascending at build time.
    ``sorted`` stays true while code order equals value order, which is
    what lets ordering predicates bisect the dictionary and lets sorts
    use raw codes as keys (NULL's code 0 matches NULLS-FIRST semantics).

    Kernel results share the ``codes`` list of their source column, so
    an AND of two predicates over the same column combines dictionaries
    without ever touching per-row data.
    """

    __slots__ = ("codes", "values", "sorted", "_index")

    def __init__(self, codes: list[int], values: list,
                 is_sorted: bool = False,
                 index: dict | None = None) -> None:
        self.codes = codes
        self.values = values
        self.sorted = is_sorted
        self._index = index

    def __len__(self) -> int:
        return len(self.codes)

    def __getitem__(self, item):
        if isinstance(item, slice):
            return DictColumn(self.codes[item], self.values, self.sorted)
        return self.values[self.codes[item]]

    def __iter__(self):
        record_decode_fallback()
        values = self.values
        return iter([values[code] for code in self.codes])

    def __repr__(self) -> str:
        return (f"DictColumn({len(self.codes)} rows, "
                f"{len(self.values) - 1} distinct)")

    def decode(self) -> list:
        """The column as a plain value list."""
        record_decode_fallback()
        values = self.values
        return [values[code] for code in self.codes]

    def take(self, indices: Sequence[int]) -> "DictColumn":
        codes = self.codes
        return DictColumn([codes[i] for i in indices], self.values,
                          self.sorted)

    def distinct_count(self) -> int:
        """Exact count of distinct non-null values ever encoded."""
        return len(self.values) - 1

    def sort_codes(self) -> list[int] | None:
        """Codes usable directly as sort keys, or None.

        Valid only while the dictionary is sorted: code order is then
        value order with NULL (code 0) first, matching the engine's
        NULLS-FIRST-ascending decoration exactly.
        """
        return self.codes if self.sorted else None

    def map_values(self, fn: Callable[[Any], Any]) -> "DictColumn":
        """Apply a NULL-propagating kernel once per distinct value."""
        mapped = _mapped([None] + [fn(value) for value in self.values[1:]])
        return DictColumn(self.codes, mapped)

    def map_all(self, fn: Callable[[Any], Any]) -> "DictColumn":
        """Apply a kernel to every slot including NULL (IS NULL etc.)."""
        mapped = _mapped([fn(value) for value in self.values])
        return DictColumn(self.codes, mapped)

    def map_compare(self, op: str, fn: Callable[[Any, Any], Any],
                    constant: Any, flipped: bool = False) -> "DictColumn":
        """Truth dictionary for ``value <op> constant``.

        One comparison per distinct value; on a sorted dictionary the
        ordering operators reduce to a single bisect — a code-range
        test — instead of comparing every distinct value.
        """
        tail = self.values[1:]
        if self.sorted and not flipped and op in ("<", "<=", ">", ">="):
            if op == "<":
                below = bisect_left(tail, constant)
            elif op == "<=":
                below = bisect_right(tail, constant)
            elif op == ">":
                below = bisect_right(tail, constant)
            else:
                below = bisect_left(tail, constant)
            if op in ("<", "<="):
                mapped = ([None] + [True] * below
                          + [False] * (len(tail) - below))
            else:
                mapped = ([None] + [False] * below
                          + [True] * (len(tail) - below))
        elif flipped:
            mapped = [None] + [fn(constant, value) for value in tail]
        else:
            mapped = [None] + [fn(value, constant) for value in tail]
        return DictColumn(self.codes, _mapped(mapped))

    def extend_from(self, source: list, start: int) -> None:
        """Append ``source[start:]``, growing the dictionary in place.

        The incremental half of the append/extend protocol: new values
        get fresh codes at the end of the dictionary, so history is
        never re-encoded. The sorted flag survives only while appends
        arrive in ascending order past the current maximum.
        """
        index = self._index
        codes = self.codes
        values = self.values
        for value in source[start:]:
            if value is None:
                codes.append(0)
                continue
            key = _dict_key(value)
            code = index.get(key)
            if code is None:
                code = len(values)
                if self.sorted and code > 1:
                    last = values[-1]
                    if not (last < value and value == value):
                        self.sorted = False
                elif self.sorted and value != value:
                    self.sorted = False
                index[key] = code
                values.append(value)
            codes.append(code)


class RLEColumn:
    """Run-length encoded column: ``(value, length)`` runs.

    ``starts[i]`` is the first row index of run ``i``; point access
    bisects, slices clip runs, and iteration decodes. FilterOp consumes
    predicate results in this representation run-wise, skipping rejected
    runs without touching a single row.
    """

    __slots__ = ("run_values", "run_lengths", "starts", "length")

    def __init__(self, run_values: list, run_lengths: list[int],
                 starts: list[int] | None = None,
                 length: int | None = None) -> None:
        self.run_values = run_values
        self.run_lengths = run_lengths
        if starts is None:
            starts = []
            total = 0
            for run in run_lengths:
                starts.append(total)
                total += run
            length = total
        self.starts = starts
        self.length = length if length is not None else 0

    def __len__(self) -> int:
        return self.length

    def __getitem__(self, item):
        if isinstance(item, slice):
            return self._slice(item)
        if item < 0:
            item += self.length
        return self.run_values[bisect_right(self.starts, item) - 1]

    def _slice(self, item: slice) -> "RLEColumn":
        lo, hi, step = item.indices(self.length)
        if step != 1:
            return RLEColumn.from_values(self.decode()[item])
        values: list = []
        lengths: list[int] = []
        first = bisect_right(self.starts, lo) - 1 if hi > lo else 0
        for i in range(first, len(self.starts)):
            start = self.starts[i]
            if start >= hi:
                break
            end = start + self.run_lengths[i]
            clip_lo = max(start, lo)
            clip_hi = min(end, hi)
            if clip_hi > clip_lo:
                values.append(self.run_values[i])
                lengths.append(clip_hi - clip_lo)
        return RLEColumn(values, lengths)

    def __iter__(self):
        record_decode_fallback()
        return iter(self.decode_quiet())

    def __repr__(self) -> str:
        return (f"RLEColumn({self.length} rows, "
                f"{len(self.run_values)} runs)")

    @classmethod
    def from_values(cls, source: list) -> "RLEColumn":
        values: list = []
        lengths: list[int] = []
        for value in source:
            if values and _same_value(values[-1], value):
                lengths[-1] += 1
            else:
                values.append(value)
                lengths.append(1)
        return cls(values, lengths)

    def decode_quiet(self) -> list:
        out: list = []
        for value, run in zip(self.run_values, self.run_lengths):
            out.extend([value] * run)
        return out

    def decode(self) -> list:
        """The column as a plain value list."""
        record_decode_fallback()
        return self.decode_quiet()

    def take(self, indices: Sequence[int]) -> list:
        values = self.decode_quiet()
        record_decode_fallback()
        return [values[i] for i in indices]

    def runs(self) -> Iterator[tuple[int, int, Any]]:
        """Yield ``(start, length, value)`` per run."""
        return zip(self.starts, self.run_lengths, self.run_values)

    def sort_codes(self) -> None:
        """Runs carry no order; sorts must decode (see types.py)."""
        return None

    def map_values(self, fn: Callable[[Any], Any]) -> "RLEColumn":
        """Apply a NULL-propagating kernel once per run."""
        mapped = _mapped([None if value is None else fn(value)
                          for value in self.run_values])
        return RLEColumn(mapped, self.run_lengths, self.starts,
                         self.length)

    def map_all(self, fn: Callable[[Any], Any]) -> "RLEColumn":
        """Apply a kernel to every run value including NULL."""
        mapped = _mapped([fn(value) for value in self.run_values])
        return RLEColumn(mapped, self.run_lengths, self.starts,
                         self.length)

    def map_compare(self, op: str, fn: Callable[[Any, Any], Any],
                    constant: Any, flipped: bool = False) -> "RLEColumn":
        """Truth runs for ``value <op> constant``: one test per run."""
        if flipped:
            mapped = [None if value is None else fn(constant, value)
                      for value in self.run_values]
        else:
            mapped = [None if value is None else fn(value, constant)
                      for value in self.run_values]
        return RLEColumn(_mapped(mapped), self.run_lengths, self.starts,
                         self.length)

    def extend_from(self, source: list, start: int) -> None:
        """Append ``source[start:]``, merging into the last run."""
        values = self.run_values
        lengths = self.run_lengths
        starts = self.starts
        total = self.length
        for value in source[start:]:
            if values and _same_value(values[-1], value):
                lengths[-1] += 1
            else:
                values.append(value)
                lengths.append(1)
                starts.append(total)
            total += 1
        self.length = total


def _same_value(a: Any, b: Any) -> bool:
    """Run-merge equality: identity, or same class and equal.

    Decoding a run replays its stored value, so two values may share a
    run only when replaying one reproduces the other byte-identically —
    ``0.0 == False`` is not good enough, and neither is ``0.0 == -0.0``
    (equal floats with different sign bits).
    """
    if a is b:
        return True
    if a.__class__ is not b.__class__:
        return False
    if a.__class__ is float:
        return a == b and copysign(1.0, a) == copysign(1.0, b)
    return a == b


def _dict_key(value: Any) -> tuple:
    """Hashable dictionary key under which *value* is byte-identical.

    Keyed on class so ``1`` / ``1.0`` / ``True`` never share a code, and
    on sign for floats so ``-0.0`` does not decode back as ``0.0``.
    """
    if value.__class__ is float:
        return (float, value, copysign(1.0, value))
    return (value.__class__, value)


#: Encoded column types, for isinstance dispatch at kernel boundaries.
ENCODED_TYPES = (DictColumn, RLEColumn)

#: Dictionary-encode a column only while its distinct count stays under
#: ``max(_DICT_MIN_NDV, rows // _DICT_NDV_DIVISOR)`` — beyond that the
#: dictionary stops paying for itself.
_DICT_MIN_NDV = 16
_DICT_NDV_DIVISOR = 2

#: RLE only pays off when runs are long: require at least this many rows
#: per run on average (and enough rows for run-skipping to matter).
_RLE_MIN_ROWS = 16
_RLE_MIN_AVG_RUN = 4


def encode_column(source: list) -> "list | DictColumn | RLEColumn":
    """Choose an encoding for one column of the columnar cache.

    Returns the *same* list object when neither encoding pays off, so
    plain columns cost nothing extra and the caller can detect the
    choice with an identity check. Dictionary keys pair the value with
    its class so numerically-equal values of different types (``1`` vs
    ``1.0`` vs ``True``) never collapse into one code — decoding must be
    byte-identical, not merely ``==``.
    """
    rows = len(source)
    if rows >= _RLE_MIN_ROWS:
        runs = 1
        previous = source[0]
        for value in source:
            if not _same_value(previous, value):
                runs += 1
                previous = value
        if runs * _RLE_MIN_AVG_RUN <= rows:
            return RLEColumn.from_values(source)
    limit = max(_DICT_MIN_NDV, rows // _DICT_NDV_DIVISOR)
    distinct: dict = {}
    for value in source:
        if value is None:
            continue
        key = _dict_key(value)
        if key not in distinct:
            if len(distinct) >= limit:
                return source
            distinct[key] = value
    ordered = list(distinct.values())
    try:
        ordered.sort()
        is_sorted = all(a < b and a == a and b == b
                        for a, b in zip(ordered, ordered[1:]))
        if ordered and not (ordered[0] == ordered[0]):
            is_sorted = False
    except TypeError:
        is_sorted = False
    values: list = [None] + ordered
    index = {_dict_key(value): code
             for code, value in enumerate(ordered, start=1)}
    codes = [0 if value is None else index[_dict_key(value)]
             for value in source]
    return DictColumn(codes, values, is_sorted, index)


def extend_column(column: "DictColumn | RLEColumn", source: list,
                  start: int) -> None:
    """Extend an encoded cache column with freshly appended rows."""
    column.extend_from(source, start)


def decode_batch(batch: "RowBatch") -> "RowBatch":
    """A batch with every encoded column decoded to a plain list.

    The maximal-fallback boundary for consumers that must see plain
    lists (the codegen kernels index and re-emit columns directly).
    """
    if not any(isinstance(column, ENCODED_TYPES)
               for column in batch.columns):
        return batch
    columns = [column.decode() if isinstance(column, ENCODED_TYPES)
               else column for column in batch.columns]
    return RowBatch(columns, batch.length, rows=batch._rows)


def concat_columns(batches: "list[RowBatch]", width: int) -> "RowBatch":
    """Column-wise concatenation of batches into one big batch.

    Dictionary columns that share one dictionary object (slices of the
    same cache column) concatenate as raw codes; everything else
    decodes. Used by SortOp so sort keys over encoded scans keep their
    codes all the way into the key arrays.
    """
    if len(batches) == 1:
        return batches[0]
    length = sum(batch.length for batch in batches)
    columns: list = []
    for position in range(width):
        pieces = [batch.columns[position] for batch in batches]
        first = pieces[0]
        if isinstance(first, DictColumn) and all(
                isinstance(piece, DictColumn)
                and piece.values is first.values for piece in pieces[1:]):
            codes: list[int] = []
            for piece in pieces:
                codes.extend(piece.codes)
            columns.append(DictColumn(codes, first.values, first.sorted))
            continue
        merged: list = []
        for piece in pieces:
            if isinstance(piece, ENCODED_TYPES):
                merged.extend(piece.decode())
            else:
                merged.extend(piece)
        columns.append(merged)
    return RowBatch(columns, length)


class RowBatch:
    """A columnar chunk of rows.

    ``columns`` holds one plain list per output field, all of length
    ``length``. The row-tuple form is derived lazily and cached, so a
    batch that several consumers need row-wise transposes only once.
    ``length`` is carried separately from the columns so zero-width
    batches (projections of no columns) still know their cardinality.
    """

    __slots__ = ("columns", "length", "_rows")

    def __init__(self, columns: list[list], length: int,
                 rows: list[tuple] | None = None) -> None:
        self.columns = columns
        self.length = length
        self._rows = rows

    @classmethod
    def from_rows(cls, rows: list[tuple], width: int) -> "RowBatch":
        """Transpose row tuples into a batch (caching the row form)."""
        if rows:
            columns = [list(column) for column in zip(*rows)]
        else:
            columns = [[] for _ in range(width)]
        return cls(columns, len(rows), rows=rows)

    def rows(self) -> list[tuple]:
        """The batch as row tuples (computed once, then cached)."""
        if self._rows is None:
            if self.columns:
                self._rows = list(zip(*self.columns))
            else:
                self._rows = [()] * self.length
        return self._rows

    def take(self, indices: Sequence[int]) -> "RowBatch":
        """A new batch holding the rows at *indices*, in that order.

        Encoded columns gather through their own ``take`` (dictionary
        columns stay encoded — only the codes are gathered).
        """
        return RowBatch([column.take(indices)
                         if isinstance(column, ENCODED_TYPES)
                         else [column[i] for i in indices]
                         for column in self.columns], len(indices))

    def slice(self, lo: int, hi: int) -> "RowBatch":
        """A new batch holding the contiguous rows ``[lo, hi)``."""
        rows = self._rows[lo:hi] if self._rows is not None else None
        return RowBatch([column[lo:hi] for column in self.columns],
                        hi - lo, rows=rows)

    def head(self, count: int) -> "RowBatch":
        """A new batch holding the first *count* rows."""
        rows = self._rows[:count] if self._rows is not None else None
        return RowBatch([column[:count] for column in self.columns],
                        count, rows=rows)

    def column(self, position: int) -> list:
        return self.columns[position]

    def __len__(self) -> int:
        return self.length

    def __repr__(self) -> str:
        return f"RowBatch({self.length} rows x {len(self.columns)} cols)"


def materialize(plan: Any) -> list[tuple]:
    """Drain a physical plan into a row list under the configured mode.

    Equivalent to ``list(plan.rows())`` but avoids the per-row generator
    hop when batch execution is enabled: batches are extended into the
    output list wholesale.
    """
    if not batch_execution_enabled():
        return list(plan.rows())
    out: list[tuple] = []
    for batch in plan.batches():
        out.extend(batch.rows())
    return out
