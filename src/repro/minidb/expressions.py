"""Scalar expression AST and evaluator for minidb.

Expressions are immutable dataclass trees. They support:

* three-valued evaluation against a row, via :meth:`Expr.bind`, which
  compiles the tree into a closure over column positions (resolved once,
  evaluated per row);
* structural equality and hashing (used by the rewrite engine to compare
  and deduplicate conjuncts);
* traversal (:meth:`Expr.walk`), substitution (:meth:`Expr.substitute`)
  and column-reference collection (:meth:`Expr.referenced_columns`);
* rendering back to SQL text (:meth:`Expr.to_sql`).

Aggregate calls (:class:`AggregateCall`) and window functions
(:class:`WindowFunction`) are represented as expression nodes so they can
appear anywhere in a select list, but they cannot be bound directly: the
plan builder extracts them and replaces them with plain column
references onto computed columns.
"""

from __future__ import annotations

import math
import operator as _operator
import re
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Mapping, Sequence

from repro.errors import PlanningError, TypeMismatchError
from repro.minidb.types import sql_and, sql_not, sql_or
from repro.minidb.vector import (ENCODED_TYPES, DictColumn, RLEColumn,
                                 RowBatch, vector_fallback_enabled)

__all__ = [
    "BatchBound",
    "EmitContext",
    "EmitUnsupported",
    "Expr",
    "ColumnRef",
    "Literal",
    "BinaryOp",
    "UnaryOp",
    "IsNull",
    "Case",
    "InList",
    "InSubquery",
    "FuncCall",
    "AggregateCall",
    "WindowFrame",
    "WindowFunction",
    "SortSpec",
    "CURRENT_ROW",
    "UNBOUNDED",
    "column",
    "lit",
    "and_all",
    "or_all",
]

#: A resolver maps a (qualifier, column-name) pair to a row position.
Resolver = Callable[[str | None, str], int]
#: A bound expression evaluates a row tuple to a value.
Bound = Callable[[tuple], Any]
#: A batch-bound expression evaluates a whole RowBatch to a value list.
BatchBound = Callable[[RowBatch], list]

class EmitUnsupported(Exception):
    """A node (or operand shape) has no source-level emitter.

    The codegen layer catches this at plan time and leaves the affected
    pipeline on the interpreted vectorized path — it is a fusion
    boundary, never a user-visible error.
    """


class EmitContext:
    """Shared state for emitting one generated kernel.

    ``resolve_column`` maps ``(qualifier, name)`` to a Python expression
    reading the column value for the current row; the codegen pipeline
    swaps it per fusion stage so the same expression tree can be emitted
    against different row environments. ``temp()`` hands out
    kernel-unique walrus temporaries, keeping generated source
    deterministic for a given plan (the compile cache is keyed on the
    source text). ``flip_comparisons`` is the emitter's deliberate fault
    for fuzz-oracle drills (``REPRO_FUZZ_INJECT_BUG=codegen``): ordering
    comparisons swap inclusivity (``<`` ↔ ``<=``, ``>`` ↔ ``>=``), the
    classic off-by-one an emitter can introduce.
    """

    __slots__ = ("resolve_column", "flip_comparisons", "_counter")

    def __init__(self,
                 resolve_column: Callable[[str | None, str], str]
                 | None = None,
                 flip_comparisons: bool = False) -> None:
        self.resolve_column = resolve_column
        self.flip_comparisons = flip_comparisons
        self._counter = 0

    def temp(self) -> str:
        self._counter += 1
        return f"_t{self._counter}"

    def column(self, qualifier: str | None, name: str) -> str:
        if self.resolve_column is None:
            raise EmitUnsupported("no column resolver in emit context")
        return self.resolve_column(qualifier, name)

    def comparison_op(self, op: str) -> str:
        if self.flip_comparisons:
            return {"<": "<=", "<=": "<", ">": ">=", ">=": ">"}.get(op, op)
        return op


def emit_constant(value: Any) -> str:
    """Render *value* as a Python literal that round-trips exactly."""
    if value is None or isinstance(value, (bool, int, str)):
        return repr(value)
    if isinstance(value, float):
        if not math.isfinite(value):
            raise EmitUnsupported(f"non-finite float constant {value!r}")
        return repr(value)
    raise EmitUnsupported(f"constant of type {type(value).__name__}")


_COMPARISON_OPS = {"=", "!=", "<", "<=", ">", ">="}
_ARITHMETIC_OPS = {"+", "-", "*", "/"}
_LOGICAL_OPS = {"and", "or"}

#: Comparison kernels for the vectorized evaluator (NULL handled by the
#: surrounding comprehension, so these see only non-NULL operands).
_COMPARE_FN = {
    "=": _operator.eq,
    "!=": _operator.ne,
    "<": _operator.lt,
    "<=": _operator.le,
    ">": _operator.gt,
    ">=": _operator.ge,
}
#: NULL-propagating arithmetic kernels; "/" keeps the scalar `_arith`
#: path for its division-by-zero and integer-division semantics.
_ARITH_FN = {
    "+": _operator.add,
    "-": _operator.sub,
    "*": _operator.mul,
}

#: SQL comparison spelling → Python operator, for the source emitters.
_PY_COMPARE = {"=": "==", "!=": "!=", "<": "<", "<=": "<=",
               ">": ">", ">=": ">="}


def _kleene_and_value(a: Any, b: Any) -> Any:
    if a is False or b is False:
        return False
    if a is None or b is None:
        return None
    return True


def _kleene_or_value(a: Any, b: Any) -> Any:
    if a is True or b is True:
        return True
    if a is None or b is None:
        return None
    return False


def _merge_encoded(a_col: Any, b_col: Any, fn: Callable) -> Any:
    """Combine two encoded kernel results sharing one code layout.

    Both sides of ``x >= lo AND x <= hi`` come back as DictColumns (or
    RLEColumns) sharing the *same* codes/runs object when they were
    computed over the same source column, so the conjunction can be
    evaluated once per distinct value instead of once per row. Returns
    None when the shapes don't line up and the caller must zip row-wise.
    """
    if (type(a_col) is DictColumn and type(b_col) is DictColumn
            and a_col.codes is b_col.codes):
        return DictColumn(a_col.codes,
                          [fn(a, b) for a, b
                           in zip(a_col.values, b_col.values)])
    if (type(a_col) is RLEColumn and type(b_col) is RLEColumn
            and a_col.starts is b_col.starts):
        return RLEColumn([fn(a, b) for a, b
                          in zip(a_col.run_values, b_col.run_values)],
                         a_col.run_lengths, a_col.starts, a_col.length)
    return None


def _may_raise(expr: "Expr") -> bool:
    """Whether evaluating *expr* can raise (among emit-supported nodes).

    Division is the only such node (``TypeMismatchError`` on a zero
    divisor). The emitters short-circuit around NULL operands for
    speed, which skips evaluating the other side — legal only when that
    side is total; raising operands get eager (interpreter-identical)
    forms instead.
    """
    return any(isinstance(node, BinaryOp) and node.op == "/"
               for node in expr.walk())


class Expr:
    """Base class for all scalar expression nodes."""

    __slots__ = ()

    def bind(self, resolver: Resolver) -> Bound:
        """Compile this expression into a closure evaluating one row."""
        raise NotImplementedError

    def bind_batch(self, resolver: Resolver) -> BatchBound:
        """Compile this expression into a whole-batch evaluator.

        Returns a callable mapping a :class:`RowBatch` to a list of one
        value per row, with semantics identical to applying the
        :meth:`bind` closure row by row. Nodes with a vectorized kernel
        override :meth:`_bind_batch_fast`; everything else (and every
        node under ``REPRO_VECTOR_FALLBACK=1``) falls back to the
        row-bound closure applied elementwise, which is what makes the
        fallback a valid differential reference for the kernels.
        """
        if not vector_fallback_enabled():
            fast = self._bind_batch_fast(resolver)
            if fast is not None:
                return fast
        bound = self.bind(resolver)

        def elementwise(batch: RowBatch) -> list:
            return [bound(row) for row in batch.rows()]

        return elementwise

    def _bind_batch_fast(self, resolver: Resolver) -> BatchBound | None:
        """Vectorized kernel for this node, or None to use the fallback."""
        return None

    def children(self) -> Sequence["Expr"]:
        """Direct sub-expressions, for traversal."""
        return ()

    def walk(self) -> Iterator["Expr"]:
        """Yield this node and every descendant, pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()

    def substitute(self, mapping: Mapping["Expr", "Expr"]) -> "Expr":
        """Return a copy with every node found in *mapping* replaced.

        Matching is by structural equality, applied top-down: once a node
        is replaced, its subtree is not visited further.
        """
        if self in mapping:
            return mapping[self]
        return self._rebuild(
            tuple(child.substitute(mapping) for child in self.children()))

    def _rebuild(self, children: tuple["Expr", ...]) -> "Expr":
        """Return a copy of this node with *children* as sub-expressions."""
        if not children:
            return self
        raise NotImplementedError(type(self).__name__)

    def referenced_columns(self) -> set["ColumnRef"]:
        """Every :class:`ColumnRef` appearing anywhere in the tree."""
        return {node for node in self.walk() if isinstance(node, ColumnRef)}

    def emit_value(self, ctx: EmitContext) -> str:
        """Python source for this expression's three-valued *value*.

        The emitted text evaluates to exactly what the :meth:`bind`
        closure would return for the same row (NULL as ``None``).
        Nodes without an emitter raise :class:`EmitUnsupported`; the
        codegen layer treats that as a fusion boundary.
        """
        raise EmitUnsupported(type(self).__name__)

    def emit_truth(self, ctx: EmitContext) -> str:
        """Python source for the *filter truth* of this expression.

        Evaluates to a plain bool that is ``True`` exactly when the
        interpreter's value is ``True`` (SQL WHERE keeps only TRUE,
        folding NULL into rejection). Subclasses override this with
        forms that skip materializing the three-valued result.
        """
        return f"({self.emit_value(ctx)} is True)"

    def to_sql(self) -> str:
        """Render this expression as SQL text."""
        raise NotImplementedError

    def __str__(self) -> str:
        return self.to_sql()


@dataclass(frozen=True, slots=True)
class ColumnRef(Expr):
    """A reference to ``qualifier.name`` (qualifier optional)."""

    name: str
    qualifier: str | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "name", self.name.lower())
        if self.qualifier is not None:
            object.__setattr__(self, "qualifier", self.qualifier.lower())

    def bind(self, resolver: Resolver) -> Bound:
        position = resolver(self.qualifier, self.name)
        return lambda row: row[position]

    def _bind_batch_fast(self, resolver: Resolver) -> BatchBound:
        position = resolver(self.qualifier, self.name)
        return lambda batch: batch.columns[position]

    def emit_value(self, ctx: EmitContext) -> str:
        return ctx.column(self.qualifier, self.name)

    def to_sql(self) -> str:
        if self.qualifier:
            return f"{self.qualifier}.{self.name}"
        return self.name

    def unqualified(self) -> "ColumnRef":
        """The same reference with the qualifier stripped."""
        return ColumnRef(self.name)


@dataclass(frozen=True, slots=True)
class Literal(Expr):
    """A constant. ``value`` follows the conventions in ``types``."""

    value: Any

    def bind(self, resolver: Resolver) -> Bound:
        value = self.value
        return lambda row: value

    def _bind_batch_fast(self, resolver: Resolver) -> BatchBound:
        value = self.value
        return lambda batch: [value] * batch.length

    def emit_value(self, ctx: EmitContext) -> str:
        return emit_constant(self.value)

    def emit_truth(self, ctx: EmitContext) -> str:
        return "True" if self.value is True else "False"

    def to_sql(self) -> str:
        if self.value is None:
            return "NULL"
        if isinstance(self.value, bool):
            return "TRUE" if self.value else "FALSE"
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"'{escaped}'"
        return repr(self.value)


def _arith(op: str, left: Any, right: Any) -> Any:
    if left is None or right is None:
        return None
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            raise TypeMismatchError("division by zero")
        result = left / right
        if isinstance(left, int) and isinstance(right, int):
            return left // right if left % right == 0 else result
        return result
    raise AssertionError(op)


def _compare(op: str, left: Any, right: Any) -> bool | None:
    if left is None or right is None:
        return None
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise AssertionError(op)


@dataclass(frozen=True, slots=True)
class BinaryOp(Expr):
    """A binary operator: comparison, arithmetic, AND/OR."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        op = self.op.lower() if self.op.isalpha() else self.op
        if op == "<>":
            op = "!="
        if op not in _COMPARISON_OPS | _ARITHMETIC_OPS | _LOGICAL_OPS:
            raise PlanningError(f"unknown binary operator {self.op!r}")
        object.__setattr__(self, "op", op)

    def children(self) -> Sequence[Expr]:
        return (self.left, self.right)

    def _rebuild(self, children: tuple[Expr, ...]) -> Expr:
        return BinaryOp(self.op, children[0], children[1])

    def bind(self, resolver: Resolver) -> Bound:
        op = self.op
        left = self.left.bind(resolver)
        right = self.right.bind(resolver)
        if op == "and":
            return lambda row: sql_and(left(row), right(row))
        if op == "or":
            return lambda row: sql_or(left(row), right(row))
        if op in _COMPARISON_OPS:
            return lambda row: _compare(op, left(row), right(row))
        return lambda row: _arith(op, left(row), right(row))

    def _bind_batch_fast(self, resolver: Resolver) -> BatchBound:
        op = self.op
        left = self.left.bind_batch(resolver)
        right = self.right.bind_batch(resolver)
        if op == "and":
            def kleene_and(batch: RowBatch) -> list:
                a_col, b_col = left(batch), right(batch)
                merged = _merge_encoded(a_col, b_col, _kleene_and_value)
                if merged is not None:
                    return merged
                return [False if a is False or b is False
                        else None if a is None or b is None
                        else True
                        for a, b in zip(a_col, b_col)]
            return kleene_and
        if op == "or":
            def kleene_or(batch: RowBatch) -> list:
                a_col, b_col = left(batch), right(batch)
                merged = _merge_encoded(a_col, b_col, _kleene_or_value)
                if merged is not None:
                    return merged
                return [True if a is True or b is True
                        else None if a is None or b is None
                        else False
                        for a, b in zip(a_col, b_col)]
            return kleene_or
        if op == "/":
            return lambda batch: [_arith("/", a, b)
                                  for a, b in zip(left(batch), right(batch))]
        fn = _COMPARE_FN[op] if op in _COMPARISON_OPS else _ARITH_FN[op]
        # Hoist literal operands out of the comprehension: column-vs-
        # constant is by far the most common shape in rewrite output
        # (``rtime <= t``, ``reader = 'rdr-3'``). On an encoded operand
        # the kernel evaluates once per distinct value (or run) and maps
        # over codes; ordering ops on sorted dictionaries bisect.
        compare = op in _COMPARISON_OPS
        if isinstance(self.right, Literal):
            constant = self.right.value
            if constant is None:
                return lambda batch: [None] * batch.length

            def with_right_constant(batch: RowBatch) -> list:
                column = left(batch)
                if isinstance(column, ENCODED_TYPES):
                    if compare:
                        return column.map_compare(op, fn, constant)
                    return column.map_values(lambda v: fn(v, constant))
                return [None if v is None else fn(v, constant)
                        for v in column]
            return with_right_constant
        if isinstance(self.left, Literal):
            constant = self.left.value
            if constant is None:
                return lambda batch: [None] * batch.length

            def with_left_constant(batch: RowBatch) -> list:
                column = right(batch)
                if isinstance(column, ENCODED_TYPES):
                    if compare:
                        return column.map_compare(op, fn, constant,
                                                  flipped=True)
                    return column.map_values(lambda v: fn(constant, v))
                return [None if v is None else fn(constant, v)
                        for v in column]
            return with_left_constant
        return lambda batch: [None if a is None or b is None else fn(a, b)
                              for a, b in zip(left(batch), right(batch))]

    def emit_value(self, ctx: EmitContext) -> str:
        op = self.op
        if op == "and":
            return (f"_sql_and({self.left.emit_value(ctx)}, "
                    f"{self.right.emit_value(ctx)})")
        if op == "or":
            return (f"_sql_or({self.left.emit_value(ctx)}, "
                    f"{self.right.emit_value(ctx)})")
        if op == "/":
            return (f"_sql_div({self.left.emit_value(ctx)}, "
                    f"{self.right.emit_value(ctx)})")
        if op in _COMPARISON_OPS:
            op = _PY_COMPARE[ctx.comparison_op(op)]
        left = self.left.emit_value(ctx)
        right = self.right.emit_value(ctx)
        a, b = ctx.temp(), ctx.temp()
        if _may_raise(self.right):
            # Eager form: evaluate both operands like the interpreter
            # before the NULL checks, so a raising right side raises
            # even when the left is NULL.
            return (f"(({a} := {left}), ({b} := {right}), "
                    f"(None if {a} is None or {b} is None "
                    f"else ({a} {op} {b})))[2]")
        return (f"(None if ({a} := {left}) is None "
                f"or ({b} := {right}) is None else ({a} {op} {b}))")

    def emit_truth(self, ctx: EmitContext) -> str:
        op = self.op
        # Truth-context AND/OR short-circuits (rows are usually decided
        # by the first conjunct), which the pure-expression semantics
        # allow; a right side that can raise forces the eager bitwise
        # form — the operands are plain bools — so exceptions surface
        # exactly as in the interpreter's eager Kleene kernels.
        if op in _LOGICAL_OPS:
            joiner = op if not _may_raise(self.right) \
                else ("&" if op == "and" else "|")
            return (f"({self.left.emit_truth(ctx)} "
                    f"{joiner} {self.right.emit_truth(ctx)})")
        if op not in _COMPARISON_OPS:
            return super().emit_truth(ctx)
        op = _PY_COMPARE[ctx.comparison_op(op)]
        # Hoist literal operands, mirroring the batch kernels: a NULL
        # literal makes the comparison NULL everywhere (never TRUE).
        if isinstance(self.right, Literal):
            if self.right.value is None:
                return "False"
            t = ctx.temp()
            return (f"(({t} := {self.left.emit_value(ctx)}) is not None "
                    f"and {t} {op} {emit_constant(self.right.value)})")
        if isinstance(self.left, Literal):
            if self.left.value is None:
                return "False"
            t = ctx.temp()
            return (f"(({t} := {self.right.emit_value(ctx)}) is not None "
                    f"and {emit_constant(self.left.value)} {op} {t})")
        a, b = ctx.temp(), ctx.temp()
        if _may_raise(self.right):
            return (f"(({a} := {self.left.emit_value(ctx)}), "
                    f"({b} := {self.right.emit_value(ctx)}), "
                    f"({a} is not None and {b} is not None "
                    f"and {a} {op} {b}))[2]")
        return (f"(({a} := {self.left.emit_value(ctx)}) is not None "
                f"and ({b} := {self.right.emit_value(ctx)}) is not None "
                f"and {a} {op} {b})")

    def to_sql(self) -> str:
        op = self.op.upper() if self.op in _LOGICAL_OPS else self.op
        return f"({self.left.to_sql()} {op} {self.right.to_sql()})"


@dataclass(frozen=True, slots=True)
class UnaryOp(Expr):
    """Unary NOT or arithmetic negation."""

    op: str
    operand: Expr

    def __post_init__(self) -> None:
        op = self.op.lower()
        if op not in ("not", "-"):
            raise PlanningError(f"unknown unary operator {self.op!r}")
        object.__setattr__(self, "op", op)

    def children(self) -> Sequence[Expr]:
        return (self.operand,)

    def _rebuild(self, children: tuple[Expr, ...]) -> Expr:
        return UnaryOp(self.op, children[0])

    def bind(self, resolver: Resolver) -> Bound:
        operand = self.operand.bind(resolver)
        if self.op == "not":
            return lambda row: sql_not(operand(row))

        def negate(row: tuple) -> Any:
            value = operand(row)
            return None if value is None else -value

        return negate

    def _bind_batch_fast(self, resolver: Resolver) -> BatchBound:
        operand = self.operand.bind_batch(resolver)
        invert = self.op == "not"

        def evaluate(batch: RowBatch) -> list:
            column = operand(batch)
            if isinstance(column, ENCODED_TYPES):
                if invert:
                    return column.map_values(_operator.not_)
                return column.map_values(_operator.neg)
            if invert:
                return [None if v is None else not v for v in column]
            return [None if v is None else -v for v in column]
        return evaluate

    def emit_value(self, ctx: EmitContext) -> str:
        t = ctx.temp()
        body = "not " if self.op == "not" else "-"
        return (f"(None if ({t} := {self.operand.emit_value(ctx)}) is None "
                f"else ({body}{t}))")

    def emit_truth(self, ctx: EmitContext) -> str:
        if self.op != "not":
            return super().emit_truth(ctx)
        # NOT is TRUE exactly when the operand is non-NULL and falsy
        # (the batch kernel applies Python `not` to non-None values).
        t = ctx.temp()
        return (f"(({t} := {self.operand.emit_value(ctx)}) is not None "
                f"and not {t})")

    def to_sql(self) -> str:
        if self.op == "not":
            return f"(NOT {self.operand.to_sql()})"
        return f"(-{self.operand.to_sql()})"


@dataclass(frozen=True, slots=True)
class IsNull(Expr):
    """``operand IS [NOT] NULL``."""

    operand: Expr
    negated: bool = False

    def children(self) -> Sequence[Expr]:
        return (self.operand,)

    def _rebuild(self, children: tuple[Expr, ...]) -> Expr:
        return IsNull(children[0], self.negated)

    def bind(self, resolver: Resolver) -> Bound:
        operand = self.operand.bind(resolver)
        if self.negated:
            return lambda row: operand(row) is not None
        return lambda row: operand(row) is None

    def _bind_batch_fast(self, resolver: Resolver) -> BatchBound:
        operand = self.operand.bind_batch(resolver)
        negated = self.negated

        def evaluate(batch: RowBatch) -> list:
            column = operand(batch)
            if isinstance(column, ENCODED_TYPES):
                # NULL itself maps (to True/False), so this is the one
                # kernel that rewrites every dictionary slot.
                if negated:
                    return column.map_all(lambda v: v is not None)
                return column.map_all(lambda v: v is None)
            if negated:
                return [v is not None for v in column]
            return [v is None for v in column]
        return evaluate

    def emit_value(self, ctx: EmitContext) -> str:
        keyword = "is not None" if self.negated else "is None"
        return f"({self.operand.emit_value(ctx)} {keyword})"

    def emit_truth(self, ctx: EmitContext) -> str:
        # Already a plain bool — value and truth coincide.
        return self.emit_value(ctx)

    def to_sql(self) -> str:
        keyword = "IS NOT NULL" if self.negated else "IS NULL"
        return f"({self.operand.to_sql()} {keyword})"


@dataclass(frozen=True, slots=True)
class Case(Expr):
    """Searched CASE: ``CASE WHEN c THEN v ... [ELSE e] END``."""

    whens: tuple[tuple[Expr, Expr], ...]
    else_result: Expr | None = None

    def children(self) -> Sequence[Expr]:
        flat: list[Expr] = []
        for condition, result in self.whens:
            flat.append(condition)
            flat.append(result)
        if self.else_result is not None:
            flat.append(self.else_result)
        return flat

    def _rebuild(self, children: tuple[Expr, ...]) -> Expr:
        pair_count = len(self.whens)
        whens = tuple(
            (children[2 * i], children[2 * i + 1]) for i in range(pair_count))
        else_result = children[-1] if self.else_result is not None else None
        return Case(whens, else_result)

    def bind(self, resolver: Resolver) -> Bound:
        bound_whens = [(c.bind(resolver), r.bind(resolver))
                       for c, r in self.whens]
        bound_else = (self.else_result.bind(resolver)
                      if self.else_result is not None else None)

        def evaluate(row: tuple) -> Any:
            for condition, result in bound_whens:
                if condition(row) is True:
                    return result(row)
            if bound_else is not None:
                return bound_else(row)
            return None

        return evaluate

    def to_sql(self) -> str:
        parts = ["CASE"]
        for condition, result in self.whens:
            parts.append(f"WHEN {condition.to_sql()} THEN {result.to_sql()}")
        if self.else_result is not None:
            parts.append(f"ELSE {self.else_result.to_sql()}")
        parts.append("END")
        return " ".join(parts)


@dataclass(frozen=True, slots=True)
class InList(Expr):
    """``operand [NOT] IN (v1, v2, ...)`` with literal items."""

    operand: Expr
    items: tuple[Expr, ...]
    negated: bool = False

    def children(self) -> Sequence[Expr]:
        return (self.operand, *self.items)

    def _rebuild(self, children: tuple[Expr, ...]) -> Expr:
        return InList(children[0], tuple(children[1:]), self.negated)

    def bind(self, resolver: Resolver) -> Bound:
        operand = self.operand.bind(resolver)
        bound_items = [item.bind(resolver) for item in self.items]
        negated = self.negated

        def evaluate(row: tuple) -> bool | None:
            value = operand(row)
            if value is None:
                return None
            saw_null = False
            for item in bound_items:
                candidate = item(row)
                if candidate is None:
                    saw_null = True
                elif candidate == value:
                    return not negated
            if saw_null:
                return None
            return negated

        return evaluate

    def _bind_batch_fast(self, resolver: Resolver) -> BatchBound | None:
        if not all(isinstance(item, Literal) for item in self.items):
            return None
        operand = self.operand.bind_batch(resolver)
        values = [item.value for item in self.items]
        has_null_item = any(value is None for value in values)
        members = {value for value in values if value is not None}
        hit, miss = not self.negated, self.negated

        def evaluate(batch: RowBatch) -> list:
            column = operand(batch)
            if isinstance(column, ENCODED_TYPES):
                return column.map_values(
                    lambda v: hit if v in members
                    else None if has_null_item else miss)
            return [None if v is None
                    else hit if v in members
                    else None if has_null_item
                    else miss
                    for v in column]

        return evaluate

    def _emit_members(self) -> tuple[str, bool]:
        """(source for the membership collection, saw-a-NULL-item)."""
        if not all(isinstance(item, Literal) for item in self.items):
            raise EmitUnsupported("IN list with non-literal items")
        rendered: list[str] = []
        seen: set = set()
        has_null = False
        for item in self.items:
            if item.value is None:
                has_null = True
                continue
            if item.value in seen:
                continue
            seen.add(item.value)
            rendered.append(emit_constant(item.value))
        if not rendered:
            return "()", has_null
        return "{" + ", ".join(rendered) + "}", has_null

    def emit_value(self, ctx: EmitContext) -> str:
        members, has_null = self._emit_members()
        hit, miss = repr(not self.negated), repr(self.negated)
        miss_case = "None" if has_null else miss
        t = ctx.temp()
        return (f"(None if ({t} := {self.operand.emit_value(ctx)}) is None "
                f"else ({hit} if {t} in {members} else {miss_case}))")

    def emit_truth(self, ctx: EmitContext) -> str:
        members, has_null = self._emit_members()
        if self.negated and has_null:
            # Misses become NULL (a NULL item may have matched), hits
            # become FALSE: the predicate can never be TRUE.
            return "False"
        t = ctx.temp()
        membership = "not in" if self.negated else "in"
        return (f"(({t} := {self.operand.emit_value(ctx)}) is not None "
                f"and {t} {membership} {members})")

    def to_sql(self) -> str:
        body = ", ".join(item.to_sql() for item in self.items)
        keyword = "NOT IN" if self.negated else "IN"
        return f"({self.operand.to_sql()} {keyword} ({body}))"


@dataclass(frozen=True, slots=True)
class InSubquery(Expr):
    """``operand [NOT] IN (SELECT ...)``.

    The subquery is an opaque SELECT AST (from ``minidb.sqlparse.ast``);
    the plan builder turns this node into a semi-join (or materializes
    the subquery when it is uncorrelated), so binding it directly is an
    error.
    """

    operand: Expr
    subquery: Any
    negated: bool = False

    def children(self) -> Sequence[Expr]:
        return (self.operand,)

    def _rebuild(self, children: tuple[Expr, ...]) -> Expr:
        return InSubquery(children[0], self.subquery, self.negated)

    def __hash__(self) -> int:
        # The subquery AST is mutable; hash it by identity.
        return hash(("insubquery", self.operand, id(self.subquery),
                     self.negated))

    def bind(self, resolver: Resolver) -> Bound:
        raise PlanningError(
            "IN (SELECT ...) must be planned as a semi-join; it cannot be "
            "evaluated as a scalar expression")

    def to_sql(self) -> str:
        keyword = "NOT IN" if self.negated else "IN"
        subquery_sql = getattr(self.subquery, "to_sql", lambda: "<subquery>")()
        return f"({self.operand.to_sql()} {keyword} ({subquery_sql}))"


def _like_matcher(pattern: str) -> Callable[[str], bool]:
    regex_parts = ["^"]
    for char in pattern:
        if char == "%":
            regex_parts.append(".*")
        elif char == "_":
            regex_parts.append(".")
        else:
            regex_parts.append(re.escape(char))
    regex_parts.append("$")
    compiled = re.compile("".join(regex_parts), re.DOTALL)
    return lambda text: compiled.match(text) is not None


def _scalar_function(name: str, args: list[Bound]) -> Bound:
    if name == "coalesce":
        def coalesce(row: tuple) -> Any:
            for arg in args:
                value = arg(row)
                if value is not None:
                    return value
            return None
        return coalesce
    if name == "abs":
        arg = args[0]
        return lambda row: None if arg(row) is None else abs(arg(row))
    if name == "length":
        arg = args[0]
        return lambda row: None if arg(row) is None else len(arg(row))
    if name == "lower":
        arg = args[0]
        return lambda row: None if arg(row) is None else arg(row).lower()
    if name == "upper":
        arg = args[0]
        return lambda row: None if arg(row) is None else arg(row).upper()
    if name == "substr":
        def substr(row: tuple) -> Any:
            text = args[0](row)
            start = args[1](row)
            if text is None or start is None:
                return None
            begin = max(start - 1, 0)
            if len(args) > 2:
                count = args[2](row)
                if count is None:
                    return None
                return text[begin:begin + count]
            return text[begin:]
        return substr
    if name == "like":
        def like(row: tuple) -> bool | None:
            text = args[0](row)
            pattern = args[1](row)
            if text is None or pattern is None:
                return None
            return _like_matcher(pattern)(text)
        return like
    if name == "nullif":
        def nullif(row: tuple) -> Any:
            first = args[0](row)
            second = args[1](row)
            if first is not None and first == second:
                return None
            return first
        return nullif
    if name == "least":
        def least(row: tuple) -> Any:
            values = [arg(row) for arg in args]
            if any(value is None for value in values):
                return None
            return min(values)
        return least
    if name == "greatest":
        def greatest(row: tuple) -> Any:
            values = [arg(row) for arg in args]
            if any(value is None for value in values):
                return None
            return max(values)
        return greatest
    raise PlanningError(f"unknown scalar function {name!r}")


@dataclass(frozen=True, slots=True)
class FuncCall(Expr):
    """A scalar function call. LIKE is desugared to ``like(text, pat)``."""

    name: str
    args: tuple[Expr, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "name", self.name.lower())

    def children(self) -> Sequence[Expr]:
        return self.args

    def _rebuild(self, children: tuple[Expr, ...]) -> Expr:
        return FuncCall(self.name, tuple(children))

    def bind(self, resolver: Resolver) -> Bound:
        return _scalar_function(self.name,
                                [arg.bind(resolver) for arg in self.args])

    def to_sql(self) -> str:
        body = ", ".join(arg.to_sql() for arg in self.args)
        return f"{self.name}({body})"


@dataclass(frozen=True, slots=True)
class AggregateCall(Expr):
    """An aggregate function in a grouped query: ``count(distinct x)`` etc.

    Supported: count, sum, avg, min, max; ``count(*)`` is represented with
    ``argument=None``.
    """

    name: str
    argument: Expr | None
    distinct: bool = False

    def __post_init__(self) -> None:
        name = self.name.lower()
        if name not in ("count", "sum", "avg", "min", "max"):
            raise PlanningError(f"unknown aggregate function {self.name!r}")
        object.__setattr__(self, "name", name)

    def children(self) -> Sequence[Expr]:
        return () if self.argument is None else (self.argument,)

    def _rebuild(self, children: tuple[Expr, ...]) -> Expr:
        argument = children[0] if children else None
        return AggregateCall(self.name, argument, self.distinct)

    def bind(self, resolver: Resolver) -> Bound:
        raise PlanningError(
            f"aggregate {self.name}() must be evaluated by an Aggregate plan "
            "node, not as a scalar expression")

    def to_sql(self) -> str:
        body = "*" if self.argument is None else self.argument.to_sql()
        if self.distinct:
            body = f"DISTINCT {body}"
        return f"{self.name}({body})"


#: Sentinel for UNBOUNDED PRECEDING / FOLLOWING frame bounds.
UNBOUNDED = "unbounded"
#: Sentinel for a CURRENT ROW frame bound.
CURRENT_ROW = "current_row"


@dataclass(frozen=True, slots=True)
class WindowFrame:
    """A ROWS or RANGE frame.

    ``start``/``end`` are offsets relative to the current row: negative
    for PRECEDING, positive for FOLLOWING, zero for CURRENT ROW, or the
    :data:`UNBOUNDED` sentinel. For RANGE frames the offsets are in units
    of the (single) ORDER BY expression.
    """

    mode: str  # "rows" | "range"
    start: int | float | str
    end: int | float | str

    def __post_init__(self) -> None:
        if self.mode not in ("rows", "range"):
            raise PlanningError(f"invalid frame mode {self.mode!r}")

    def _bound_sql(self, bound: int | float | str, *, is_start: bool) -> str:
        if bound == UNBOUNDED:
            return "UNBOUNDED PRECEDING" if is_start else "UNBOUNDED FOLLOWING"
        if bound == CURRENT_ROW or bound == 0:
            return "CURRENT ROW"
        if bound < 0:
            return f"{-bound} PRECEDING"
        return f"{bound} FOLLOWING"

    def to_sql(self) -> str:
        start = self._bound_sql(self.start, is_start=True)
        end = self._bound_sql(self.end, is_start=False)
        return f"{self.mode.upper()} BETWEEN {start} AND {end}"


@dataclass(frozen=True, slots=True)
class SortSpec:
    """One ORDER BY item: an expression plus direction."""

    expr: Expr
    ascending: bool = True

    def to_sql(self) -> str:
        direction = "ASC" if self.ascending else "DESC"
        return f"{self.expr.to_sql()} {direction}"


@dataclass(frozen=True, slots=True)
class WindowFunction(Expr):
    """``func(arg) OVER (PARTITION BY ... ORDER BY ... frame)``.

    This is the SQL/OLAP construct at the heart of the paper: cleansing
    rules compile into scalar aggregates over windows within EPC
    sequences. Like :class:`AggregateCall`, it is evaluated by a Window
    plan node, never bound directly.

    Supported functions: min, max, sum, count, avg, row_number, lag, lead.
    """

    name: str
    argument: Expr | None
    partition_by: tuple[Expr, ...] = ()
    order_by: tuple[SortSpec, ...] = ()
    frame: WindowFrame | None = None
    #: Row offset for lag/lead (ignored by the aggregates).
    offset: int = 1

    def __post_init__(self) -> None:
        name = self.name.lower()
        if name not in ("min", "max", "sum", "count", "avg", "row_number",
                        "lag", "lead"):
            raise PlanningError(f"unknown window function {self.name!r}")
        object.__setattr__(self, "name", name)
        if self.offset < 0:
            raise PlanningError("lag/lead offset must be non-negative")

    def children(self) -> Sequence[Expr]:
        flat: list[Expr] = []
        if self.argument is not None:
            flat.append(self.argument)
        flat.extend(self.partition_by)
        flat.extend(spec.expr for spec in self.order_by)
        return flat

    def _rebuild(self, children: tuple[Expr, ...]) -> Expr:
        cursor = 0
        argument = None
        if self.argument is not None:
            argument = children[cursor]
            cursor += 1
        partition = tuple(children[cursor:cursor + len(self.partition_by)])
        cursor += len(self.partition_by)
        order = tuple(
            SortSpec(children[cursor + i], spec.ascending)
            for i, spec in enumerate(self.order_by))
        return WindowFunction(self.name, argument, partition, order,
                              self.frame, self.offset)

    def bind(self, resolver: Resolver) -> Bound:
        raise PlanningError(
            f"window function {self.name}() OVER (...) must be evaluated by "
            "a Window plan node, not as a scalar expression")

    def to_sql(self) -> str:
        body = "*" if self.argument is None else self.argument.to_sql()
        if self.name == "row_number":
            body = ""
        elif self.name in ("lag", "lead") and self.offset != 1:
            body = f"{body}, {self.offset}"
        clauses = []
        if self.partition_by:
            keys = ", ".join(expr.to_sql() for expr in self.partition_by)
            clauses.append(f"PARTITION BY {keys}")
        if self.order_by:
            keys = ", ".join(spec.to_sql() for spec in self.order_by)
            clauses.append(f"ORDER BY {keys}")
        if self.frame is not None:
            clauses.append(self.frame.to_sql())
        return f"{self.name}({body}) OVER ({' '.join(clauses)})"


def column(name: str, qualifier: str | None = None) -> ColumnRef:
    """Shorthand constructor for :class:`ColumnRef`."""
    return ColumnRef(name, qualifier)


def lit(value: Any) -> Literal:
    """Shorthand constructor for :class:`Literal`."""
    return Literal(value)


def and_all(conjuncts: Sequence[Expr]) -> Expr | None:
    """AND together a sequence of expressions (None for an empty list)."""
    result: Expr | None = None
    for conjunct in conjuncts:
        result = conjunct if result is None else BinaryOp("and", result, conjunct)
    return result


def or_all(disjuncts: Sequence[Expr]) -> Expr | None:
    """OR together a sequence of expressions (None for an empty list)."""
    result: Expr | None = None
    for disjunct in disjuncts:
        result = disjunct if result is None else BinaryOp("or", result, disjunct)
    return result
