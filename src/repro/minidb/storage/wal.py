"""The write-ahead log: logical redo records with commit markers.

The WAL makes each catalog/table mutation atomic and durable *before*
any page is touched. Records are logical (the operation and its rows),
not physical page images — combined with copy-on-write pages this keeps
recovery simple: the data file always holds the state of the last
checkpoint, and replaying the committed WAL suffix on top of it
reproduces the last committed epoch exactly.

Framing, per record::

    u32 payload length | u32 CRC-32(payload) | payload

The payload's first byte is the operation kind; the rest uses the same
varint/typed-value serde as pages. Each transaction is a run of op
records terminated by a COMMIT record carrying the epoch; ``fsync``
happens once per transaction, immediately after the COMMIT record
(commit = durable). Recovery replays only transactions whose COMMIT
record is intact (CRC-valid) and whose epoch is newer than the
manifest's; a torn record or missing COMMIT discards the whole tail, so
a crash mid-write can only lose the *uncommitted* transaction.

Truncation happens at checkpoint, after the new manifest is durable:
everything in the log is then reflected in the data file and can go.
"""

from __future__ import annotations

import os
import struct
import zlib
from typing import Any, Iterator, Sequence

from repro.errors import StorageError
from repro.minidb.storage import faults
from repro.minidb.storage.serde import (
    decode_row,
    encode_row,
    read_varint,
    write_varint,
)

__all__ = ["OP_APPEND", "OP_COMMIT", "OP_CREATE_INDEX", "OP_CREATE_TABLE",
           "OP_DROP_TABLE", "OP_REPLACE", "WalRecord", "WriteAheadLog"]

OP_CREATE_TABLE = 1
OP_DROP_TABLE = 2
OP_CREATE_INDEX = 3
OP_APPEND = 4
OP_REPLACE = 5
OP_COMMIT = 6

_FRAME = struct.Struct(">II")


class WalRecord:
    """One decoded logical operation."""

    __slots__ = ("op", "table", "rows", "schema_pairs", "column",
                 "index_name", "epoch")

    def __init__(self, op: int, table: str = "", rows: list | None = None,
                 schema_pairs: list | None = None, column: str = "",
                 index_name: str | None = None, epoch: int = 0) -> None:
        self.op = op
        self.table = table
        self.rows = rows or []
        self.schema_pairs = schema_pairs or []
        self.column = column
        self.index_name = index_name
        self.epoch = epoch


def _encode_str(out: bytearray, text: str) -> None:
    data = text.encode("utf-8")
    write_varint(out, len(data))
    out.extend(data)


def _decode_str(buffer: bytes, offset: int) -> tuple[str, int]:
    length, offset = read_varint(buffer, offset)
    end = offset + length
    return buffer[offset:end].decode("utf-8"), end


def encode_create_table(name: str,
                        schema_pairs: Sequence[tuple[str, str]]) -> bytes:
    out = bytearray([OP_CREATE_TABLE])
    _encode_str(out, name)
    write_varint(out, len(schema_pairs))
    for column, type_value in schema_pairs:
        _encode_str(out, column)
        _encode_str(out, type_value)
    return bytes(out)


def encode_drop_table(name: str) -> bytes:
    out = bytearray([OP_DROP_TABLE])
    _encode_str(out, name)
    return bytes(out)


def encode_create_index(table: str, column: str, index_name: str) -> bytes:
    out = bytearray([OP_CREATE_INDEX])
    _encode_str(out, table)
    _encode_str(out, column)
    _encode_str(out, index_name)
    return bytes(out)


def encode_rows_op(op: int, table: str,
                   rows: Sequence[Sequence[Any]]) -> bytes:
    out = bytearray([op])
    _encode_str(out, table)
    write_varint(out, len(rows))
    for row in rows:
        cell = encode_row(row)
        write_varint(out, len(cell))
        out.extend(cell)
    return bytes(out)


def encode_commit(epoch: int) -> bytes:
    out = bytearray([OP_COMMIT])
    write_varint(out, epoch)
    return bytes(out)


def decode_record(payload: bytes) -> WalRecord:
    op = payload[0]
    offset = 1
    if op == OP_COMMIT:
        epoch, _ = read_varint(payload, offset)
        return WalRecord(op, epoch=epoch)
    if op == OP_CREATE_TABLE:
        name, offset = _decode_str(payload, offset)
        count, offset = read_varint(payload, offset)
        pairs = []
        for _ in range(count):
            column, offset = _decode_str(payload, offset)
            type_value, offset = _decode_str(payload, offset)
            pairs.append((column, type_value))
        return WalRecord(op, table=name, schema_pairs=pairs)
    if op == OP_DROP_TABLE:
        name, _ = _decode_str(payload, offset)
        return WalRecord(op, table=name)
    if op == OP_CREATE_INDEX:
        table, offset = _decode_str(payload, offset)
        column, offset = _decode_str(payload, offset)
        index_name, _ = _decode_str(payload, offset)
        return WalRecord(op, table=table, column=column,
                         index_name=index_name)
    if op in (OP_APPEND, OP_REPLACE):
        table, offset = _decode_str(payload, offset)
        count, offset = read_varint(payload, offset)
        rows = []
        for _ in range(count):
            length, offset = read_varint(payload, offset)
            rows.append(decode_row(payload[offset:offset + length]))
            offset += length
        return WalRecord(op, table=table, rows=rows)
    raise StorageError(f"unknown WAL op {op}")


class WriteAheadLog:
    """Append-only log file with transactional commit framing."""

    def __init__(self, path: str, sync: bool = True) -> None:
        self.path = path
        self.sync = sync
        self._fd: int | None = os.open(path, os.O_RDWR | os.O_CREAT, 0o644)
        self._offset = os.fstat(self._fd).st_size
        #: Lifetime bytes appended (monotone, survives truncation).
        self.bytes_written = 0
        self.commits = 0

    @property
    def size(self) -> int:
        return self._offset

    def close(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    def abandon(self) -> None:
        self.close()

    def _require_fd(self) -> int:
        if self._fd is None:
            raise StorageError("WAL is closed")
        return self._fd

    def _write_record(self, payload: bytes) -> None:
        fd = self._require_fd()
        frame = _FRAME.pack(len(payload), zlib.crc32(payload)) + payload
        if faults.torn_point("wal-record-torn"):
            os.pwrite(fd, frame[:max(1, len(frame) // 2)], self._offset)
            raise faults.InjectedCrash("wal-record-torn")
        os.pwrite(fd, frame, self._offset)
        self._offset += len(frame)
        self.bytes_written += len(frame)

    def commit(self, records: Sequence[bytes], epoch: int) -> None:
        """Append *records* + a COMMIT marker and make them durable."""
        for payload in records:
            self._write_record(payload)
        faults.crash_point("wal-before-commit")
        self._write_record(encode_commit(epoch))
        if self.sync:
            os.fsync(self._require_fd())
        self.commits += 1
        faults.crash_point("wal-after-commit")

    def truncate(self) -> None:
        """Discard the whole log (the checkpoint made it redundant)."""
        fd = self._require_fd()
        os.ftruncate(fd, 0)
        if self.sync:
            os.fsync(fd)
        self._offset = 0

    def committed_transactions(self) -> Iterator[tuple[int, list[WalRecord]]]:
        """Yield ``(epoch, ops)`` for every intact committed transaction.

        Scanning stops at the first torn, truncated, or CRC-invalid
        record; a trailing op run without a COMMIT marker is discarded.
        """
        fd = self._require_fd()
        data = os.pread(fd, os.fstat(fd).st_size, 0)
        offset = 0
        pending: list[WalRecord] = []
        while offset + _FRAME.size <= len(data):
            length, crc = _FRAME.unpack_from(data, offset)
            start = offset + _FRAME.size
            end = start + length
            if end > len(data):
                break  # torn tail
            payload = data[start:end]
            if zlib.crc32(payload) != crc:
                break  # corrupt record: discard from here on
            try:
                record = decode_record(payload)
            except (StorageError, IndexError):
                break
            offset = end
            if record.op == OP_COMMIT:
                yield record.epoch, pending
                pending = []
            else:
                pending.append(record)
