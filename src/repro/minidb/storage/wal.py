"""The write-ahead log: logical redo records with commit markers.

The WAL makes each catalog/table mutation atomic and durable *before*
any page is touched. Records are logical (the operation and its rows),
not physical page images — combined with copy-on-write pages this keeps
recovery simple: the data file always holds the state of the last
checkpoint, and replaying the committed WAL suffix on top of it
reproduces the last committed epoch exactly.

Framing, per record::

    u32 payload length | u32 CRC-32(payload) | payload

The payload's first byte is the operation kind; the rest uses the same
varint/typed-value serde as pages. Each transaction is a run of op
records terminated by a COMMIT record carrying the epoch; ``fsync``
happens once per transaction, immediately after the COMMIT record
(commit = durable). Recovery replays only transactions whose COMMIT
record is intact (CRC-valid) and whose epoch is newer than the
manifest's; a torn record or missing COMMIT discards the whole tail, so
a crash mid-write can only lose the *uncommitted* transaction.

**Group commit** (``REPRO_GROUP_COMMIT=<n>`` or ``<x>ms``) coalesces
adjacent transaction fsyncs: COMMIT records are still written in order,
but the fsync is deferred until *n* commits are pending (count form) or
the configured window has elapsed since the last sync (time form), and
always happens at checkpoint truncation and clean close. This trades
the durability *horizon* — a crash can lose up to the pending suffix of
committed-but-unsynced transactions — without changing the per-epoch
semantics: the WAL is a strict prefix of commit records, so recovery
still lands on an epoch-consistent prefix of the history, exactly as
with per-commit fsync. The ``wal-group-pending`` and ``wal-group-sync``
fault points crash-test both sides of the coalesced path.

Truncation happens at checkpoint, after the new manifest is durable:
everything in the log is then reflected in the data file and can go.
"""

from __future__ import annotations

import os
import struct
import time
import zlib
from typing import Any, Iterator, Sequence

from repro.errors import StorageError
from repro.minidb.storage import faults
from repro.minidb.storage.serde import (
    decode_row,
    encode_row,
    read_varint,
    write_varint,
)

__all__ = ["OP_APPEND", "OP_COMMIT", "OP_CREATE_INDEX", "OP_CREATE_TABLE",
           "OP_DROP_TABLE", "OP_REPLACE", "WalRecord", "WriteAheadLog",
           "configured_group_commit", "parse_group_commit"]

#: Environment knob selecting the group-commit policy.
GROUP_COMMIT_ENV = "REPRO_GROUP_COMMIT"


def parse_group_commit(spec: object) -> tuple[int, float]:
    """``(count, window_seconds)`` from a group-commit spec.

    ``None``/empty/invalid → ``(0, 0.0)`` (disabled: fsync per commit);
    an integer ``n`` coalesces up to *n* commits per fsync; ``"<x>ms"``
    fsyncs at most once per *x* milliseconds of commit activity.
    """
    if spec is None:
        return 0, 0.0
    if isinstance(spec, int) and not isinstance(spec, bool):
        return max(0, spec), 0.0
    text = str(spec).strip().lower()
    if not text:
        return 0, 0.0
    try:
        if text.endswith("ms"):
            return 0, max(0.0, float(text[:-2]) / 1000.0)
        return max(0, int(text)), 0.0
    except ValueError:
        return 0, 0.0


def configured_group_commit() -> tuple[int, float]:
    return parse_group_commit(os.environ.get(GROUP_COMMIT_ENV))

OP_CREATE_TABLE = 1
OP_DROP_TABLE = 2
OP_CREATE_INDEX = 3
OP_APPEND = 4
OP_REPLACE = 5
OP_COMMIT = 6

_FRAME = struct.Struct(">II")


class WalRecord:
    """One decoded logical operation."""

    __slots__ = ("op", "table", "rows", "schema_pairs", "column",
                 "index_name", "epoch")

    def __init__(self, op: int, table: str = "", rows: list | None = None,
                 schema_pairs: list | None = None, column: str = "",
                 index_name: str | None = None, epoch: int = 0) -> None:
        self.op = op
        self.table = table
        self.rows = rows or []
        self.schema_pairs = schema_pairs or []
        self.column = column
        self.index_name = index_name
        self.epoch = epoch


def _encode_str(out: bytearray, text: str) -> None:
    data = text.encode("utf-8")
    write_varint(out, len(data))
    out.extend(data)


def _decode_str(buffer: bytes, offset: int) -> tuple[str, int]:
    length, offset = read_varint(buffer, offset)
    end = offset + length
    return buffer[offset:end].decode("utf-8"), end


def encode_create_table(name: str,
                        schema_pairs: Sequence[tuple[str, str]]) -> bytes:
    out = bytearray([OP_CREATE_TABLE])
    _encode_str(out, name)
    write_varint(out, len(schema_pairs))
    for column, type_value in schema_pairs:
        _encode_str(out, column)
        _encode_str(out, type_value)
    return bytes(out)


def encode_drop_table(name: str) -> bytes:
    out = bytearray([OP_DROP_TABLE])
    _encode_str(out, name)
    return bytes(out)


def encode_create_index(table: str, column: str, index_name: str) -> bytes:
    out = bytearray([OP_CREATE_INDEX])
    _encode_str(out, table)
    _encode_str(out, column)
    _encode_str(out, index_name)
    return bytes(out)


def encode_rows_op(op: int, table: str,
                   rows: Sequence[Sequence[Any]]) -> bytes:
    out = bytearray([op])
    _encode_str(out, table)
    write_varint(out, len(rows))
    for row in rows:
        cell = encode_row(row)
        write_varint(out, len(cell))
        out.extend(cell)
    return bytes(out)


def encode_commit(epoch: int) -> bytes:
    out = bytearray([OP_COMMIT])
    write_varint(out, epoch)
    return bytes(out)


def decode_record(payload: bytes) -> WalRecord:
    op = payload[0]
    offset = 1
    if op == OP_COMMIT:
        epoch, _ = read_varint(payload, offset)
        return WalRecord(op, epoch=epoch)
    if op == OP_CREATE_TABLE:
        name, offset = _decode_str(payload, offset)
        count, offset = read_varint(payload, offset)
        pairs = []
        for _ in range(count):
            column, offset = _decode_str(payload, offset)
            type_value, offset = _decode_str(payload, offset)
            pairs.append((column, type_value))
        return WalRecord(op, table=name, schema_pairs=pairs)
    if op == OP_DROP_TABLE:
        name, _ = _decode_str(payload, offset)
        return WalRecord(op, table=name)
    if op == OP_CREATE_INDEX:
        table, offset = _decode_str(payload, offset)
        column, offset = _decode_str(payload, offset)
        index_name, _ = _decode_str(payload, offset)
        return WalRecord(op, table=table, column=column,
                         index_name=index_name)
    if op in (OP_APPEND, OP_REPLACE):
        table, offset = _decode_str(payload, offset)
        count, offset = read_varint(payload, offset)
        rows = []
        for _ in range(count):
            length, offset = read_varint(payload, offset)
            rows.append(decode_row(payload[offset:offset + length]))
            offset += length
        return WalRecord(op, table=table, rows=rows)
    raise StorageError(f"unknown WAL op {op}")


class WriteAheadLog:
    """Append-only log file with transactional commit framing."""

    def __init__(self, path: str, sync: bool = True,
                 group_commit: object | None = None) -> None:
        self.path = path
        self.sync = sync
        self._fd: int | None = os.open(path, os.O_RDWR | os.O_CREAT, 0o644)
        self._offset = os.fstat(self._fd).st_size
        #: Lifetime bytes appended (monotone, survives truncation).
        self.bytes_written = 0
        self.commits = 0
        if group_commit is None:
            self.group_count, self.group_window = configured_group_commit()
        else:
            self.group_count, self.group_window = parse_group_commit(
                group_commit)
        #: Commits whose fsync is still deferred (group commit only).
        self.pending_commits = 0
        self._last_sync = time.monotonic()
        #: Lifetime fsyncs of the log file; with group commit on, the
        #: benchmark proves coalescing by ``commits / syncs``.
        self.syncs = 0
        #: Fsyncs that covered two or more pending commits.
        self.group_syncs = 0

    @property
    def size(self) -> int:
        return self._offset

    @property
    def group_enabled(self) -> bool:
        return bool(self.group_count or self.group_window)

    def close(self) -> None:
        if self._fd is not None:
            if self.sync and self.pending_commits:
                self._fsync()
            os.close(self._fd)
            self._fd = None

    def abandon(self) -> None:
        """Simulated power cut: close without syncing pending commits."""
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None
        self.pending_commits = 0

    def _require_fd(self) -> int:
        if self._fd is None:
            raise StorageError("WAL is closed")
        return self._fd

    def _write_record(self, payload: bytes) -> None:
        fd = self._require_fd()
        frame = _FRAME.pack(len(payload), zlib.crc32(payload)) + payload
        if faults.torn_point("wal-record-torn"):
            os.pwrite(fd, frame[:max(1, len(frame) // 2)], self._offset)
            raise faults.InjectedCrash("wal-record-torn")
        os.pwrite(fd, frame, self._offset)
        self._offset += len(frame)
        self.bytes_written += len(frame)

    def _fsync(self) -> None:
        covered = self.pending_commits
        os.fsync(self._require_fd())
        self.syncs += 1
        if covered >= 2:
            self.group_syncs += 1
        self.pending_commits = 0
        self._last_sync = time.monotonic()

    def sync_pending(self) -> None:
        """Make every pending (written, unsynced) commit durable now."""
        if self.sync and self.pending_commits:
            self._fsync()
            faults.crash_point("wal-group-sync")

    def commit(self, records: Sequence[bytes], epoch: int) -> None:
        """Append *records* + a COMMIT marker and make them durable.

        With group commit enabled durability of this commit may be
        deferred: the COMMIT record is written immediately, but the
        fsync waits until enough commits are pending (or the window has
        elapsed), the log is truncated, or the WAL is closed.
        """
        for payload in records:
            self._write_record(payload)
        faults.crash_point("wal-before-commit")
        self._write_record(encode_commit(epoch))
        self.commits += 1
        if self.sync:
            if self.group_enabled:
                self.pending_commits += 1
                faults.crash_point("wal-group-pending")
                due = (self.group_count
                       and self.pending_commits >= self.group_count)
                if not due and self.group_window:
                    due = (time.monotonic() - self._last_sync
                           >= self.group_window)
                if due:
                    self._fsync()
                    faults.crash_point("wal-group-sync")
            else:
                self.pending_commits += 1
                self._fsync()
        faults.crash_point("wal-after-commit")

    def truncate(self) -> None:
        """Discard the whole log (the checkpoint made it redundant)."""
        fd = self._require_fd()
        os.ftruncate(fd, 0)
        if self.sync:
            os.fsync(fd)
        self._offset = 0
        self.pending_commits = 0
        self._last_sync = time.monotonic()

    def committed_transactions(self) -> Iterator[tuple[int, list[WalRecord]]]:
        """Yield ``(epoch, ops)`` for every intact committed transaction.

        Scanning stops at the first torn, truncated, or CRC-invalid
        record; a trailing op run without a COMMIT marker is discarded.
        """
        fd = self._require_fd()
        data = os.pread(fd, os.fstat(fd).st_size, 0)
        offset = 0
        pending: list[WalRecord] = []
        while offset + _FRAME.size <= len(data):
            length, crc = _FRAME.unpack_from(data, offset)
            start = offset + _FRAME.size
            end = start + length
            if end > len(data):
                break  # torn tail
            payload = data[start:end]
            if zlib.crc32(payload) != crc:
                break  # corrupt record: discard from here on
            try:
                record = decode_record(payload)
            except (StorageError, IndexError):
                break
            offset = end
            if record.op == OP_COMMIT:
                yield record.epoch, pending
                pending = []
            else:
                pending.append(record)
