"""Crash fault injection for the storage engine.

The crash-recovery test rig works by *killing writes at named fault
points*: setting ``REPRO_STORAGE_CRASH=<point>`` (or ``<point>:<n>`` to
crash on the n-th hit) makes the storage layer raise
:class:`InjectedCrash` the moment execution reaches that point. The
exception derives from ``BaseException`` so no ``except Exception``
handler on the way out can accidentally "survive" the power cut; tests
catch it explicitly, abandon the database object without closing it, and
reopen the files to exercise recovery.

Fault-point catalog (see DESIGN.md §13 for the protocol each interrupts):

====================================  ==================================
``wal-record-torn``                   half of a WAL op record is written,
                                      then the crash fires (torn record;
                                      the CRC must reject the tail)
``wal-before-commit``                 op records are durable but the
                                      commit record was never written
``wal-after-commit``                  the commit record is fsync'd but
                                      no page was touched yet — recovery
                                      must redo the batch
``page-torn``                         half of a data page is written,
                                      then the crash fires (torn page;
                                      only COW pages are ever at risk)
``page-flush``                        immediately after one full page
                                      write (pages beyond it unwritten)
``checkpoint-before-manifest``        dirty pages flushed, but the old
                                      manifest is still current
``checkpoint-after-manifest``         the new manifest is committed but
                                      the WAL was not truncated —
                                      replay must be idempotent
``wal-group-pending``                 group commit: the COMMIT record is
                                      written but its fsync is deferred
                                      to a later coalesced sync
``wal-group-sync``                    group commit: immediately after a
                                      coalesced fsync covering one or
                                      more pending commits
``compaction-move``                   checkpoint compaction: relocated
                                      page copies are flushed, but the
                                      manifest still references the old
                                      page ids (originals untouched)
====================================  ==================================

The hit counters live in module state so a single test can arm a point
and step through successive hits deterministically; :func:`reset` clears
them (the recovery-test fixture calls it around every case).
"""

from __future__ import annotations

import os

__all__ = ["CRASH_ENV", "InjectedCrash", "crash_point", "reset",
           "torn_point"]

#: Environment variable naming the armed fault point.
CRASH_ENV = "REPRO_STORAGE_CRASH"

#: Every point name the storage layer declares, for validation in tests.
ALL_POINTS = (
    "wal-record-torn",
    "wal-before-commit",
    "wal-after-commit",
    "page-torn",
    "page-flush",
    "checkpoint-before-manifest",
    "checkpoint-after-manifest",
    "wal-group-pending",
    "wal-group-sync",
    "compaction-move",
)


class InjectedCrash(BaseException):
    """The simulated power cut.

    A ``BaseException`` on purpose: generic ``except Exception`` cleanup
    along the unwind path must not swallow it, exactly as a real crash
    would not run that cleanup.
    """

    def __init__(self, point: str) -> None:
        super().__init__(f"injected crash at storage fault point {point!r}")
        self.point = point


_hits: dict[str, int] = {}


def reset() -> None:
    """Clear hit counters (call between independent crash scenarios)."""
    _hits.clear()


def _armed(name: str) -> bool:
    spec = os.environ.get(CRASH_ENV, "")
    if not spec:
        return False
    point, _, nth = spec.partition(":")
    if point != name:
        return False
    target = int(nth) if nth else 1
    _hits[name] = _hits.get(name, 0) + 1
    return _hits[name] == target


def crash_point(name: str) -> None:
    """Raise :class:`InjectedCrash` when fault point *name* is armed."""
    if _armed(name):
        raise InjectedCrash(name)


def torn_point(name: str) -> bool:
    """Whether a *torn-write* fault point is armed right now.

    Unlike :func:`crash_point` this does not raise: the caller must
    perform the partial write itself and then raise
    :class:`InjectedCrash` — the pattern for ``wal-record-torn`` and
    ``page-torn``, where the interesting state is the half-written
    bytes, not the missing write.
    """
    return _armed(name)
