"""The on-disk B-tree backing cluster-key indexes in ``storage=disk``.

Entries are ``(key, seq, row_position)`` ordered by ``(key, seq)``,
where ``seq`` is a per-index monotone insertion counter. Because every
new entry gets a larger ``seq`` than every existing one, ordering by
``(key, seq)`` reproduces the in-memory :class:`~repro.minidb.index.
SortedIndex` semantics exactly: new entries land *after* existing equal
keys (``bisect_right``), and a bulk build keyed by a stable sort keeps
input order among equals. Range scans therefore yield byte-identical
position sequences in both storage modes.

Nodes copy-on-write: a page referenced by the current on-disk manifest
is never mutated in place — the first touch after a checkpoint clones it
to a freshly allocated page id and retires the old one (reusable after
the next checkpoint). Pages already private (allocated since the last
checkpoint) are mutated in place, so a burst of inserts pays one clone
per touched path, not one per entry. Crash recovery never needs to undo
anything: the manifest's root still describes the checkpoint tree, and
the WAL replays the logical inserts on top of it.

There are no sibling pointers (they would force COW cascades along the
leaf level); range scans carry an explicit ancestor stack instead. All
node access goes through the buffer pool, with the descent path pinned
so eviction cannot drop a node mid-split.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterable, Iterator

from repro.errors import StorageError
from repro.minidb.index import IndexRange, SortedIndex
from repro.minidb.storage.page import (
    KIND_BTREE_INNER,
    KIND_BTREE_LEAF,
    SLOT_SIZE,
    cell_capacity,
)
from repro.minidb.storage.serde import (
    decode_value,
    encode_value,
    read_varint,
    write_varint,
)
from repro.minidb.storage.zones import leaf_zone, pruning_enabled

__all__ = ["BTreeBackedIndex", "DiskBTree", "LeafNode", "InnerNode"]


def _encode_entry(key: Any, seq: int, position: int) -> bytes:
    out = bytearray()
    encode_value(out, key)
    write_varint(out, seq)
    write_varint(out, position)
    return bytes(out)


class LeafNode:
    """Decoded leaf: parallel entry arrays plus a running byte size."""

    __slots__ = ("keys", "seqs", "positions", "nbytes")

    def __init__(self, keys: list, seqs: list[int],
                 positions: list[int]) -> None:
        self.keys = keys
        self.seqs = seqs
        self.positions = positions
        self.nbytes = sum(
            len(_encode_entry(key, seq, position)) + SLOT_SIZE
            for key, seq, position in zip(keys, seqs, positions))

    def clone(self) -> "LeafNode":
        return LeafNode(list(self.keys), list(self.seqs),
                        list(self.positions))

    def encode_cells(self) -> tuple[int, list[bytes]]:
        return KIND_BTREE_LEAF, [
            _encode_entry(key, seq, position)
            for key, seq, position in zip(self.keys, self.seqs,
                                          self.positions)]

    @classmethod
    def from_cells(cls, cells: list[bytes]) -> "LeafNode":
        keys: list = []
        seqs: list[int] = []
        positions: list[int] = []
        for cell in cells:
            key, offset = decode_value(cell, 0)
            seq, offset = read_varint(cell, offset)
            position, _ = read_varint(cell, offset)
            keys.append(key)
            seqs.append(seq)
            positions.append(position)
        return cls(keys, seqs, positions)


class InnerNode:
    """Decoded internal node: child page ids and (key, seq) separators.

    ``seps[i]`` is the smallest entry in the subtree of
    ``children[i + 1]``; descent for a probe ``(key, seq)`` picks the
    child whose separator run covers it.
    """

    __slots__ = ("children", "sep_keys", "sep_seqs", "nbytes")

    def __init__(self, children: list[int], sep_keys: list,
                 sep_seqs: list[int]) -> None:
        self.children = children
        self.sep_keys = sep_keys
        self.sep_seqs = sep_seqs
        self.nbytes = sum(len(cell) + SLOT_SIZE
                          for cell in self.encode_cells()[1])

    def clone(self) -> "InnerNode":
        return InnerNode(list(self.children), list(self.sep_keys),
                         list(self.sep_seqs))

    def encode_cells(self) -> tuple[int, list[bytes]]:
        first = bytearray()
        write_varint(first, self.children[0])
        cells = [bytes(first)]
        for child, key, seq in zip(self.children[1:], self.sep_keys,
                                   self.sep_seqs):
            cell = bytearray()
            write_varint(cell, child)
            encode_value(cell, key)
            write_varint(cell, seq)
            cells.append(bytes(cell))
        return KIND_BTREE_INNER, cells

    @classmethod
    def from_cells(cls, cells: list[bytes]) -> "InnerNode":
        child0, _ = read_varint(cells[0], 0)
        children = [child0]
        sep_keys: list = []
        sep_seqs: list[int] = []
        for cell in cells[1:]:
            child, offset = read_varint(cell, 0)
            key, offset = decode_value(cell, offset)
            seq, _ = read_varint(cell, offset)
            children.append(child)
            sep_keys.append(key)
            sep_seqs.append(seq)
        return cls(children, sep_keys, sep_seqs)


class DiskBTree:
    """A copy-on-write B-tree of ``(key, seq, position)`` entries.

    *storage* provides page services: ``pager`` (the buffer pool),
    ``allocate_page()``, ``free_page(id)`` and ``page_shadowed(id)``
    (whether the current manifest references the page, forcing COW).
    """

    def __init__(self, storage: Any, root: int | None = None,
                 entry_count: int = 0, next_seq: int = 0,
                 pages: Iterable[int] = ()) -> None:
        self.storage = storage
        self.root = root
        self.entry_count = entry_count
        self.next_seq = next_seq
        #: Every live page id of this tree (kept in memory so manifests
        #: and frees never need a disk walk).
        self.pages: set[int] = set(pages)

    def __len__(self) -> int:
        return self.entry_count

    # -- page plumbing --------------------------------------------------

    def _fetch(self, page_id: int) -> Any:
        return self.storage.pager.fetch(page_id)

    def _adopt(self, node: Any) -> int:
        page_id = self.storage.allocate_page()
        self.storage.pager.adopt(page_id, node)
        self.pages.add(page_id)
        return page_id

    def _free(self, page_id: int) -> None:
        self.pages.discard(page_id)
        self.storage.free_page(page_id)

    def _capacity(self) -> int:
        return cell_capacity(self.storage.pager.page_size)

    def _note_leaf(self, page_id: int, node: LeafNode) -> None:
        """Record (or clear) the zone-map entry for a mutated leaf."""
        zones = getattr(self.storage, "zones", None)
        if zones is None:
            return
        zone = leaf_zone(node.keys)
        if zone is None:
            zones.pop(page_id, None)
        else:
            zones[page_id] = zone

    def _shadow(self, page_id: int, node: Any) -> tuple[int, Any]:
        """A mutable (id, node) for the page, cloning when shadowed."""
        if not self.storage.page_shadowed(page_id):
            self.storage.pager.mark_dirty(page_id)
            return page_id, node
        clone = node.clone()
        new_id = self._adopt(clone)
        self._free(page_id)
        if isinstance(clone, LeafNode):
            self._note_leaf(new_id, clone)
        return new_id, clone

    # -- mutation -------------------------------------------------------

    def insert(self, key: Any, position: int) -> None:
        """Insert one entry (NULL keys are the caller's concern)."""
        seq = self.next_seq
        self.next_seq += 1
        self.entry_count += 1
        if self.root is None:
            root = LeafNode([key], [seq], [position])
            self.root = self._adopt(root)
            self._note_leaf(self.root, root)
            return
        self._insert_entry(key, seq, position)

    def insert_many(self, pairs: Iterable[tuple[Any, int]]) -> None:
        for key, position in pairs:
            self.insert(key, position)

    def _insert_entry(self, key: Any, seq: int, position: int) -> None:
        pager = self.storage.pager
        pinned: list[int] = []
        try:
            # Descend to the rightmost leaf that can hold (key, seq),
            # COW-ing the path top-down so parent links stay correct.
            node_id = self.root
            node = self._fetch(node_id)
            node_id, node = self._shadow(node_id, node)
            self.root = node_id
            pager.pin(node_id)
            pinned.append(node_id)
            path: list[tuple[InnerNode, int]] = []
            while isinstance(node, InnerNode):
                child_idx = self._descend_index(node, key, seq)
                child_id = node.children[child_idx]
                child = self._fetch(child_id)
                child_id, child = self._shadow(child_id, child)
                node.children[child_idx] = child_id
                pager.pin(child_id)
                pinned.append(child_id)
                path.append((node, child_idx))
                node = child
                node_id = child_id
            # Equal keys always land after existing ones: seq is larger
            # than every stored seq, and descent already picked the
            # rightmost candidate leaf.
            slot = bisect.bisect_right(node.keys, key)
            node.keys.insert(slot, key)
            node.seqs.insert(slot, seq)
            node.positions.insert(slot, position)
            node.nbytes += len(_encode_entry(key, seq, position)) + SLOT_SIZE
            self._note_leaf(node_id, node)
            self._split_upward(node_id, node, path, pinned)
        finally:
            for page_id in pinned:
                pager.unpin(page_id)

    @staticmethod
    def _descend_index(node: InnerNode, key: Any, seq: int) -> int:
        """Child index whose subtree covers the probe ``(key, seq)``."""
        lo, hi = 0, len(node.sep_keys)
        while lo < hi:
            mid = (lo + hi) // 2
            if (node.sep_keys[mid], node.sep_seqs[mid]) <= (key, seq):
                lo = mid + 1
            else:
                hi = mid
        return lo

    def _split_upward(self, node_id: int, node: Any,
                      path: list[tuple[InnerNode, int]],
                      pinned: list[int]) -> None:
        capacity = self._capacity()
        pager = self.storage.pager
        while node.nbytes > capacity:
            if isinstance(node, LeafNode):
                mid = len(node.keys) // 2
                right = LeafNode(node.keys[mid:], node.seqs[mid:],
                                 node.positions[mid:])
                del node.keys[mid:]
                del node.seqs[mid:]
                del node.positions[mid:]
                node.nbytes -= right.nbytes
                sep_key = right.keys[0]
                sep_seq = right.seqs[0]
                self._note_leaf(node_id, node)
            else:
                mid = len(node.sep_keys) // 2
                sep_key = node.sep_keys[mid]
                sep_seq = node.sep_seqs[mid]
                right = InnerNode(node.children[mid + 1:],
                                  node.sep_keys[mid + 1:],
                                  node.sep_seqs[mid + 1:])
                del node.children[mid + 1:]
                del node.sep_keys[mid:]
                del node.sep_seqs[mid:]
                node.nbytes = sum(
                    len(cell) + SLOT_SIZE
                    for cell in node.encode_cells()[1])
            right_id = self._adopt(right)
            if isinstance(right, LeafNode):
                self._note_leaf(right_id, right)
            pager.pin(right_id)
            pinned.append(right_id)
            if path:
                parent, child_idx = path.pop()
                parent.children.insert(child_idx + 1, right_id)
                parent.sep_keys.insert(child_idx, sep_key)
                parent.sep_seqs.insert(child_idx, sep_seq)
                cell = bytearray()
                write_varint(cell, right_id)
                encode_value(cell, sep_key)
                write_varint(cell, sep_seq)
                parent.nbytes += len(cell) + SLOT_SIZE
                node = parent
                node_id = self._parent_id(parent, path)
            else:
                new_root = InnerNode([node_id, right_id], [sep_key],
                                     [sep_seq])
                self.root = self._adopt(new_root)
                pager.pin(self.root)
                pinned.append(self.root)
                return

    def _parent_id(self, parent: InnerNode,
                   path: list[tuple[InnerNode, int]]) -> int:
        if path:
            grand, idx = path[-1]
            return grand.children[idx]
        return self.root

    def build(self, keyed_positions: Iterable[tuple[Any, int]]) -> None:
        """(Re)build from scratch; equals keep input (position) order."""
        for page_id in list(self.pages):
            self.storage.pager.discard(page_id)
            self._free(page_id)
        self.root = None
        self.entry_count = 0
        pairs = sorted(
            (pair for pair in keyed_positions if pair[0] is not None),
            key=lambda pair: pair[0])
        if not pairs:
            return
        base = self.next_seq
        entries = [(key, base + index, position)
                   for index, (key, position) in enumerate(pairs)]
        self.next_seq = base + len(entries)
        self.entry_count = len(entries)
        self._bulk_build(entries)

    def _bulk_build(self, entries: list[tuple[Any, int, int]]) -> None:
        capacity = self._capacity()
        # Pack leaves to ~90% so trickle inserts do not split instantly.
        budget = max(SLOT_SIZE * 4, (capacity * 9) // 10)
        level: list[tuple[int, Any, int]] = []  # (page_id, key, seq)
        leaf_entries: list[tuple[Any, int, int]] = []
        size = 0

        def flush_leaf() -> None:
            nonlocal leaf_entries, size
            if not leaf_entries:
                return
            node = LeafNode([e[0] for e in leaf_entries],
                            [e[1] for e in leaf_entries],
                            [e[2] for e in leaf_entries])
            leaf_id = self._adopt(node)
            self._note_leaf(leaf_id, node)
            level.append((leaf_id, leaf_entries[0][0],
                          leaf_entries[0][1]))
            leaf_entries = []
            size = 0

        for entry in entries:
            entry_size = len(_encode_entry(*entry)) + SLOT_SIZE
            if leaf_entries and size + entry_size > budget:
                flush_leaf()
            leaf_entries.append(entry)
            size += entry_size
        flush_leaf()

        while len(level) > 1:
            parent_level: list[tuple[int, Any, int]] = []
            group: list[tuple[int, Any, int]] = []
            group_size = len(bytes(8))  # leftmost child cell estimate
            for child_id, key, seq in level:
                cell = bytearray()
                write_varint(cell, child_id)
                encode_value(cell, key)
                write_varint(cell, seq)
                cell_size = len(cell) + SLOT_SIZE
                if group and group_size + cell_size > budget:
                    parent_level.append(self._flush_inner(group))
                    group = []
                    group_size = 8
                group.append((child_id, key, seq))
                group_size += cell_size
            if group:
                parent_level.append(self._flush_inner(group))
            level = parent_level
        self.root = level[0][0]

    def _flush_inner(self,
                     group: list[tuple[int, Any, int]]) -> tuple[int, Any, int]:
        node = InnerNode([child for child, _, _ in group],
                         [key for _, key, _ in group[1:]],
                         [seq for _, _, seq in group[1:]])
        return self._adopt(node), group[0][1], group[0][2]

    # -- lookup ---------------------------------------------------------

    def _iter_entries(self, key_range: IndexRange | None,
                      ) -> Iterator[tuple[Any, int, int]]:
        if self.root is None:
            return
        low = None if key_range is None else key_range.low
        low_inclusive = key_range.low_inclusive if key_range else True
        high = None if key_range is None else key_range.high
        high_inclusive = key_range.high_inclusive if key_range else True
        # Explicit ancestor stack instead of sibling pointers.
        stack: list[tuple[InnerNode, int]] = []
        node = self._fetch(self.root)
        while isinstance(node, InnerNode):
            if low is None:
                idx = 0
            elif low_inclusive:
                idx = bisect.bisect_left(node.sep_keys, low)
            else:
                idx = bisect.bisect_right(node.sep_keys, low)
            stack.append((node, idx + 1))
            node = self._fetch(node.children[idx])
        if low is None:
            start = 0
        elif low_inclusive:
            start = bisect.bisect_left(node.keys, low)
        else:
            start = bisect.bisect_right(node.keys, low)
        while True:
            for slot in range(start, len(node.keys)):
                key = node.keys[slot]
                if high is not None:
                    if high_inclusive:
                        if key > high:
                            return
                    elif key >= high:
                        return
                yield key, node.seqs[slot], node.positions[slot]
            # Advance to the next leaf via the ancestor stack.
            node = None
            while stack:
                parent, next_idx = stack.pop()
                if next_idx < len(parent.children):
                    child_id = parent.children[next_idx]
                    if high is not None and self._leaf_beyond(
                            child_id, high, high_inclusive):
                        # Entries ascend globally: once a leaf's zone
                        # starts beyond the bound, every later leaf does
                        # too — stop without fetching it.
                        return
                    stack.append((parent, next_idx + 1))
                    node = self._fetch(child_id)
                    while isinstance(node, InnerNode):
                        stack.append((node, 1))
                        node = self._fetch(node.children[0])
                    break
            if node is None:
                return
            start = 0

    def _leaf_beyond(self, page_id: int, high: Any,
                     inclusive: bool) -> bool:
        """Whether *page_id*'s leaf zone proves it starts past *high*."""
        if not pruning_enabled():
            return False
        zones = getattr(self.storage, "zones", None)
        zone = None if zones is None else zones.get(page_id)
        if not zone or zone[0] != "l":
            return False
        try:
            beyond = zone[1] > high if inclusive else zone[1] >= high
        except TypeError:
            return False
        if beyond:
            self.storage.pages_pruned += 1
        return beyond

    def scan(self, key_range: IndexRange) -> Iterator[int]:
        for _, _, position in self._iter_entries(key_range):
            yield position

    def count(self, key_range: IndexRange) -> int:
        total = 0
        for _ in self._iter_entries(key_range):
            total += 1
        return total

    def min_key(self) -> Any:
        for key, _, _ in self._iter_entries(None):
            return key
        return None

    def max_key(self) -> Any:
        if self.root is None:
            return None
        node = self._fetch(self.root)
        while isinstance(node, InnerNode):
            node = self._fetch(node.children[-1])
        return node.keys[-1] if node.keys else None

    # -- invariants (test support) --------------------------------------

    def check_invariants(self) -> None:
        """Assert structural invariants; raises StorageError on breach.

        Checked: every leaf at the same depth (balance), entries sorted
        by ``(key, seq)`` globally, node byte sizes within capacity,
        separator keys equal to the smallest entry of their subtree, and
        the recorded entry count matching an actual walk.
        """
        if self.root is None:
            if self.entry_count:
                raise StorageError("empty tree with non-zero entry count")
            return
        capacity = self._capacity()
        leaf_depths: set[int] = set()
        total = 0
        previous: tuple | None = None

        def visit(page_id: int, depth: int) -> tuple:
            nonlocal total, previous
            node = self._fetch(page_id)
            if node.nbytes > capacity:
                raise StorageError(
                    f"page {page_id} overflows capacity "
                    f"({node.nbytes} > {capacity})")
            if isinstance(node, LeafNode):
                leaf_depths.add(depth)
                if not node.keys and self.entry_count:
                    raise StorageError(f"empty leaf {page_id}")
                for key, seq in zip(node.keys, node.seqs):
                    entry = (key, seq)
                    if previous is not None and entry <= previous:
                        raise StorageError(
                            f"entries out of order: {previous!r} then "
                            f"{entry!r}")
                    previous = entry
                total += len(node.keys)
                return (node.keys[0], node.seqs[0])
            smallest = None
            for index, child in enumerate(node.children):
                child_min = visit(child, depth + 1)
                if index == 0:
                    smallest = child_min
                else:
                    sep = (node.sep_keys[index - 1],
                           node.sep_seqs[index - 1])
                    if child_min != sep:
                        raise StorageError(
                            f"separator {sep!r} != child minimum "
                            f"{child_min!r}")
            return smallest

        visit(self.root, 0)
        if len(leaf_depths) != 1:
            raise StorageError(f"unbalanced leaf depths {leaf_depths}")
        if total != self.entry_count:
            raise StorageError(
                f"entry count {self.entry_count} != walked {total}")


class BTreeBackedIndex(SortedIndex):
    """A :class:`SortedIndex` whose entries live in an on-disk B-tree.

    Same public behaviour — NULL keys excluded, equal keys in insertion
    order, exact range counts — but every probe goes through the buffer
    pool, so index memory is bounded by ``REPRO_BUFFER_PAGES`` like any
    other page access.
    """

    def __init__(self, name: str, column: str, tree: DiskBTree) -> None:
        super().__init__(name, column)
        self.tree = tree

    def __len__(self) -> int:
        return len(self.tree)

    def build(self, keyed_positions: Iterable[tuple[Any, int]]) -> None:
        self.tree.build(keyed_positions)

    def insert(self, key: Any, position: int) -> None:
        if key is None:
            return
        self.tree.insert(key, position)

    def insert_many(self, keyed_positions: Iterable[tuple[Any, int]]) -> None:
        fresh = sorted(
            (pair for pair in keyed_positions if pair[0] is not None),
            key=lambda pair: pair[0])
        self.tree.insert_many(fresh)

    def scan(self, key_range: IndexRange) -> Iterator[int]:
        return self.tree.scan(key_range)

    def count(self, key_range: IndexRange) -> int:
        return self.tree.count(key_range)

    def min_key(self) -> Any:
        return self.tree.min_key()

    def max_key(self) -> Any:
        return self.tree.max_key()
