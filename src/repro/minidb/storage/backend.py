"""The disk storage backend: pages + WAL + manifest, with recovery.

One :class:`DiskStorage` owns a database directory::

    data.pages     fixed-size slotted pages (heap rows, B-tree nodes)
    wal.log        logical redo log, truncated at each checkpoint
    MANIFEST.json  atomic checkpoint root (written via tmp + rename)

Durability protocol (see DESIGN.md §13):

1. Every mutation batch is logged to the WAL and fsync'd *before* any
   page changes — commit means the COMMIT record is on disk.
2. Pages referenced by the current manifest are never overwritten:
   mutations copy-on-write onto freshly allocated page ids, so a torn
   page write can only hit a page recovery will never read.
3. A checkpoint flushes dirty pages, fsyncs the data file, atomically
   replaces the manifest, and only then truncates the WAL. The manifest
   records the checkpoint epoch; replay skips committed transactions at
   or below it, making recovery idempotent.

Recovery on open: load the manifest (if any), attach each table with its
heap-page chain and B-tree indexes, then replay every intact committed
WAL transaction with a newer epoch through the normal ``Table`` mutation
paths (logging suppressed). The resulting state is exactly the last
committed epoch — the crash-recovery test rig asserts this for a crash
at every declared fault point.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
from typing import TYPE_CHECKING, Iterator

from repro.errors import StorageError
from repro.minidb.storage import faults, wal as walmod
from repro.minidb.storage.btree import (
    BTreeBackedIndex,
    DiskBTree,
    InnerNode,
    LeafNode,
)
from repro.minidb.storage.heap import DiskRowStore, HeapPageNode
from repro.minidb.storage.page import (
    KIND_BTREE_INNER,
    KIND_BTREE_LEAF,
    KIND_HEAP,
    KIND_HEAP_DICT,
    configured_page_size,
)
from repro.minidb.storage.pager import Pager, configured_buffer_pages

if TYPE_CHECKING:
    from repro.minidb.catalog import Catalog

__all__ = ["DEFAULT_CHECKPOINT_BYTES", "DiskStorage",
           "configured_checkpoint_bytes"]

#: WAL size that triggers an automatic checkpoint at the end of the
#: mutation that crossed it (``REPRO_WAL_LIMIT`` overrides).
DEFAULT_CHECKPOINT_BYTES = 1 << 20

_MANIFEST = "MANIFEST.json"
_DATA = "data.pages"
_WAL = "wal.log"


def configured_checkpoint_bytes() -> int:
    env = os.environ.get("REPRO_WAL_LIMIT")
    if env is None:
        return DEFAULT_CHECKPOINT_BYTES
    try:
        return max(1, int(env.strip()))
    except ValueError:
        return DEFAULT_CHECKPOINT_BYTES


def _decode_node(kind: int, cells: list[bytes]):
    if kind == KIND_HEAP:
        return HeapPageNode.from_cells(cells)
    if kind == KIND_HEAP_DICT:
        return HeapPageNode.from_dict_cells(cells)
    if kind == KIND_BTREE_LEAF:
        return LeafNode.from_cells(cells)
    if kind == KIND_BTREE_INNER:
        return InnerNode.from_cells(cells)
    raise StorageError(f"unknown page kind {kind}")


class DiskStorage:
    """Page-based persistent storage for one database.

    With ``path=None`` the storage owns a temporary directory that is
    deleted on a clean :meth:`close` — the ephemeral mode the fuzz
    oracle's ``disk`` label uses. A named path persists across opens and
    is what the recovery tests reopen after a simulated crash.
    """

    def __init__(self, path: str | None = None,
                 buffer_pages: int | None = None,
                 page_size: int | None = None, sync: bool = True,
                 checkpoint_bytes: int | None = None,
                 group_commit: object | None = None,
                 readahead: int | None = None,
                 encode: bool | None = None) -> None:
        # Assigned before anything that can raise, so close() on a
        # partially constructed instance (a failed __init__ reached via
        # Database.__exit__/__del__) has a consistent base state.
        self.pager = None
        self.wal = None
        self.catalog: "Catalog | None" = None
        self.dead = False
        self.readonly = False
        self.owns_dir = path is None
        self.path = path or tempfile.mkdtemp(prefix="minidb-")
        os.makedirs(self.path, exist_ok=True)
        self.sync = sync
        #: Per-storage override for the dictionary page codec; None
        #: defers to REPRO_ENCODE at page-construction time.
        self.encode = encode
        self.checkpoint_bytes = (checkpoint_bytes
                                 if checkpoint_bytes is not None
                                 else configured_checkpoint_bytes())
        manifest = self._read_manifest()
        if manifest is not None:
            # The file format is fixed at creation time; an existing
            # manifest overrides any configured page size.
            page_size = manifest["page_size"]
        self.page_size = page_size or configured_page_size()
        capacity = (buffer_pages if buffer_pages is not None
                    else configured_buffer_pages())
        self.pager = Pager(os.path.join(self.path, _DATA), self.page_size,
                           capacity, _decode_node, readahead=readahead)
        self.wal = walmod.WriteAheadLog(os.path.join(self.path, _WAL),
                                        sync=sync,
                                        group_commit=group_commit)
        self.epoch = 0
        self.manifest_epoch = 0
        self.next_page_id = 0
        self.manifest_pages: set[int] = set()
        #: Reusable now: never referenced by the current manifest.
        self._free_now: list[int] = []
        #: Referenced by the current manifest; reusable only after the
        #: *next* checkpoint stops referencing them.
        self._retired: list[int] = []
        #: Per-page zone maps (heap min/max/null, B-tree leaf bounds),
        #: maintained at write time, persisted in the manifest.
        self.zones: dict[int, list] = {}
        #: Pages skipped by zone-map pruning (scans + index range scans).
        self.pages_pruned = 0
        self.checkpoints = 0
        #: Compaction work: checkpoint passes that moved pages, and the
        #: total number of page relocations.
        self.compactions = 0
        self.pages_moved = 0
        self.replaying = False
        self._manifest_cache = manifest

    # -- page allocation ------------------------------------------------

    def allocate_page(self) -> int:
        if self._free_now:
            return self._free_now.pop()
        page_id = self.next_page_id
        self.next_page_id += 1
        return page_id

    def free_page(self, page_id: int) -> None:
        self.pager.discard(page_id)
        self.zones.pop(page_id, None)
        if page_id in self.manifest_pages:
            self._retired.append(page_id)
        else:
            self._free_now.append(page_id)

    def page_shadowed(self, page_id: int) -> bool:
        """Whether the current manifest references *page_id* (→ COW)."""
        return page_id in self.manifest_pages

    # -- WAL logging (called from Table/Catalog mutation paths) ---------

    def _commit(self, payloads: list[bytes]) -> None:
        if self.replaying or self.dead:
            return
        if self.readonly:
            raise StorageError("storage is read-only (forked worker)")
        self.epoch += 1
        self.wal.commit(payloads, self.epoch)

    def log_create_table(self, name: str, schema) -> None:
        self._commit([walmod.encode_create_table(
            name, [(column.name, column.sql_type.value)
                   for column in schema])])

    def log_drop_table(self, name: str) -> None:
        self._commit([walmod.encode_drop_table(name)])

    def log_create_index(self, table: str, column: str,
                         index_name: str) -> None:
        self._commit([walmod.encode_create_index(table, column,
                                                 index_name)])

    def log_append(self, table: str, rows: list[tuple]) -> None:
        self._commit([walmod.encode_rows_op(walmod.OP_APPEND, table,
                                            rows)])

    def log_replace(self, table: str, rows: list[tuple]) -> None:
        self._commit([walmod.encode_rows_op(walmod.OP_REPLACE, table,
                                            rows)])

    def mutation_complete(self) -> None:
        """End-of-mutation hook: checkpoint once the WAL is large enough.

        Only ever called *after* a table finished updating both rows and
        indexes, so a checkpoint can never capture a half-applied batch.
        """
        if self.replaying or self.dead or self.readonly:
            return
        if self.wal.size >= self.checkpoint_bytes:
            self.checkpoint()

    # -- checkpoint -----------------------------------------------------

    def checkpoint(self) -> None:
        """Make the current state the durable baseline, truncate the WAL.

        A checkpoint also runs the online compaction pass: tail pages are
        relocated into free slots so the trailing run of free pages can
        be truncated off ``data.pages``. Move targets come only from
        ``_free_now`` — retired pages are still referenced by the current
        manifest (WAL replay may read them), so they become candidates
        one checkpoint later. The relocated copies land on pages no
        recovery path reads, which keeps a crash at ``compaction-move``
        exactly as recoverable as one at ``checkpoint-before-manifest``.
        """
        if self.dead or self.readonly or self.catalog is None \
                or self.pager is None or self.pager.closed:
            return
        self.pager.flush_all(sync=self.sync)
        faults.crash_point("checkpoint-before-manifest")
        moves, free_after, next_after = self._plan_compaction()
        if moves:
            self._apply_moves(moves)
            self.pager.flush_all(sync=self.sync)
            faults.crash_point("compaction-move")
            self.compactions += 1
            self.pages_moved += len(moves)
        manifest = self._build_manifest(free_after, next_after)
        self._write_manifest(manifest)
        faults.crash_point("checkpoint-after-manifest")
        self.wal.truncate()
        if next_after < self.next_page_id:
            self.pager.truncate(next_after)
        self.next_page_id = next_after
        self.manifest_epoch = self.epoch
        self.manifest_pages = set(self._live_pages())
        self._free_now = free_after
        self._retired = []
        self.checkpoints += 1

    def _plan_compaction(self) -> tuple[list[tuple[int, int]],
                                        list[int], int]:
        """``(moves, free_after, next_after)`` for this checkpoint.

        Pairs the highest live page ids with the lowest ``_free_now``
        holes (only while the hole is below the mover), then trims the
        trailing run of free ids off the end of the address space.
        ``free_after`` is the post-move free list (consumed holes out,
        vacated originals and retirees in, tail trimmed); ``next_after``
        is the new page count for ``data.pages``.
        """
        free_set = {*self._free_now, *self._retired}
        targets = sorted(self._free_now)
        movers = sorted(self._live_pages(), reverse=True)
        moves: list[tuple[int, int]] = []
        cursor = 0
        for mover in movers:
            if cursor >= len(targets) or targets[cursor] >= mover:
                break
            moves.append((mover, targets[cursor]))
            free_set.discard(targets[cursor])
            free_set.add(mover)
            cursor += 1
        next_after = self.next_page_id
        while next_after > 0 and (next_after - 1) in free_set:
            free_set.discard(next_after - 1)
            next_after -= 1
        return moves, sorted(free_set), next_after

    def _apply_moves(self, moves: list[tuple[int, int]]) -> None:
        """Relocate pages per *moves* and rewrite every reference."""
        assert self.catalog is not None
        mapping = dict(moves)
        pager = self.pager
        for old_id, new_id in moves:
            node = pager.fetch(old_id)
            pager.discard(old_id)
            pager.adopt(new_id, node)
            zone = self.zones.pop(old_id, None)
            if zone is not None:
                self.zones[new_id] = zone
        for table in self.catalog:
            store = table.rows
            if isinstance(store, DiskRowStore):
                store.page_ids = [mapping.get(page_id, page_id)
                                  for page_id in store.page_ids]
            for index in table.indexes.values():
                if isinstance(index, BTreeBackedIndex):
                    self._remap_tree(index.tree, mapping)

    def _remap_tree(self, tree: DiskBTree,
                    mapping: dict[int, int]) -> None:
        tree.pages = {mapping.get(page_id, page_id)
                      for page_id in tree.pages}
        if tree.root is None:
            return
        tree.root = mapping.get(tree.root, tree.root)
        self._remap_children(tree.root, mapping)

    def _remap_children(self, page_id: int,
                        mapping: dict[int, int]) -> None:
        node = self.pager.fetch(page_id)
        if not isinstance(node, InnerNode):
            return
        changed = False
        for slot, child in enumerate(node.children):
            new_id = mapping.get(child, child)
            if new_id != child:
                node.children[slot] = new_id
                changed = True
        if changed:
            self.pager.mark_dirty(page_id)
        for child in node.children:
            self._remap_children(child, mapping)

    def _live_pages(self) -> Iterator[int]:
        assert self.catalog is not None
        for table in self.catalog:
            store = table.rows
            if isinstance(store, DiskRowStore):
                yield from store.page_ids
            for index in table.indexes.values():
                if isinstance(index, BTreeBackedIndex):
                    yield from index.tree.pages

    def _build_manifest(self, free: list[int] | None = None,
                        next_page_id: int | None = None) -> dict:
        assert self.catalog is not None
        tables: dict = {}
        for table in self.catalog:
            store = table.rows
            if not isinstance(store, DiskRowStore):
                raise StorageError(
                    f"table {table.name!r} is not disk-backed")
            indexes: dict = {}
            for name, index in table.indexes.items():
                if not isinstance(index, BTreeBackedIndex):
                    continue
                tree = index.tree
                indexes[name] = {
                    "column": index.column,
                    "root": tree.root,
                    "count": tree.entry_count,
                    "seq": tree.next_seq,
                    "pages": sorted(tree.pages),
                }
            tables[table.name] = {
                "schema": [[column.name, column.sql_type.value]
                           for column in table.schema],
                "heap_pages": store.manifest_pages(),
                "indexes": indexes,
            }
        if free is None:
            free = sorted({*self._free_now, *self._retired})
        return {
            "epoch": self.epoch,
            "page_size": self.page_size,
            "next_page_id": (self.next_page_id if next_page_id is None
                             else next_page_id),
            "free_pages": free,
            "tables": tables,
            # Zone values are JSON-safe by construction (unsummarizable
            # bounds are stored as null, see zones._summarizable).
            "zones": {str(page_id): zone
                      for page_id, zone in self.zones.items()},
        }

    def _write_manifest(self, manifest: dict) -> None:
        final = os.path.join(self.path, _MANIFEST)
        tmp = final + ".tmp"
        fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
        try:
            os.write(fd, json.dumps(manifest).encode("utf-8"))
            if self.sync:
                os.fsync(fd)
        finally:
            os.close(fd)
        os.replace(tmp, final)
        if self.sync:
            dir_fd = os.open(self.path, os.O_RDONLY)
            try:
                os.fsync(dir_fd)
            finally:
                os.close(dir_fd)

    def _read_manifest(self) -> dict | None:
        final = os.path.join(self.path, _MANIFEST)
        if not os.path.exists(final):
            return None
        with open(final, "r", encoding="utf-8") as handle:
            return json.load(handle)

    # -- open / recovery ------------------------------------------------

    def open(self, catalog: "Catalog") -> int:
        """Attach checkpoint state and replay the WAL into *catalog*.

        Returns the number of replayed transactions (0 on a fresh or
        cleanly closed database).
        """
        self.catalog = catalog
        manifest = self._manifest_cache
        self._manifest_cache = None
        if manifest is not None:
            self._attach_manifest(manifest, catalog)
        replayed = self._replay_wal()
        if replayed:
            # Fold the replayed tail into a fresh checkpoint so a second
            # crash cannot have to replay on top of replay.
            self.checkpoint()
        return replayed

    def _attach_manifest(self, manifest: dict,
                         catalog: "Catalog") -> None:
        from repro.minidb.schema import Column, TableSchema
        from repro.minidb.table import Table
        from repro.minidb.types import SqlType

        self.epoch = manifest["epoch"]
        self.manifest_epoch = manifest["epoch"]
        self.next_page_id = manifest["next_page_id"]
        self._free_now = list(manifest["free_pages"])
        self._retired = []
        self.zones = {int(page_id): zone
                      for page_id, zone in
                      manifest.get("zones", {}).items()}
        live: set[int] = set()
        for name, entry in manifest["tables"].items():
            schema = TableSchema(
                Column(column, SqlType(type_value))
                for column, type_value in entry["schema"])
            table = Table(name, schema, storage=self)
            table.rows = DiskRowStore(
                self, name,
                [(page_id, count)
                 for page_id, count in entry["heap_pages"]])
            live.update(table.rows.page_ids)
            for index_name, spec in entry["indexes"].items():
                tree = DiskBTree(self, root=spec["root"],
                                 entry_count=spec["count"],
                                 next_seq=spec["seq"],
                                 pages=spec["pages"])
                table.indexes[index_name] = BTreeBackedIndex(
                    index_name, spec["column"], tree)
                live.update(tree.pages)
            catalog.attach(table)
        self.manifest_pages = live

    def _replay_wal(self) -> int:
        assert self.catalog is not None
        replayed = 0
        self.replaying = True
        try:
            for epoch, ops in self.wal.committed_transactions():
                if epoch <= self.manifest_epoch:
                    continue  # already folded into the checkpoint
                for op in ops:
                    self._apply(op)
                self.epoch = max(self.epoch, epoch)
                replayed += 1
        finally:
            self.replaying = False
        return replayed

    def _apply(self, record: walmod.WalRecord) -> None:
        from repro.minidb.schema import Column, TableSchema
        from repro.minidb.types import SqlType

        catalog = self.catalog
        assert catalog is not None
        if record.op == walmod.OP_CREATE_TABLE:
            catalog.create_table(record.table, TableSchema(
                Column(column, SqlType(type_value))
                for column, type_value in record.schema_pairs))
        elif record.op == walmod.OP_DROP_TABLE:
            catalog.drop_table(record.table)
        elif record.op == walmod.OP_CREATE_INDEX:
            catalog.table(record.table).create_index(
                record.column, record.index_name)
        elif record.op == walmod.OP_APPEND:
            catalog.table(record.table).append_rows(record.rows)
        elif record.op == walmod.OP_REPLACE:
            catalog.table(record.table).replace_rows(record.rows,
                                                     coerced=True)
        else:
            raise StorageError(f"unreplayable WAL op {record.op}")

    # -- lifecycle ------------------------------------------------------

    def flush_for_fork(self) -> None:
        """Write dirty pages so forked workers re-read complete data.

        No fsync: workers share the OS page cache with the parent, so
        durability is not the point — visibility through a fresh file
        descriptor is.
        """
        if not (self.dead or self.readonly or self.pager.closed):
            self.pager.flush_all(sync=False)

    def reopen_worker(self) -> None:
        """Forked worker: own read-only descriptor, empty pool."""
        self.pager.reopen_readonly()
        self.readonly = True

    def simulate_crash(self) -> None:
        """Abandon all state exactly as a power cut would leave it.

        The files keep whatever the protocol managed to write; nothing
        is flushed, synced, or checkpointed on the way out — marking the
        storage dead stops ``Database.__del__`` from tidying up and
        accidentally "un-crashing" the scenario.
        """
        self.dead = True
        self.pager.abandon()
        self.wal.abandon()

    def close(self) -> None:
        """Checkpoint and release; deletes the directory if temp-owned.

        Safe on any state: a partially constructed instance (pager or
        WAL never created), a never-opened one (no catalog attached —
        checkpointing is skipped, nothing to persist), a crashed one,
        and repeated calls are all no-ops for the missing pieces.
        """
        pager, wal = self.pager, self.wal
        if self.dead or self.readonly or pager is None or pager.closed:
            if self.readonly and pager is not None:
                pager.close(sync=False)
                if wal is not None:
                    wal.close()
            return
        self.checkpoint()
        pager.close(sync=self.sync)
        if wal is not None:
            wal.close()
        if self.owns_dir:
            shutil.rmtree(self.path, ignore_errors=True)

    @property
    def counters(self) -> dict[str, int]:
        """Storage work counters (pool, WAL, checkpoints) for metrics."""
        pager = self.pager
        return {
            "pages_read": pager.pages_read,
            "pages_written": pager.pages_written,
            "pages_evicted": pager.pages_evicted,
            "buffer_hits": pager.hits,
            "buffer_misses": pager.misses,
            "peak_resident": pager.peak_resident,
            "overflow_events": pager.overflow_events,
            "wal_bytes": self.wal.bytes_written,
            "wal_commits": self.wal.commits,
            "wal_syncs": self.wal.syncs,
            "group_syncs": self.wal.group_syncs,
            "checkpoints": self.checkpoints,
            "pages_pruned": self.pages_pruned,
            "pages_prefetched": pager.pages_prefetched,
            "prefetch_hits": pager.prefetch_hits,
            "prefetch_wasted": pager.prefetch_wasted,
            "compactions": self.compactions,
            "pages_moved": self.pages_moved,
        }
