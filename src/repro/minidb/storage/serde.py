"""Typed-value serialization for the on-disk storage engine.

Every stored value is encoded self-describing — a one-byte tag followed
by a tag-specific payload — so WAL records and page cells decode without
consulting the table schema. The encoding round-trips every Python value
minidb stores (see ``repro.minidb.types``) *exactly*:

=========  =============================================================
tag        payload
=========  =============================================================
NULL       (empty)
FALSE      (empty) — BOOLEAN False (distinct from INTEGER 0)
TRUE       (empty) — BOOLEAN True
INT        zigzag LEB128 varint (arbitrary precision, so huge Python
           ints — and TIMESTAMP/INTERVAL second counts — are exact)
FLOAT      8 bytes, big-endian IEEE-754 double (bit-exact, NaN included)
STR        LEB128 byte length + UTF-8 (surrogatepass, so any str)
=========  =============================================================

Rows are a LEB128 column count followed by the encoded values. The
format is deliberately byte-oriented and position-independent: a decoder
is handed ``(buffer, offset)`` and returns ``(value, next_offset)``, so
page cells and WAL payloads compose without copying.
"""

from __future__ import annotations

import struct
from typing import Any, Sequence

from repro.errors import StorageError

__all__ = [
    "decode_row",
    "decode_value",
    "encode_row",
    "encode_value",
    "encoded_length",
    "read_varint",
    "varint_length",
    "write_varint",
]

_TAG_NULL = 0
_TAG_FALSE = 1
_TAG_TRUE = 2
_TAG_INT = 3
_TAG_FLOAT = 4
_TAG_STR = 5

_DOUBLE = struct.Struct(">d")


def write_varint(out: bytearray, value: int) -> None:
    """Append an unsigned LEB128 varint to *out*."""
    if value < 0:
        raise StorageError(f"varint cannot encode negative value {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def read_varint(buffer: bytes, offset: int) -> tuple[int, int]:
    """Read an unsigned LEB128 varint; returns ``(value, next_offset)``."""
    value = 0
    shift = 0
    while True:
        try:
            byte = buffer[offset]
        except IndexError:
            raise StorageError("truncated varint") from None
        offset += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, offset
        shift += 7


def encode_value(out: bytearray, value: Any) -> None:
    """Append one tagged value to *out*.

    ``bool`` is checked before ``int`` (it is a subclass) so BOOLEAN
    values survive the round trip as ``bool``, not ``int``.
    """
    if value is None:
        out.append(_TAG_NULL)
    elif value is False:
        out.append(_TAG_FALSE)
    elif value is True:
        out.append(_TAG_TRUE)
    elif isinstance(value, int):
        out.append(_TAG_INT)
        write_varint(out, (value << 1) if value >= 0
                     else (((-value) << 1) - 1))
    elif isinstance(value, float):
        out.append(_TAG_FLOAT)
        out.extend(_DOUBLE.pack(value))
    elif isinstance(value, str):
        data = value.encode("utf-8", "surrogatepass")
        out.append(_TAG_STR)
        write_varint(out, len(data))
        out.extend(data)
    else:
        raise StorageError(
            f"cannot serialize value {value!r} of type "
            f"{type(value).__name__}")


def decode_value(buffer: bytes, offset: int) -> tuple[Any, int]:
    """Decode one tagged value; returns ``(value, next_offset)``."""
    try:
        tag = buffer[offset]
    except IndexError:
        raise StorageError("truncated value (missing tag)") from None
    offset += 1
    if tag == _TAG_NULL:
        return None, offset
    if tag == _TAG_FALSE:
        return False, offset
    if tag == _TAG_TRUE:
        return True, offset
    if tag == _TAG_INT:
        raw, offset = read_varint(buffer, offset)
        return (raw >> 1) if not raw & 1 else -((raw + 1) >> 1), offset
    if tag == _TAG_FLOAT:
        end = offset + 8
        if end > len(buffer):
            raise StorageError("truncated float payload")
        return _DOUBLE.unpack(buffer[offset:end])[0], end
    if tag == _TAG_STR:
        length, offset = read_varint(buffer, offset)
        end = offset + length
        if end > len(buffer):
            raise StorageError("truncated string payload")
        return buffer[offset:end].decode("utf-8", "surrogatepass"), end
    raise StorageError(f"unknown value tag {tag}")


def encoded_length(value: Any) -> int:
    """Byte length :func:`encode_value` would produce for *value*."""
    scratch = bytearray()
    encode_value(scratch, value)
    return len(scratch)


def varint_length(value: int) -> int:
    """Byte length :func:`write_varint` would produce for *value*."""
    length = 1
    while value >= 0x80:
        value >>= 7
        length += 1
    return length


def encode_row(row: Sequence[Any]) -> bytes:
    """Encode a row tuple as a self-contained cell."""
    out = bytearray()
    write_varint(out, len(row))
    for value in row:
        encode_value(out, value)
    return bytes(out)


def decode_row(cell: bytes) -> tuple:
    """Decode a cell produced by :func:`encode_row`."""
    count, offset = read_varint(cell, 0)
    values = []
    for _ in range(count):
        value, offset = decode_value(cell, offset)
        values.append(value)
    return tuple(values)
