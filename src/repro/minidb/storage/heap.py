"""The heap: a table's rows as a chain of slotted pages.

:class:`DiskRowStore` is the disk-mode replacement for ``Table.rows``.
It is deliberately *list-shaped* — ``len()``, integer / slice / strided
indexing, iteration, ``append``/``extend`` and a ``replace`` — so every
read-only consumer in the engine (columnar transposition, statistics,
shard morsel slicing, cache sizing via ``rows[::step]``) works unchanged
against either backend. Only :class:`~repro.minidb.table.Table`'s
mutation paths know the difference.

Mutations write ahead first: ``extend`` / ``replace`` log one WAL
transaction for the whole batch, then apply it to pages. The last heap
page is mutated copy-on-write — if the current manifest references it,
the first append after a checkpoint clones it to a fresh page id, so a
torn flush can never damage checkpointed state.

Reads go through the buffer pool one page at a time; iterating a table
ten times the pool size keeps peak residency at the pool bound.

The module also hosts the storage fault for the differential fuzzer:
with ``REPRO_FUZZ_INJECT_BUG=storage``, decoding a heap page silently
adds 1 to the first integer of its last row — a classic "corruption
below the cache" bug that only shows up once a page has been evicted and
re-read, which is exactly what the ``disk`` oracle label's tiny buffer
pool forces.
"""

from __future__ import annotations

import os
from typing import Any, Iterable, Iterator, Sequence

from repro.errors import StorageError
from repro.minidb.storage.page import KIND_HEAP, SLOT_SIZE, cell_capacity
from repro.minidb.storage.serde import decode_row, encode_row
from repro.minidb.storage.zones import heap_zone, page_qualifies

__all__ = ["DiskRowStore", "HeapPageNode"]

_FAULT_ENV = "REPRO_FUZZ_INJECT_BUG"


def _storage_fault_active() -> bool:
    return os.environ.get(_FAULT_ENV, "") == "storage"


class HeapPageNode:
    """Decoded heap page: a run of row tuples plus its encoded size."""

    __slots__ = ("rows", "nbytes")

    def __init__(self, rows: list[tuple]) -> None:
        self.rows = rows
        self.nbytes = sum(len(encode_row(row)) + SLOT_SIZE for row in rows)

    def encode_cells(self) -> tuple[int, list[bytes]]:
        return KIND_HEAP, [encode_row(row) for row in self.rows]

    @classmethod
    def from_cells(cls, cells: list[bytes]) -> "HeapPageNode":
        rows = [decode_row(cell) for cell in cells]
        if rows and _storage_fault_active():
            # Injected bug: perturb the first integer of the page's last
            # row on decode. Invisible while the page stays cached;
            # wrong the moment it is evicted and re-read.
            last = list(rows[-1])
            for i, value in enumerate(last):
                if isinstance(value, int) and not isinstance(value, bool):
                    last[i] = value + 1
                    rows[-1] = tuple(last)
                    break
        return cls(rows)


class DiskRowStore:
    """A table's row sequence, stored page-at-a-time behind the pool."""

    def __init__(self, storage: Any, table_name: str,
                 pages: Iterable[tuple[int, int]] = ()) -> None:
        self.storage = storage
        self.table_name = table_name
        #: Parallel lists: heap page ids and the row count on each.
        self.page_ids: list[int] = []
        self.page_counts: list[int] = []
        #: ``starts[i]`` = global index of the first row on page i.
        self._starts: list[int] = []
        self.total = 0
        for page_id, count in pages:
            self.page_ids.append(page_id)
            self.page_counts.append(count)
            self._starts.append(self.total)
            self.total += count

    # -- sequence protocol ----------------------------------------------

    def __len__(self) -> int:
        return self.total

    def __eq__(self, other: object) -> bool:
        # list-parity: a disk store equals any sequence with the same
        # rows in the same order (memory mode compares plain lists).
        if isinstance(other, (list, tuple, DiskRowStore)):
            return len(self) == len(other) and list(self) == list(other)
        return NotImplemented

    def __iter__(self) -> Iterator[tuple]:
        for page_id in self.page_ids:
            # Holding the rows list keeps it alive even if the frame is
            # evicted while the caller is still consuming this page.
            yield from self.storage.pager.fetch(page_id).rows

    def __getitem__(self, item):
        if isinstance(item, slice):
            start, stop, step = item.indices(self.total)
            if step == 1:
                return self._slice_contiguous(start, stop)
            return [self._row_at(i) for i in range(start, stop, step)]
        index = item
        if index < 0:
            index += self.total
        if not 0 <= index < self.total:
            raise IndexError("row index out of range")
        return self._row_at(index)

    def _page_of(self, index: int) -> int:
        # rightmost page whose start <= index
        lo, hi = 0, len(self._starts) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self._starts[mid] <= index:
                lo = mid
            else:
                hi = mid - 1
        return lo

    def _row_at(self, index: int) -> tuple:
        page = self._page_of(index)
        node = self.storage.pager.fetch(self.page_ids[page])
        return node.rows[index - self._starts[page]]

    def _slice_contiguous(self, start: int, stop: int) -> list[tuple]:
        if start >= stop:
            return []
        out: list[tuple] = []
        page = self._page_of(start)
        cursor = start
        while cursor < stop and page < len(self.page_ids):
            node = self.storage.pager.fetch(self.page_ids[page])
            base = self._starts[page]
            lo = cursor - base
            hi = min(stop - base, len(node.rows))
            out.extend(node.rows[lo:hi])
            cursor = base + hi
            page += 1
        return out

    # -- zone-pruned scans ----------------------------------------------

    def pruned_pages(self, specs) -> Iterator[tuple[int, list[tuple]]]:
        """Yield ``(start_index, page_rows)`` for pages surviving *specs*.

        *specs* are ``(column position, op, literal)`` conjuncts (see
        :mod:`~repro.minidb.storage.zones`). Pages whose zone map proves
        no row can satisfy every conjunct are skipped without being
        fetched; pages without a zone always qualify. The caller's
        filter still runs above, so skipping is purely an I/O saving.
        """
        storage = self.storage
        zones = getattr(storage, "zones", None)
        for position, page_id in enumerate(self.page_ids):
            zone = None if zones is None else zones.get(page_id)
            if zone is not None and not page_qualifies(zone, specs):
                storage.pages_pruned += 1
                continue
            yield self._starts[position], storage.pager.fetch(page_id).rows

    # -- mutation -------------------------------------------------------

    def _update_zone(self, page_id: int, node: HeapPageNode) -> None:
        zones = getattr(self.storage, "zones", None)
        if zones is None:
            return
        if node.rows:
            zones[page_id] = heap_zone(node.rows, len(node.rows[0]))
        else:
            zones.pop(page_id, None)

    def append(self, row: tuple) -> None:
        self.extend([row])

    def extend(self, rows: Sequence[tuple]) -> None:
        """Log one WAL transaction for the batch, then fill pages."""
        rows = list(rows)
        if not rows:
            return
        self.storage.log_append(self.table_name, rows)
        self._apply_append(rows)

    def replace(self, rows: Sequence[tuple]) -> None:
        """Log a whole-table rewrite, then rebuild the page chain."""
        rows = list(rows)
        self.storage.log_replace(self.table_name, rows)
        self._apply_replace(rows)

    def _apply_append(self, rows: list[tuple]) -> None:
        pager = self.storage.pager
        capacity = cell_capacity(pager.page_size)
        cursor = 0
        # Top up the trailing page first (copy-on-write if the manifest
        # still references it), then spill into fresh pages.
        if self.page_ids:
            page_id = self.page_ids[-1]
            node = pager.fetch(page_id)
            if node.nbytes < capacity:
                page_id, node = self._shadow_last(page_id, node)
                pager.pin(page_id)
                try:
                    cursor = self._fill(node, rows, cursor, capacity)
                finally:
                    pager.unpin(page_id)
                added = len(node.rows) - self.page_counts[-1]
                self.page_counts[-1] += added
                self.total += added
                self._update_zone(page_id, node)
        while cursor < len(rows):
            node = HeapPageNode([])
            before = cursor
            cursor = self._fill(node, rows, cursor, capacity)
            if cursor == before:
                raise StorageError(
                    f"row of {len(encode_row(rows[cursor]))} bytes does "
                    f"not fit a {pager.page_size}-byte page")
            page_id = self.storage.allocate_page()
            self._starts.append(self.total)
            self.page_ids.append(page_id)
            self.page_counts.append(len(node.rows))
            self.total += len(node.rows)
            pager.adopt(page_id, node)
            self._update_zone(page_id, node)

    @staticmethod
    def _fill(node: HeapPageNode, rows: list[tuple], cursor: int,
              capacity: int) -> int:
        while cursor < len(rows):
            size = len(encode_row(rows[cursor])) + SLOT_SIZE
            if node.nbytes + size > capacity:
                break  # full (or a single row larger than a page)
            node.rows.append(rows[cursor])
            node.nbytes += size
            cursor += 1
        return cursor

    def _shadow_last(self, page_id: int,
                     node: HeapPageNode) -> tuple[int, HeapPageNode]:
        if not self.storage.page_shadowed(page_id):
            self.storage.pager.mark_dirty(page_id)
            return page_id, node
        clone = HeapPageNode(list(node.rows))
        new_id = self.storage.allocate_page()
        self.storage.pager.adopt(new_id, clone)
        self.storage.free_page(page_id)
        self.page_ids[-1] = new_id
        return new_id, clone

    def _apply_replace(self, rows: list[tuple]) -> None:
        self.free_all()
        self._apply_append(rows)

    def free_all(self) -> None:
        """Release every heap page (table drop or whole-table rewrite)."""
        for page_id in self.page_ids:
            self.storage.free_page(page_id)
        self.page_ids = []
        self.page_counts = []
        self._starts = []
        self.total = 0

    def manifest_pages(self) -> list[list[int]]:
        """``[[page_id, row_count], ...]`` for the checkpoint manifest."""
        return [[page_id, count]
                for page_id, count in zip(self.page_ids, self.page_counts)]
