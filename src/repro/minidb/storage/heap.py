"""The heap: a table's rows as a chain of slotted pages.

:class:`DiskRowStore` is the disk-mode replacement for ``Table.rows``.
It is deliberately *list-shaped* — ``len()``, integer / slice / strided
indexing, iteration, ``append``/``extend`` and a ``replace`` — so every
read-only consumer in the engine (columnar transposition, statistics,
shard morsel slicing, cache sizing via ``rows[::step]``) works unchanged
against either backend. Only :class:`~repro.minidb.table.Table`'s
mutation paths know the difference.

Mutations write ahead first: ``extend`` / ``replace`` log one WAL
transaction for the whole batch, then apply it to pages. The last heap
page is mutated copy-on-write — if the current manifest references it,
the first append after a checkpoint clones it to a fresh page id, so a
torn flush can never damage checkpointed state.

Heap pages come in two wire formats. ``KIND_HEAP`` stores one serialized
row per cell. When encoding is on (``REPRO_ENCODE``, see
:mod:`repro.minidb.vector`) a page tracks a second, column-major layout
as rows are added: per column, a dictionary of distinct values plus one
varint code per row. At flush time :meth:`HeapPageNode.encode_cells`
emits whichever layout is smaller — ``KIND_HEAP_DICT`` pages hold a
header cell (row/column counts + per-column layout flags) followed by
one cell per column, each independently dictionary-coded or plain.
Both layouts decode to the identical row tuples; the choice is purely a
size optimization, and ``nbytes`` (the fill limit) is the *minimum* of
the two layouts, so low-cardinality tables pack more rows per page.

Reads go through the buffer pool one page at a time; iterating a table
ten times the pool size keeps peak residency at the pool bound.

The module also hosts the storage fault for the differential fuzzer:
with ``REPRO_FUZZ_INJECT_BUG=storage``, decoding a heap page silently
adds 1 to the first integer of its last row — a classic "corruption
below the cache" bug that only shows up once a page has been evicted and
re-read, which is exactly what the ``disk`` oracle label's tiny buffer
pool forces.
"""

from __future__ import annotations

import os
from typing import Any, Iterable, Iterator, Sequence

from repro.errors import StorageError
from repro.minidb.storage.page import (
    KIND_HEAP,
    KIND_HEAP_DICT,
    SLOT_SIZE,
    cell_capacity,
)
from repro.minidb.storage.serde import (
    decode_row,
    decode_value,
    encode_row,
    encode_value,
    read_varint,
    varint_length,
    write_varint,
)
from repro.minidb.storage.zones import heap_zone, page_qualifies
from repro.minidb.vector import encode_enabled, record_bytes_saved

__all__ = ["DiskRowStore", "HeapPageNode"]

_FAULT_ENV = "REPRO_FUZZ_INJECT_BUG"

#: Capacity bound used when replaying already-placed rows in
#: ``HeapPageNode.__init__`` — placement was decided by the writer.
_NO_LIMIT = float("inf")


def _storage_fault_active() -> bool:
    return os.environ.get(_FAULT_ENV, "") == "storage"


def _apply_storage_fault(rows: list[tuple]) -> None:
    """Injected bug: perturb the first integer of the page's last row
    on decode. Invisible while the page stays cached; wrong the moment
    it is evicted and re-read."""
    last = list(rows[-1])
    for i, value in enumerate(last):
        if isinstance(value, int) and not isinstance(value, bool):
            last[i] = value + 1
            rows[-1] = tuple(last)
            break


class _ColumnDict:
    """Incremental dictionary state for one column of a heap page.

    Tracks both layouts' byte costs as rows arrive so the page can
    answer "would one more row fit?" without re-encoding anything:
    ``plain`` is the tagged-value bytes of every row, and the dictionary
    layout costs ``varint(ndv) + value_bytes + code_bytes``.
    """

    __slots__ = ("index", "values", "codes", "value_bytes", "code_bytes",
                 "plain")

    def __init__(self) -> None:
        #: tagged-bytes -> code. Keying on the exact encoding keeps
        #: ``True``/``1``/``1.0`` and ``0.0``/``-0.0`` distinct, so a
        #: dictionary round trip is byte-identical by construction.
        self.index: dict[bytes, int] = {}
        self.values: list[Any] = []
        self.codes: list[int] = []
        self.value_bytes = 0
        self.code_bytes = 0
        self.plain = 0

    def dict_size(self) -> int:
        return (varint_length(len(self.values)) + self.value_bytes
                + self.code_bytes)


class HeapPageNode:
    """Decoded heap page: a run of row tuples plus its encoded size.

    When *encode* resolves true the node maintains per-column dictionary
    state alongside the rows, and ``nbytes`` is the smaller of the
    row-major and column-major encodings (the layout actually emitted by
    :meth:`encode_cells`). The decision is frozen at construction so a
    knob flip mid-run can never make an already-filled page overflow.
    """

    __slots__ = ("rows", "nbytes", "encode", "_plain_bytes", "_cols")

    def __init__(self, rows: list[tuple],
                 encode: bool | None = None) -> None:
        self.rows: list[tuple] = []
        self.encode = encode_enabled() if encode is None else bool(encode)
        self.nbytes = 0
        self._plain_bytes = 0
        self._cols: list[_ColumnDict] | None = None
        for row in rows:
            self.try_add(row, _NO_LIMIT)

    def try_add(self, row: tuple, capacity: float) -> bool:
        """Add *row* if the page still fits in *capacity* bytes.

        Simulates both layouts' sizes first and commits only on success,
        so a rejected row leaves the dictionary state untouched.
        """
        plain = self._plain_bytes + len(encode_row(row)) + SLOT_SIZE
        if not self.encode:
            if plain > capacity:
                return False
            self.rows.append(row)
            self._plain_bytes = plain
            self.nbytes = plain
            return True
        cols = self._cols
        if cols is None:
            cols = [_ColumnDict() for _ in row]
        # header cell: varint(nrows) + varint(ncols) + one flag byte
        # per column.
        dict_total = (varint_length(len(self.rows) + 1)
                      + varint_length(len(cols)) + len(cols) + SLOT_SIZE)
        staged = []
        for col, value in zip(cols, row):
            scratch = bytearray()
            encode_value(scratch, value)
            key = bytes(scratch)
            code = col.index.get(key)
            fresh = code is None
            if fresh:
                code = len(col.values)
                value_bytes = col.value_bytes + len(key)
            else:
                value_bytes = col.value_bytes
            code_bytes = col.code_bytes + varint_length(code)
            col_plain = col.plain + len(key)
            ndv = len(col.values) + (1 if fresh else 0)
            dict_size = varint_length(ndv) + value_bytes + code_bytes
            dict_total += min(col_plain, dict_size) + SLOT_SIZE
            staged.append((col, value, key, code, fresh, value_bytes,
                           code_bytes, col_plain))
        nbytes = min(plain, dict_total)
        if nbytes > capacity:
            return False
        for (col, value, key, code, fresh, value_bytes, code_bytes,
             col_plain) in staged:
            if fresh:
                col.index[key] = code
                col.values.append(value)
            col.codes.append(code)
            col.value_bytes = value_bytes
            col.code_bytes = code_bytes
            col.plain = col_plain
        self._cols = cols
        self.rows.append(row)
        self._plain_bytes = plain
        self.nbytes = nbytes
        return True

    def encode_cells(self) -> tuple[int, list[bytes]]:
        if (self.encode and self._cols is not None
                and self.nbytes < self._plain_bytes):
            record_bytes_saved(self._plain_bytes - self.nbytes)
            return KIND_HEAP_DICT, self._dict_cells()
        return KIND_HEAP, [encode_row(row) for row in self.rows]

    def _dict_cells(self) -> list[bytes]:
        cols = self._cols
        header = bytearray()
        write_varint(header, len(self.rows))
        write_varint(header, len(cols))
        cells = [b""]
        for position, col in enumerate(cols):
            if col.dict_size() < col.plain:
                header.append(1)
                cell = bytearray()
                write_varint(cell, len(col.values))
                for value in col.values:
                    encode_value(cell, value)
                for code in col.codes:
                    write_varint(cell, code)
            else:
                header.append(0)
                cell = bytearray()
                for row in self.rows:
                    encode_value(cell, row[position])
            cells.append(bytes(cell))
        cells[0] = bytes(header)
        return cells

    @classmethod
    def from_cells(cls, cells: list[bytes]) -> "HeapPageNode":
        rows = [decode_row(cell) for cell in cells]
        if rows and _storage_fault_active():
            _apply_storage_fault(rows)
        return cls(rows)

    @classmethod
    def from_dict_cells(cls, cells: list[bytes]) -> "HeapPageNode":
        """Decode a ``KIND_HEAP_DICT`` page back into row tuples.

        The node is rebuilt with ``encode=True`` regardless of the
        current knob: the page was sized under the column-major layout,
        and re-freezing that choice keeps a knob flip from overflowing
        it on the next top-up.
        """
        header = cells[0]
        nrows, offset = read_varint(header, 0)
        ncols, offset = read_varint(header, offset)
        flags = header[offset:offset + ncols]
        columns: list[list[Any]] = []
        for position in range(ncols):
            cell = cells[1 + position]
            out: list[Any] = []
            if flags[position]:
                ndv, at = read_varint(cell, 0)
                values: list[Any] = []
                for _ in range(ndv):
                    value, at = decode_value(cell, at)
                    values.append(value)
                for _ in range(nrows):
                    code, at = read_varint(cell, at)
                    out.append(values[code])
            else:
                at = 0
                for _ in range(nrows):
                    value, at = decode_value(cell, at)
                    out.append(value)
            columns.append(out)
        rows = [tuple(column[i] for column in columns)
                for i in range(nrows)]
        if rows and _storage_fault_active():
            _apply_storage_fault(rows)
        return cls(rows, encode=True)


class DiskRowStore:
    """A table's row sequence, stored page-at-a-time behind the pool."""

    def __init__(self, storage: Any, table_name: str,
                 pages: Iterable[tuple[int, int]] = ()) -> None:
        self.storage = storage
        self.table_name = table_name
        #: Parallel lists: heap page ids and the row count on each.
        self.page_ids: list[int] = []
        self.page_counts: list[int] = []
        #: ``starts[i]`` = global index of the first row on page i.
        self._starts: list[int] = []
        self.total = 0
        for page_id, count in pages:
            self.page_ids.append(page_id)
            self.page_counts.append(count)
            self._starts.append(self.total)
            self.total += count

    # -- sequence protocol ----------------------------------------------

    def __len__(self) -> int:
        return self.total

    def __eq__(self, other: object) -> bool:
        # list-parity: a disk store equals any sequence with the same
        # rows in the same order (memory mode compares plain lists).
        if isinstance(other, (list, tuple, DiskRowStore)):
            return len(self) == len(other) and list(self) == list(other)
        return NotImplemented

    def __iter__(self) -> Iterator[tuple]:
        for page_id in self.page_ids:
            # Holding the rows list keeps it alive even if the frame is
            # evicted while the caller is still consuming this page.
            yield from self.storage.pager.fetch(page_id).rows

    def __getitem__(self, item):
        if isinstance(item, slice):
            start, stop, step = item.indices(self.total)
            if step == 1:
                return self._slice_contiguous(start, stop)
            return [self._row_at(i) for i in range(start, stop, step)]
        index = item
        if index < 0:
            index += self.total
        if not 0 <= index < self.total:
            raise IndexError("row index out of range")
        return self._row_at(index)

    def _page_of(self, index: int) -> int:
        # rightmost page whose start <= index
        lo, hi = 0, len(self._starts) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self._starts[mid] <= index:
                lo = mid
            else:
                hi = mid - 1
        return lo

    def _row_at(self, index: int) -> tuple:
        page = self._page_of(index)
        node = self.storage.pager.fetch(self.page_ids[page])
        return node.rows[index - self._starts[page]]

    def _slice_contiguous(self, start: int, stop: int) -> list[tuple]:
        if start >= stop:
            return []
        out: list[tuple] = []
        page = self._page_of(start)
        cursor = start
        while cursor < stop and page < len(self.page_ids):
            node = self.storage.pager.fetch(self.page_ids[page])
            base = self._starts[page]
            lo = cursor - base
            hi = min(stop - base, len(node.rows))
            out.extend(node.rows[lo:hi])
            cursor = base + hi
            page += 1
        return out

    # -- zone-pruned scans ----------------------------------------------

    def pruned_pages(self, specs) -> Iterator[tuple[int, list[tuple]]]:
        """Yield ``(start_index, page_rows)`` for pages surviving *specs*.

        *specs* are ``(column position, op, literal)`` conjuncts (see
        :mod:`~repro.minidb.storage.zones`). Pages whose zone map proves
        no row can satisfy every conjunct are skipped without being
        fetched; pages without a zone always qualify. The caller's
        filter still runs above, so skipping is purely an I/O saving.
        """
        storage = self.storage
        zones = getattr(storage, "zones", None)
        for position, page_id in enumerate(self.page_ids):
            zone = None if zones is None else zones.get(page_id)
            if zone is not None and not page_qualifies(zone, specs):
                storage.pages_pruned += 1
                continue
            yield self._starts[position], storage.pager.fetch(page_id).rows

    # -- mutation -------------------------------------------------------

    def _update_zone(self, page_id: int, node: HeapPageNode) -> None:
        zones = getattr(self.storage, "zones", None)
        if zones is None:
            return
        if node.rows:
            zones[page_id] = heap_zone(node.rows, len(node.rows[0]))
        else:
            zones.pop(page_id, None)

    def append(self, row: tuple) -> None:
        self.extend([row])

    def extend(self, rows: Sequence[tuple]) -> None:
        """Log one WAL transaction for the batch, then fill pages."""
        rows = list(rows)
        if not rows:
            return
        self.storage.log_append(self.table_name, rows)
        self._apply_append(rows)

    def replace(self, rows: Sequence[tuple]) -> None:
        """Log a whole-table rewrite, then rebuild the page chain."""
        rows = list(rows)
        self.storage.log_replace(self.table_name, rows)
        self._apply_replace(rows)

    def _apply_append(self, rows: list[tuple]) -> None:
        pager = self.storage.pager
        capacity = cell_capacity(pager.page_size)
        cursor = 0
        # Top up the trailing page first (copy-on-write if the manifest
        # still references it), then spill into fresh pages.
        if self.page_ids:
            page_id = self.page_ids[-1]
            node = pager.fetch(page_id)
            if node.nbytes < capacity:
                page_id, node = self._shadow_last(page_id, node)
                pager.pin(page_id)
                try:
                    cursor = self._fill(node, rows, cursor, capacity)
                finally:
                    pager.unpin(page_id)
                added = len(node.rows) - self.page_counts[-1]
                self.page_counts[-1] += added
                self.total += added
                self._update_zone(page_id, node)
        while cursor < len(rows):
            node = HeapPageNode([], encode=self.storage.encode)
            before = cursor
            cursor = self._fill(node, rows, cursor, capacity)
            if cursor == before:
                raise StorageError(
                    f"row of {len(encode_row(rows[cursor]))} bytes does "
                    f"not fit a {pager.page_size}-byte page")
            page_id = self.storage.allocate_page()
            self._starts.append(self.total)
            self.page_ids.append(page_id)
            self.page_counts.append(len(node.rows))
            self.total += len(node.rows)
            pager.adopt(page_id, node)
            self._update_zone(page_id, node)

    @staticmethod
    def _fill(node: HeapPageNode, rows: list[tuple], cursor: int,
              capacity: int) -> int:
        while cursor < len(rows):
            if not node.try_add(rows[cursor], capacity):
                break  # full (or a single row larger than a page)
            cursor += 1
        return cursor

    def _shadow_last(self, page_id: int,
                     node: HeapPageNode) -> tuple[int, HeapPageNode]:
        if not self.storage.page_shadowed(page_id):
            self.storage.pager.mark_dirty(page_id)
            return page_id, node
        clone = HeapPageNode(list(node.rows), encode=node.encode)
        new_id = self.storage.allocate_page()
        self.storage.pager.adopt(new_id, clone)
        self.storage.free_page(page_id)
        self.page_ids[-1] = new_id
        return new_id, clone

    def _apply_replace(self, rows: list[tuple]) -> None:
        self.free_all()
        self._apply_append(rows)

    def free_all(self) -> None:
        """Release every heap page (table drop or whole-table rewrite)."""
        for page_id in self.page_ids:
            self.storage.free_page(page_id)
        self.page_ids = []
        self.page_counts = []
        self._starts = []
        self.total = 0

    def manifest_pages(self) -> list[list[int]]:
        """``[[page_id, row_count], ...]`` for the checkpoint manifest."""
        return [[page_id, count]
                for page_id, count in zip(self.page_ids, self.page_counts)]
