"""The pager: one data file of fixed-size pages behind a buffer pool.

The pool is the memory-bounded regime the paper ran its experiments in
(DB2 with a 160 MB bufferpool over ~1 GB of case reads): at most
``REPRO_BUFFER_PAGES`` pages are resident at once, whatever the table
size. Each resident page is a :class:`Frame` holding the *decoded* node
object (heap rows or B-tree node); encoding back to the slotted byte
format happens only when a dirty frame is flushed.

Eviction is LRU over unpinned frames. Pin counts protect frames across
multi-step structural operations (a B-tree split holds its whole root-to-
leaf path pinned); if every frame is pinned the pool admits a temporary
overflow frame rather than deadlocking, and counts the event so tests
can assert it never happens in practice.

Writes go through ``os.pwrite`` on a raw file descriptor — no user-space
buffering, so the bytes the crash-recovery rig sees on "power cut" are
exactly the bytes the protocol ordered written. Reads use ``os.pread``,
which leaves the descriptor offset untouched and therefore stays safe
when forked shard workers inherit the parent's descriptor for a moment
before re-opening their own (see ``reopen_readonly``).

The pager knows nothing about allocation or manifests: the storage
backend decides page ids; the pager just reads, caches, and writes them.
"""

from __future__ import annotations

import os
from typing import Any, Callable

from repro.errors import StorageError
from repro.minidb.storage import faults
from repro.minidb.storage.page import decode_page, encode_page

__all__ = ["DEFAULT_BUFFER_PAGES", "Frame", "Pager",
           "configured_buffer_pages", "configured_readahead"]

#: Default pool capacity: 256 pages (1 MiB at the default page size).
DEFAULT_BUFFER_PAGES = 256

#: Environment knob: pages to prefetch ahead of a sequential read run.
READAHEAD_ENV = "REPRO_READAHEAD"


def configured_buffer_pages() -> int:
    """Pool capacity from ``REPRO_BUFFER_PAGES`` (min 4)."""
    env = os.environ.get("REPRO_BUFFER_PAGES")
    if env is None:
        return DEFAULT_BUFFER_PAGES
    try:
        return max(4, int(env.strip()))
    except ValueError:
        return DEFAULT_BUFFER_PAGES


def configured_readahead() -> int:
    """Readahead window from ``REPRO_READAHEAD`` (0 = off, max 256)."""
    env = os.environ.get(READAHEAD_ENV)
    if env is None:
        return 0
    try:
        return min(256, max(0, int(env.strip())))
    except ValueError:
        return 0


class Frame:
    """One resident page: its decoded node, dirty flag, and pin count."""

    __slots__ = ("page_id", "node", "dirty", "pins")

    def __init__(self, page_id: int, node: Any, dirty: bool) -> None:
        self.page_id = page_id
        self.node = node
        self.dirty = dirty
        self.pins = 0


class Pager:
    """Fixed-size-page file I/O behind a bounded LRU buffer pool.

    *decode_node* maps ``(kind, cells)`` from a raw page to the decoded
    node object; node objects must offer ``encode_cells()`` returning
    ``(kind, cells)`` for the reverse direction.
    """

    def __init__(self, path: str, page_size: int, capacity: int,
                 decode_node: Callable[[int, list[bytes]], Any],
                 readonly: bool = False,
                 readahead: int | None = None) -> None:
        self.path = path
        self.page_size = page_size
        self.capacity = max(1, capacity)
        self._decode_node = decode_node
        self.readonly = readonly
        flags = os.O_RDONLY if readonly else os.O_RDWR | os.O_CREAT
        self._fd: int | None = os.open(path, flags, 0o644)
        # Insertion order doubles as LRU order: re-inserting on access
        # moves a frame to the back; eviction scans from the front.
        self._frames: dict[int, Frame] = {}
        #: Sequential readahead: raw page bytes prefetched in one batched
        #: pread, decoded lazily on the demand fetch that consumes them.
        #: Staged bytes never shadow writes — any write-path event on a
        #: staged id (adopt / flush / discard) invalidates its entry.
        self.readahead = (configured_readahead() if readahead is None
                          else min(256, max(0, readahead)))
        self._staged: dict[int, bytes] = {}
        self._last_fetch = -2
        self.pages_read = 0
        self.pages_written = 0
        self.pages_evicted = 0
        self.hits = 0
        self.misses = 0
        self.peak_resident = 0
        self.overflow_events = 0
        self.pages_prefetched = 0
        self.prefetch_hits = 0
        self.prefetch_wasted = 0

    # -- lifecycle ------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._fd is None

    def close(self, sync: bool = True) -> None:
        """Flush nothing, close the descriptor (callers flush first)."""
        if self._fd is None:
            return
        self.prefetch_wasted += len(self._staged)
        self._staged.clear()
        if sync and not self.readonly:
            os.fsync(self._fd)
        os.close(self._fd)
        self._fd = None

    def abandon(self) -> None:
        """Simulated power cut: drop every frame and close unsynced."""
        self._frames.clear()
        self._staged.clear()
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    def reopen_readonly(self) -> None:
        """Re-open the file read-only with an empty pool.

        Forked shard workers call this so they hold their own descriptor
        and re-read pages honestly instead of trusting fork-copied
        frames; the parent flushes dirty frames before forking.
        """
        if self._fd is not None:
            os.close(self._fd)
        self._fd = os.open(self.path, os.O_RDONLY)
        self.readonly = True
        self._frames.clear()
        self._staged.clear()

    def _require_fd(self) -> int:
        if self._fd is None:
            raise StorageError("pager is closed")
        return self._fd

    # -- page access ----------------------------------------------------

    def fetch(self, page_id: int) -> Any:
        """The decoded node for *page_id*, reading it if not resident.

        Misses at ``last fetched id + 1`` are treated as a sequential
        run: the demand read is followed by one batched ``pread`` of the
        next ``readahead`` pages into a raw-bytes staging area. Staged
        pages decode lazily when (and only when) a later fetch wants
        them — ``pages_read`` keeps counting *demand* disk reads only,
        so pruning assertions stay meaningful with readahead on.
        """
        frame = self._frames.get(page_id)
        if frame is not None:
            self.hits += 1
            self._touch(frame)
            self._last_fetch = page_id
            return frame.node
        self.misses += 1
        staged = self._staged.pop(page_id, None)
        if staged is not None:
            node = self._decode_node(*decode_page(staged))
            self.prefetch_hits += 1
            self._admit(Frame(page_id, node, dirty=False))
            self._last_fetch = page_id
            return node
        sequential = page_id == self._last_fetch + 1
        fd = self._require_fd()
        data = os.pread(fd, self.page_size, page_id * self.page_size)
        if len(data) != self.page_size:
            raise StorageError(
                f"short read of page {page_id} "
                f"({len(data)}/{self.page_size} bytes)")
        kind, cells = decode_page(data)
        node = self._decode_node(kind, cells)
        self.pages_read += 1
        self._admit(Frame(page_id, node, dirty=False))
        if sequential and self.readahead:
            self._stage_ahead(page_id)
        self._last_fetch = page_id
        return node

    def _stage_ahead(self, page_id: int) -> None:
        """Batched pread of the next ``readahead`` pages into staging."""
        fd = self._require_fd()
        first = page_id + 1
        span = min(self.readahead,
                   max(0, (os.fstat(fd).st_size // self.page_size) - first))
        if span <= 0:
            return
        blob = os.pread(fd, span * self.page_size, first * self.page_size)
        for index in range(len(blob) // self.page_size):
            staged_id = first + index
            if staged_id in self._frames or staged_id in self._staged:
                continue
            offset = index * self.page_size
            self._staged[staged_id] = blob[offset:offset + self.page_size]
            self.pages_prefetched += 1

    def _invalidate_staged(self, page_id: int) -> None:
        if self._staged.pop(page_id, None) is not None:
            self.prefetch_wasted += 1

    def adopt(self, page_id: int, node: Any) -> None:
        """Register a freshly created page as a resident dirty frame."""
        if page_id in self._frames:
            raise StorageError(f"page {page_id} already resident")
        self._invalidate_staged(page_id)
        self._admit(Frame(page_id, node, dirty=True))

    def mark_dirty(self, page_id: int) -> None:
        frame = self._frames.get(page_id)
        if frame is None:
            raise StorageError(
                f"cannot dirty non-resident page {page_id}")
        frame.dirty = True

    def pin(self, page_id: int) -> None:
        """Forbid eviction of *page_id* until :meth:`unpin`."""
        frame = self._frames.get(page_id)
        if frame is None:
            raise StorageError(f"cannot pin non-resident page {page_id}")
        frame.pins += 1

    def unpin(self, page_id: int) -> None:
        frame = self._frames.get(page_id)
        if frame is None or frame.pins <= 0:
            raise StorageError(f"unbalanced unpin of page {page_id}")
        frame.pins -= 1

    def discard(self, page_id: int) -> None:
        """Drop a frame without flushing (the page was freed)."""
        self._frames.pop(page_id, None)
        self._invalidate_staged(page_id)

    def truncate(self, page_count: int) -> None:
        """Shrink the data file to *page_count* pages (compaction tail).

        Never grows the file; staged prefetches at or beyond the new end
        are dropped.
        """
        fd = self._require_fd()
        target = page_count * self.page_size
        if os.fstat(fd).st_size > target:
            os.ftruncate(fd, target)
        for staged_id in [pid for pid in self._staged if pid >= page_count]:
            self._invalidate_staged(staged_id)

    @property
    def resident(self) -> int:
        return len(self._frames)

    def resident_ids(self) -> list[int]:
        return list(self._frames)

    # -- flushing -------------------------------------------------------

    def _write_frame(self, frame: Frame) -> None:
        fd = self._require_fd()
        self._invalidate_staged(frame.page_id)
        data = encode_page(*self._node_image(frame.node), self.page_size)
        offset = frame.page_id * self.page_size
        if faults.torn_point("page-torn"):
            os.pwrite(fd, data[:self.page_size // 2], offset)
            raise faults.InjectedCrash("page-torn")
        os.pwrite(fd, data, offset)
        faults.crash_point("page-flush")
        self.pages_written += 1
        frame.dirty = False

    @staticmethod
    def _node_image(node: Any) -> tuple[int, list[bytes]]:
        kind, cells = node.encode_cells()
        return kind, cells

    def flush(self, page_id: int) -> None:
        frame = self._frames.get(page_id)
        if frame is not None and frame.dirty:
            self._write_frame(frame)

    def flush_all(self, sync: bool = True) -> None:
        """Write every dirty frame; optionally fsync the file."""
        for frame in list(self._frames.values()):
            if frame.dirty:
                self._write_frame(frame)
        if sync and not self.readonly:
            os.fsync(self._require_fd())

    # -- eviction -------------------------------------------------------

    def _touch(self, frame: Frame) -> None:
        # dict preserves insertion order; delete + reinsert = move to MRU.
        del self._frames[frame.page_id]
        self._frames[frame.page_id] = frame

    def _admit(self, frame: Frame) -> None:
        while len(self._frames) >= self.capacity:
            if not self._evict_one():
                # Every frame pinned: admit over capacity rather than
                # deadlock; tests assert this never actually triggers.
                self.overflow_events += 1
                break
        self._frames[frame.page_id] = frame
        self.peak_resident = max(self.peak_resident, len(self._frames))

    def _evict_one(self) -> bool:
        for page_id, frame in self._frames.items():
            if frame.pins == 0:
                if frame.dirty:
                    self._write_frame(frame)
                del self._frames[page_id]
                self.pages_evicted += 1
                return True
        return False
