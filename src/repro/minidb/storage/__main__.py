"""Storage inspection CLI: ``python -m repro.minidb.storage stat <dir>``.

Reads the database directory's files directly — MANIFEST.json, the page
file, and the WAL — without opening (and therefore without recovering)
the database, so it is safe to point at a directory left behind by a
crash. Reported numbers describe the last durable checkpoint; a
non-empty WAL means recovery would replay on top of them.
"""

from __future__ import annotations

import json
import os
import sys

_USAGE = "usage: python -m repro.minidb.storage stat <database-dir>"


def _file_size(path: str) -> int:
    try:
        return os.path.getsize(path)
    except OSError:
        return 0


def stat(directory: str) -> str:
    """Human-readable storage report for *directory*."""
    manifest_path = os.path.join(directory, "MANIFEST.json")
    lines = [f"database directory: {directory}"]
    data_size = _file_size(os.path.join(directory, "data.pages"))
    wal_size = _file_size(os.path.join(directory, "wal.log"))
    if not os.path.exists(manifest_path):
        lines.append("no MANIFEST.json (fresh or never checkpointed)")
        lines.append(f"data.pages: {data_size} bytes")
        lines.append(f"wal.log: {wal_size} bytes")
        return "\n".join(lines)
    with open(manifest_path, "r", encoding="utf-8") as handle:
        manifest = json.load(handle)
    page_size = manifest["page_size"]
    free_pages = manifest.get("free_pages", [])
    zones = manifest.get("zones", {})
    lines.append(f"checkpoint epoch: {manifest['epoch']}")
    lines.append(f"page size: {page_size} bytes")
    lines.append(f"next page id: {manifest['next_page_id']}")
    lines.append(f"data.pages: {data_size} bytes "
                 f"({data_size // page_size if page_size else 0} pages)")
    lines.append(f"free list: {len(free_pages)} pages")
    lines.append(f"wal.log: {wal_size} bytes"
                 + (" (recovery would replay)" if wal_size else ""))
    live = 0
    for name, entry in sorted(manifest.get("tables", {}).items()):
        heap = len(entry.get("heap_pages", []))
        index_pages = sum(len(spec.get("pages", []))
                          for spec in entry.get("indexes", {}).values())
        live += heap + index_pages
        rows = sum(count for _, count in entry.get("heap_pages", []))
        lines.append(f"table {name}: {rows} rows, {heap} heap pages, "
                     f"{len(entry.get('indexes', {}))} indexes "
                     f"({index_pages} pages)")
    coverage = f"{len(zones)}/{live}" if live else "0/0"
    lines.append(f"zone maps: {coverage} live pages covered")
    return "\n".join(lines)


def main(argv: list[str]) -> int:
    if len(argv) != 2 or argv[0] != "stat":
        print(_USAGE, file=sys.stderr)
        return 2
    if not os.path.isdir(argv[1]):
        print(f"not a directory: {argv[1]}", file=sys.stderr)
        return 2
    print(stat(argv[1]))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
