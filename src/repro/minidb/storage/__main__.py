"""Storage inspection CLI: ``python -m repro.minidb.storage stat <dir>``.

Reads the database directory's files directly — MANIFEST.json, the page
file, and the WAL — without opening (and therefore without recovering)
the database, so it is safe to point at a directory left behind by a
crash. Reported numbers describe the last durable checkpoint; a
non-empty WAL means recovery would replay on top of them.

Per table, the report includes the heap *footprint*: bytes as stored
(dictionary-coded pages count at their compressed size) versus the bytes
the same rows would occupy row-major, plus the resulting compression
ratio — the observable effect of the ``REPRO_ENCODE`` knob on disk.
"""

from __future__ import annotations

import json
import os
import sys

from repro.minidb.storage.page import (
    KIND_HEAP_DICT,
    SLOT_SIZE,
    cells_size,
    decode_page,
)
from repro.minidb.storage.serde import encode_row

_USAGE = "usage: python -m repro.minidb.storage stat <database-dir>"


def _file_size(path: str) -> int:
    try:
        return os.path.getsize(path)
    except OSError:
        return 0


def _heap_footprint(pages_path: str, page_size: int,
                    heap_pages: list) -> tuple[int, int, int]:
    """``(stored_bytes, plain_bytes, dict_pages)`` for one table's heap.

    ``stored`` is what the cells occupy on disk today; ``plain`` is what
    the same rows would occupy in the row-major ``KIND_HEAP`` layout.
    Unreadable pages (torn tail after a crash) are skipped — the report
    must stay safe on a directory the engine never recovered.
    """
    from repro.minidb.storage.heap import HeapPageNode

    stored = 0
    plain = 0
    dict_pages = 0
    try:
        handle = open(pages_path, "rb")
    except OSError:
        return 0, 0, 0
    with handle:
        for page_id, _count in heap_pages:
            handle.seek(page_id * page_size)
            data = handle.read(page_size)
            try:
                kind, cells = decode_page(data)
            except Exception:
                continue
            stored += cells_size(cells)
            if kind == KIND_HEAP_DICT:
                dict_pages += 1
                rows = HeapPageNode.from_dict_cells(cells).rows
                plain += sum(len(encode_row(row)) + SLOT_SIZE
                             for row in rows)
            else:
                plain += cells_size(cells)
    return stored, plain, dict_pages


def stat(directory: str) -> str:
    """Human-readable storage report for *directory*."""
    manifest_path = os.path.join(directory, "MANIFEST.json")
    lines = [f"database directory: {directory}"]
    data_size = _file_size(os.path.join(directory, "data.pages"))
    wal_size = _file_size(os.path.join(directory, "wal.log"))
    if not os.path.exists(manifest_path):
        lines.append("no MANIFEST.json (fresh or never checkpointed)")
        lines.append(f"data.pages: {data_size} bytes")
        lines.append(f"wal.log: {wal_size} bytes")
        return "\n".join(lines)
    with open(manifest_path, "r", encoding="utf-8") as handle:
        manifest = json.load(handle)
    page_size = manifest["page_size"]
    free_pages = manifest.get("free_pages", [])
    zones = manifest.get("zones", {})
    lines.append(f"checkpoint epoch: {manifest['epoch']}")
    lines.append(f"page size: {page_size} bytes")
    lines.append(f"next page id: {manifest['next_page_id']}")
    lines.append(f"data.pages: {data_size} bytes "
                 f"({data_size // page_size if page_size else 0} pages)")
    lines.append(f"free list: {len(free_pages)} pages")
    lines.append(f"wal.log: {wal_size} bytes"
                 + (" (recovery would replay)" if wal_size else ""))
    live = 0
    pages_path = os.path.join(directory, "data.pages")
    for name, entry in sorted(manifest.get("tables", {}).items()):
        heap_pages = entry.get("heap_pages", [])
        heap = len(heap_pages)
        index_pages = sum(len(spec.get("pages", []))
                          for spec in entry.get("indexes", {}).values())
        live += heap + index_pages
        rows = sum(count for _, count in heap_pages)
        lines.append(f"table {name}: {rows} rows, {heap} heap pages, "
                     f"{len(entry.get('indexes', {}))} indexes "
                     f"({index_pages} pages)")
        stored, plain, dict_pages = _heap_footprint(
            pages_path, page_size, heap_pages)
        ratio = f"{stored / plain:.2f}" if plain else "1.00"
        lines.append(f"table {name} footprint: {stored} bytes stored "
                     f"({dict_pages} dict pages), {plain} bytes plain, "
                     f"ratio {ratio}")
    coverage = f"{len(zones)}/{live}" if live else "0/0"
    lines.append(f"zone maps: {coverage} live pages covered")
    return "\n".join(lines)


def main(argv: list[str]) -> int:
    if len(argv) != 2 or argv[0] != "stat":
        print(_USAGE, file=sys.stderr)
        return 2
    if not os.path.isdir(argv[1]):
        print(f"not a directory: {argv[1]}", file=sys.stderr)
        return 2
    print(stat(argv[1]))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
