"""Per-page zone maps: min/max (+ null count) summaries for pruning.

A zone map answers "could any row on this page satisfy ``col op
literal``?" without fetching the page. The storage backend keeps one
entry per live page in ``DiskStorage.zones``:

* heap pages: ``["h", row_count, [[min, max, nulls], ...]]`` with one
  ``[min, max, nulls]`` triple per table column, computed over the
  page's non-NULL values;
* B-tree leaves: ``["l", first_key, last_key]`` — leaves are sorted, so
  the bounds are just the first and last key.

Entries are plain JSON values (lists, scalars) on purpose: the
checkpoint manifest persists them verbatim, so a reopened database
prunes cold pages without reading them first. Values that would not
survive the manifest's UTF-8 JSON round trip — NaN doubles, strings
with lone surrogates — poison their column's bounds (``min = max =
None``), which makes the column unprunable but never unsound. A page
whose column is entirely NULL (``nulls == row_count``) is prunable
against *any* comparison: SQL comparisons with NULL are never TRUE.

Pruning consults zones only when they exist; a page without an entry
always qualifies. ``REPRO_ZONE_PRUNE=0`` disables consultation entirely
(maintenance is cheap and always on), which the pruning tests use to
measure the unpruned baseline.
"""

from __future__ import annotations

import os
from typing import Any, Sequence

__all__ = ["heap_zone", "leaf_zone", "page_qualifies", "pruning_enabled"]

#: Environment knob: "0"/"off"/"false" disables zone-map *consultation*.
PRUNE_ENV = "REPRO_ZONE_PRUNE"


def pruning_enabled() -> bool:
    return os.environ.get(PRUNE_ENV, "1").strip().lower() not in (
        "0", "off", "false")


def _summarizable(value: Any) -> bool:
    """Whether *value* survives the manifest JSON round trip intact.

    NaN breaks ordering (every comparison is False) and lone-surrogate
    strings break the manifest's UTF-8 encode; either poisons the zone.
    """
    if isinstance(value, float) and value != value:
        return False
    if isinstance(value, str):
        try:
            value.encode("utf-8")
        except UnicodeEncodeError:
            return False
    return True


def heap_zone(rows: Sequence[tuple], width: int) -> list:
    """The zone entry for a heap page holding *rows* of *width* columns."""
    nulls = [0] * width
    mins: list[Any] = [None] * width
    maxs: list[Any] = [None] * width
    usable = [True] * width
    for row in rows:
        for position in range(width):
            value = row[position]
            if value is None:
                nulls[position] += 1
                continue
            if not usable[position]:
                continue
            if not _summarizable(value):
                usable[position] = False
                continue
            try:
                if mins[position] is None or value < mins[position]:
                    mins[position] = value
                if maxs[position] is None or value > maxs[position]:
                    maxs[position] = value
            except TypeError:
                usable[position] = False
    columns = []
    for position in range(width):
        if usable[position]:
            columns.append([mins[position], maxs[position],
                            nulls[position]])
        else:
            columns.append([None, None, nulls[position]])
    return ["h", len(rows), columns]


def leaf_zone(keys: Sequence[Any]) -> list | None:
    """The zone entry for a sorted B-tree leaf, or None if unsummarizable."""
    if not keys:
        return None
    low, high = keys[0], keys[-1]
    if not (_summarizable(low) and _summarizable(high)):
        return None
    return ["l", low, high]


def _range_qualifies(low: Any, high: Any, op: str, value: Any) -> bool:
    """Whether some point of ``[low, high]`` can satisfy ``point op value``."""
    try:
        if op == "=":
            return low <= value <= high
        if op == "<":
            return low < value
        if op == "<=":
            return low <= value
        if op == ">":
            return high > value
        # ">="
        return high >= value
    except TypeError:
        return True  # incomparable literal: never prune on it


def page_qualifies(zone: list | None,
                   specs: Sequence[tuple[int, str, Any]]) -> bool:
    """Whether a heap page described by *zone* can satisfy all *specs*.

    *specs* are ``(column position, op, literal)`` conjuncts from the
    planner; a page qualifies unless some conjunct provably holds for no
    row on it. Missing or malformed zones always qualify.
    """
    if not zone or zone[0] != "h":
        return True
    count, columns = zone[1], zone[2]
    for position, op, value in specs:
        if position >= len(columns):
            continue
        low, high, nulls = columns[position]
        if nulls >= count:
            return False  # every value NULL: no comparison is ever TRUE
        if low is None or high is None:
            continue  # poisoned bounds: unknown, cannot prune
        if not _range_qualifies(low, high, op, value):
            return False
    return True
