"""Page-based persistent storage for minidb (``storage=disk``).

Layout of the package (bottom-up):

* :mod:`~repro.minidb.storage.serde` — tagged typed-value / row codec
* :mod:`~repro.minidb.storage.page` — slotted-page format with CRC
* :mod:`~repro.minidb.storage.pager` — buffer pool (LRU, pin counts)
* :mod:`~repro.minidb.storage.wal` — logical redo log with commit frames
* :mod:`~repro.minidb.storage.btree` — copy-on-write on-disk B-tree
* :mod:`~repro.minidb.storage.heap` — a table's rows as a page chain
* :mod:`~repro.minidb.storage.backend` — :class:`DiskStorage`: manifest,
  checkpointing, crash recovery
* :mod:`~repro.minidb.storage.faults` — crash fault injection

``DiskStorage`` is intentionally *not* re-exported here: ``table.py``
imports the heap/btree submodules, so pulling ``backend`` (which imports
``table``) into the package root would create an import cycle. Import it
from :mod:`repro.minidb.storage.backend` directly.
"""

from repro.minidb.storage.faults import CRASH_ENV, InjectedCrash
from repro.minidb.storage.page import DEFAULT_PAGE_SIZE, configured_page_size
from repro.minidb.storage.pager import (
    DEFAULT_BUFFER_PAGES,
    configured_buffer_pages,
)

__all__ = [
    "CRASH_ENV",
    "DEFAULT_BUFFER_PAGES",
    "DEFAULT_PAGE_SIZE",
    "InjectedCrash",
    "configured_buffer_pages",
    "configured_page_size",
]
