"""The slotted-page format shared by heap and B-tree pages.

Every page is a fixed-size byte block:

.. code-block:: text

    offset  size  field
    ------  ----  -----------------------------------------------------
         0     2  magic  b"MP"
         2     1  kind   (heap / btree-leaf / btree-inner)
         3     1  reserved (zero)
         4     2  cell count
         6     2  cell_start (lowest byte offset used by cell data)
         8     4  CRC-32 over the whole page with this field zeroed
        12  4*n   slot directory: (offset u16, length u16) per cell
         ...      free space
    cell_start    cell data, growing *down* from the end of the page

Cells are opaque byte strings; the heap stores one serialized row per
cell, B-tree nodes store one entry (or child pointer) per cell. Pages
are always rewritten wholesale from their decoded in-memory form (the
engine copies-on-write instead of patching bytes in place), so the codec
only needs encode-all / decode-all.

The CRC turns a torn write into a detected
:class:`~repro.errors.StorageCorruptionError` instead of silently
corrupt rows; because the engine never overwrites a page referenced by
the current manifest, a torn page can only ever hit an *unreferenced*
page, and recovery never reads it.
"""

from __future__ import annotations

import os
import struct
import zlib

from repro.errors import StorageCorruptionError, StorageError

__all__ = [
    "DEFAULT_PAGE_SIZE",
    "HEADER_SIZE",
    "KIND_BTREE_INNER",
    "KIND_BTREE_LEAF",
    "KIND_HEAP",
    "KIND_HEAP_DICT",
    "SLOT_SIZE",
    "cell_capacity",
    "configured_page_size",
    "decode_page",
    "encode_page",
]

#: 4 KiB pages, the classic DBMS default (DB2's bufferpool unit in the
#: paper's experiments). ``REPRO_PAGE_SIZE`` overrides for tests that
#: want many pages/splits from tiny datasets.
DEFAULT_PAGE_SIZE = 4096

HEADER_SIZE = 12
SLOT_SIZE = 4

KIND_HEAP = 1
KIND_BTREE_LEAF = 2
KIND_BTREE_INNER = 3
#: Column-major heap page: header cell (row/column counts + per-column
#: layout flags) followed by one cell per column, each either a
#: dictionary (distinct values + per-row codes) or plain tagged values.
KIND_HEAP_DICT = 4

_MAGIC = b"MP"
_HEADER = struct.Struct(">2sBBHHI")


def configured_page_size() -> int:
    """Page size from ``REPRO_PAGE_SIZE`` (default 4096, min 128)."""
    env = os.environ.get("REPRO_PAGE_SIZE")
    if env is None:
        return DEFAULT_PAGE_SIZE
    try:
        return max(128, int(env.strip()))
    except ValueError:
        return DEFAULT_PAGE_SIZE


def cell_capacity(page_size: int) -> int:
    """Usable bytes for cells + slots on one page."""
    return page_size - HEADER_SIZE


def cells_size(cells: list[bytes]) -> int:
    """Bytes the slot directory + cell data of *cells* occupy."""
    return sum(len(cell) + SLOT_SIZE for cell in cells)


def encode_page(kind: int, cells: list[bytes], page_size: int) -> bytes:
    """Pack *cells* into one page image, slot directory in cell order."""
    used = cells_size(cells)
    if used > cell_capacity(page_size):
        raise StorageError(
            f"{len(cells)} cells ({used} bytes) overflow a "
            f"{page_size}-byte page")
    page = bytearray(page_size)
    cursor = page_size
    slot_at = HEADER_SIZE
    for cell in cells:
        cursor -= len(cell)
        page[cursor:cursor + len(cell)] = cell
        struct.pack_into(">HH", page, slot_at, cursor, len(cell))
        slot_at += SLOT_SIZE
    _HEADER.pack_into(page, 0, _MAGIC, kind, 0, len(cells), cursor, 0)
    crc = zlib.crc32(page)
    struct.pack_into(">I", page, 8, crc)
    return bytes(page)


def decode_page(data: bytes) -> tuple[int, list[bytes]]:
    """Unpack a page image into ``(kind, cells)``, verifying the CRC."""
    if len(data) < HEADER_SIZE:
        raise StorageCorruptionError(
            f"page truncated to {len(data)} bytes")
    magic, kind, _, count, _, crc = _HEADER.unpack_from(data, 0)
    if magic != _MAGIC:
        raise StorageCorruptionError(f"bad page magic {magic!r}")
    checked = bytearray(data)
    struct.pack_into(">I", checked, 8, 0)
    if zlib.crc32(checked) != crc:
        raise StorageCorruptionError("page checksum mismatch (torn write?)")
    cells: list[bytes] = []
    slot_at = HEADER_SIZE
    for _ in range(count):
        offset, length = struct.unpack_from(">HH", data, slot_at)
        slot_at += SLOT_SIZE
        if offset + length > len(data):
            raise StorageCorruptionError("cell slot out of page bounds")
        cells.append(data[offset:offset + length])
    return kind, cells
