"""Statement-level AST for the minidb SQL dialect.

Scalar expressions reuse the nodes in :mod:`repro.minidb.expressions`;
this module adds the SELECT statement shape: CTEs, select items, table
references (base tables, derived tables, joins), grouping, ordering and
set operations. Every node can render itself back to SQL via ``to_sql``,
which is exercised round-trip in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.minidb.expressions import Expr, SortSpec

__all__ = [
    "SelectItem",
    "TableRef",
    "TableName",
    "DerivedTable",
    "JoinRef",
    "SelectStmt",
    "Cte",
    "SetOp",
    "CreateTableStmt",
    "CreateIndexStmt",
    "InsertStmt",
    "DropTableStmt",
]


@dataclass
class SelectItem:
    """One entry of a select list: an expression and optional alias.

    A bare ``*`` or ``alias.*`` is represented with ``star=True`` (and
    ``qualifier`` set for the qualified form); ``expr`` is None then.
    """

    expr: Expr | None = None
    alias: str | None = None
    star: bool = False
    qualifier: str | None = None

    def to_sql(self) -> str:
        if self.star:
            return f"{self.qualifier}.*" if self.qualifier else "*"
        body = self.expr.to_sql()
        if self.alias:
            return f"{body} AS {self.alias}"
        return body


class TableRef:
    """Base class for FROM-clause items."""

    def to_sql(self) -> str:
        raise NotImplementedError


@dataclass
class TableName(TableRef):
    """A base table (or CTE) reference with optional alias."""

    name: str
    alias: str | None = None

    def __post_init__(self) -> None:
        self.name = self.name.lower()
        if self.alias is not None:
            self.alias = self.alias.lower()

    @property
    def binding(self) -> str:
        """The name this reference is known by in the query scope."""
        return self.alias or self.name

    def to_sql(self) -> str:
        if self.alias and self.alias != self.name:
            return f"{self.name} {self.alias}"
        return self.name


@dataclass
class DerivedTable(TableRef):
    """``(SELECT ...) alias`` in a FROM clause."""

    select: "SelectStmt"
    alias: str

    def __post_init__(self) -> None:
        self.alias = self.alias.lower()

    @property
    def binding(self) -> str:
        return self.alias

    def to_sql(self) -> str:
        return f"({self.select.to_sql()}) {self.alias}"


@dataclass
class JoinRef(TableRef):
    """An explicit ``left [INNER|LEFT] JOIN right ON condition``."""

    left: TableRef
    right: TableRef
    kind: str = "inner"  # "inner" | "left"
    condition: Expr | None = None

    def to_sql(self) -> str:
        keyword = {"inner": "JOIN", "left": "LEFT JOIN"}[self.kind]
        clause = f"{self.left.to_sql()} {keyword} {self.right.to_sql()}"
        if self.condition is not None:
            clause += f" ON {self.condition.to_sql()}"
        return clause


@dataclass
class Cte:
    """One ``name AS (SELECT ...)`` entry of a WITH clause."""

    name: str
    select: "SelectStmt"

    def __post_init__(self) -> None:
        self.name = self.name.lower()

    def to_sql(self) -> str:
        return f"{self.name} AS ({self.select.to_sql()})"


@dataclass
class SetOp:
    """A trailing set operation: ``UNION [ALL] right``."""

    op: str  # "union" | "union_all"
    right: "SelectStmt"

    def to_sql(self) -> str:
        keyword = "UNION ALL" if self.op == "union_all" else "UNION"
        return f"{keyword} {self.right.to_sql()}"


@dataclass
class SelectStmt:
    """A full SELECT statement."""

    items: list[SelectItem]
    from_refs: list[TableRef] = field(default_factory=list)
    where: Expr | None = None
    group_by: list[Expr] = field(default_factory=list)
    having: Expr | None = None
    order_by: list[SortSpec] = field(default_factory=list)
    limit: int | None = None
    distinct: bool = False
    ctes: list[Cte] = field(default_factory=list)
    set_op: SetOp | None = None

    def to_sql(self) -> str:
        parts: list[str] = []
        if self.ctes:
            body = ", ".join(cte.to_sql() for cte in self.ctes)
            parts.append(f"WITH {body}")
        keyword = "SELECT DISTINCT" if self.distinct else "SELECT"
        select_list = ", ".join(item.to_sql() for item in self.items)
        parts.append(f"{keyword} {select_list}")
        if self.from_refs:
            body = ", ".join(ref.to_sql() for ref in self.from_refs)
            parts.append(f"FROM {body}")
        if self.where is not None:
            parts.append(f"WHERE {self.where.to_sql()}")
        if self.group_by:
            body = ", ".join(expr.to_sql() for expr in self.group_by)
            parts.append(f"GROUP BY {body}")
        if self.having is not None:
            parts.append(f"HAVING {self.having.to_sql()}")
        if self.order_by:
            body = ", ".join(spec.to_sql() for spec in self.order_by)
            parts.append(f"ORDER BY {body}")
        if self.limit is not None:
            parts.append(f"LIMIT {self.limit}")
        if self.set_op is not None:
            parts.append(self.set_op.to_sql())
        return " ".join(parts)


@dataclass
class CreateTableStmt:
    """``CREATE TABLE name (col TYPE, ...)``."""

    name: str
    columns: list  # list[tuple[str, "SqlType"]]

    def __post_init__(self) -> None:
        self.name = self.name.lower()

    def to_sql(self) -> str:
        body = ", ".join(f"{name} {sql_type.value.upper()}"
                         for name, sql_type in self.columns)
        return f"CREATE TABLE {self.name} ({body})"


@dataclass
class CreateIndexStmt:
    """``CREATE INDEX [name] ON table (column)``."""

    table: str
    column: str
    name: str | None = None

    def __post_init__(self) -> None:
        self.table = self.table.lower()
        self.column = self.column.lower()
        if self.name is not None:
            self.name = self.name.lower()

    def to_sql(self) -> str:
        label = f" {self.name}" if self.name else ""
        return f"CREATE INDEX{label} ON {self.table} ({self.column})"


@dataclass
class InsertStmt:
    """``INSERT INTO table [(cols)] VALUES (...), (...)``."""

    table: str
    columns: list[str]
    rows: list[list[Expr]]

    def __post_init__(self) -> None:
        self.table = self.table.lower()
        self.columns = [name.lower() for name in self.columns]

    def to_sql(self) -> str:
        target = self.table
        if self.columns:
            target += f" ({', '.join(self.columns)})"
        body = ", ".join(
            "(" + ", ".join(value.to_sql() for value in row) + ")"
            for row in self.rows)
        return f"INSERT INTO {target} VALUES {body}"


@dataclass
class DropTableStmt:
    """``DROP TABLE name``."""

    name: str

    def __post_init__(self) -> None:
        self.name = self.name.lower()

    def to_sql(self) -> str:
        return f"DROP TABLE {self.name}"
