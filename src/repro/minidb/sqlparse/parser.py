"""Recursive-descent parser for the minidb SQL dialect.

The dialect is the subset exercised by the paper's workload and rule
templates:

* ``WITH`` common table expressions;
* ``SELECT [DISTINCT]`` lists with expressions, aliases, ``*`` and
  qualified stars;
* ``FROM`` lists with comma joins, ``JOIN``/``LEFT JOIN ... ON``, and
  derived tables;
* ``WHERE`` / ``GROUP BY`` / ``HAVING`` / ``ORDER BY`` / ``LIMIT``;
* scalar expressions with arithmetic, comparisons, ``AND/OR/NOT``,
  ``BETWEEN``, ``[NOT] IN`` (value lists and subqueries),
  ``IS [NOT] NULL``, ``LIKE``, ``CASE``, function calls;
* aggregates (``count/sum/avg/min/max``, ``COUNT(DISTINCT ...)``);
* SQL/OLAP window functions ``f(x) OVER (PARTITION BY ... ORDER BY ...
  ROWS|RANGE BETWEEN ... AND ...)``, with interval-aware RANGE bounds
  (``5 MINUTES PRECEDING``);
* ``UNION [ALL]``;
* ``TIMESTAMP '...'`` and ``INTERVAL 'n' unit`` literals.

Time units in intervals and RANGE bounds are converted to seconds, the
engine's canonical timestamp resolution.
"""

from __future__ import annotations

from repro.errors import SqlSyntaxError
from repro.minidb.expressions import (
    UNBOUNDED,
    AggregateCall,
    BinaryOp,
    Case,
    ColumnRef,
    Expr,
    FuncCall,
    InList,
    InSubquery,
    IsNull,
    Literal,
    SortSpec,
    UnaryOp,
    WindowFrame,
    WindowFunction,
)
from repro.minidb.sqlparse.ast import (
    CreateIndexStmt,
    CreateTableStmt,
    DropTableStmt,
    InsertStmt,
    Cte,
    DerivedTable,
    JoinRef,
    SelectItem,
    SelectStmt,
    SetOp,
    TableName,
    TableRef,
)
from repro.minidb.sqlparse.lexer import Token, TokenKind, tokenize
from repro.minidb.types import SqlType, parse_timestamp

__all__ = ["parse_select", "parse_expression", "parse_sql", "Parser"]

_AGGREGATE_NAMES = {"count", "sum", "avg", "min", "max"}
_WINDOW_ONLY_NAMES = {"row_number", "lag", "lead"}

_TIME_UNITS = {
    "second": 1, "seconds": 1, "sec": 1, "secs": 1,
    "minute": 60, "minutes": 60, "min": 60, "mins": 60,
    "hour": 3600, "hours": 3600,
    "day": 86400, "days": 86400,
}

# Identifiers that terminate an alias-free table reference or select item.
_CLAUSE_KEYWORDS = {
    "from", "where", "group", "having", "order", "limit", "on", "join",
    "inner", "left", "right", "full", "union", "as", "and", "or", "not",
    "select", "with", "asc", "desc", "between", "in", "is", "like", "case",
    "when", "then", "else", "end", "distinct", "by", "over", "rows", "range",
}


class Parser:
    """Token-cursor with the grammar's recursive-descent productions."""

    def __init__(self, text: str) -> None:
        self._tokens = tokenize(text)
        self._position = 0

    # -- token plumbing -------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._position + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._position]
        if token.kind != TokenKind.END:
            self._position += 1
        return token

    def _check_keyword(self, *keywords: str) -> bool:
        token = self._peek()
        return token.kind == TokenKind.IDENT and token.lower in keywords

    def _match_keyword(self, *keywords: str) -> bool:
        if self._check_keyword(*keywords):
            self._advance()
            return True
        return False

    def _expect_keyword(self, keyword: str) -> None:
        token = self._peek()
        if not self._match_keyword(keyword):
            raise SqlSyntaxError(
                f"expected {keyword.upper()!r}, found {token.text!r}",
                token.line, token.column)

    def _check_punct(self, text: str) -> bool:
        token = self._peek()
        return token.kind in (TokenKind.PUNCT, TokenKind.OPERATOR) \
            and token.text == text

    def _match_punct(self, text: str) -> bool:
        if self._check_punct(text):
            self._advance()
            return True
        return False

    def _expect_punct(self, text: str) -> None:
        token = self._peek()
        if not self._match_punct(text):
            raise SqlSyntaxError(
                f"expected {text!r}, found {token.text!r}",
                token.line, token.column)

    def _expect_ident(self, what: str = "identifier") -> Token:
        token = self._peek()
        if token.kind != TokenKind.IDENT:
            raise SqlSyntaxError(
                f"expected {what}, found {token.text!r}",
                token.line, token.column)
        return self._advance()

    def _error(self, message: str) -> SqlSyntaxError:
        token = self._peek()
        return SqlSyntaxError(f"{message} (found {token.text!r})",
                              token.line, token.column)

    # -- statements -----------------------------------------------------

    _TYPE_NAMES = {
        "integer": SqlType.INTEGER, "int": SqlType.INTEGER,
        "bigint": SqlType.INTEGER,
        "double": SqlType.DOUBLE, "float": SqlType.DOUBLE,
        "real": SqlType.DOUBLE,
        "varchar": SqlType.VARCHAR, "char": SqlType.VARCHAR,
        "text": SqlType.VARCHAR,
        "boolean": SqlType.BOOLEAN, "bool": SqlType.BOOLEAN,
        "timestamp": SqlType.TIMESTAMP,
        "interval": SqlType.INTERVAL,
    }

    def parse_sql(self):
        """Parse any supported statement: SELECT, CREATE TABLE,
        CREATE INDEX, or INSERT INTO ... VALUES."""
        if self._check_keyword("create"):
            statement = self._parse_create()
        elif self._check_keyword("insert"):
            statement = self._parse_insert()
        elif self._check_keyword("drop"):
            self._expect_keyword("drop")
            self._expect_keyword("table")
            statement = DropTableStmt(
                self._expect_ident("table name").lower)
        else:
            return self.parse_statement()
        self._match_punct(";")
        token = self._peek()
        if token.kind != TokenKind.END:
            raise SqlSyntaxError(f"trailing input {token.text!r}",
                                 token.line, token.column)
        return statement

    def _parse_create(self):
        self._expect_keyword("create")
        if self._match_keyword("table"):
            name = self._expect_ident("table name").lower
            self._expect_punct("(")
            columns = []
            while True:
                column = self._expect_ident("column name").lower
                type_token = self._expect_ident("type name")
                sql_type = self._TYPE_NAMES.get(type_token.lower)
                if sql_type is None:
                    raise SqlSyntaxError(
                        f"unknown type {type_token.text!r}",
                        type_token.line, type_token.column)
                if self._match_punct("("):  # VARCHAR(50) etc.
                    self._advance()
                    self._expect_punct(")")
                columns.append((column, sql_type))
                if not self._match_punct(","):
                    break
            self._expect_punct(")")
            return CreateTableStmt(name, columns)
        self._expect_keyword("index")
        index_name = None
        if not self._check_keyword("on"):
            index_name = self._expect_ident("index name").lower
        self._expect_keyword("on")
        table = self._expect_ident("table name").lower
        self._expect_punct("(")
        column = self._expect_ident("column name").lower
        self._expect_punct(")")
        return CreateIndexStmt(table, column, index_name)

    def _parse_insert(self):
        self._expect_keyword("insert")
        self._expect_keyword("into")
        table = self._expect_ident("table name").lower
        columns: list[str] = []
        if self._match_punct("("):
            while True:
                columns.append(self._expect_ident("column name").lower)
                if not self._match_punct(","):
                    break
            self._expect_punct(")")
        self._expect_keyword("values")
        rows: list[list[Expr]] = []
        while True:
            self._expect_punct("(")
            row = [self.parse_expr()]
            while self._match_punct(","):
                row.append(self.parse_expr())
            self._expect_punct(")")
            rows.append(row)
            if not self._match_punct(","):
                break
        return InsertStmt(table, columns, rows)

    def parse_statement(self) -> SelectStmt:
        statement = self.parse_select()
        self._match_punct(";")
        token = self._peek()
        if token.kind != TokenKind.END:
            raise SqlSyntaxError(f"trailing input {token.text!r}",
                                 token.line, token.column)
        return statement

    def parse_select(self) -> SelectStmt:
        ctes: list[Cte] = []
        if self._match_keyword("with"):
            while True:
                name = self._expect_ident("CTE name").lower
                self._expect_keyword("as")
                self._expect_punct("(")
                ctes.append(Cte(name, self.parse_select()))
                self._expect_punct(")")
                if not self._match_punct(","):
                    break
        statement = self._parse_select_core()
        statement.ctes = ctes
        if self._check_keyword("union"):
            self._advance()
            op = "union_all" if self._match_keyword("all") else "union"
            statement.set_op = SetOp(op, self.parse_select())
        return statement

    def _parse_select_core(self) -> SelectStmt:
        self._expect_keyword("select")
        distinct = bool(self._match_keyword("distinct"))
        items = [self._parse_select_item()]
        while self._match_punct(","):
            items.append(self._parse_select_item())
        from_refs: list[TableRef] = []
        if self._match_keyword("from"):
            from_refs.append(self._parse_table_ref())
            while self._match_punct(","):
                from_refs.append(self._parse_table_ref())
        where = self.parse_expr() if self._match_keyword("where") else None
        group_by: list[Expr] = []
        if self._match_keyword("group"):
            self._expect_keyword("by")
            group_by.append(self.parse_expr())
            while self._match_punct(","):
                group_by.append(self.parse_expr())
        having = self.parse_expr() if self._match_keyword("having") else None
        order_by: list[SortSpec] = []
        if self._match_keyword("order"):
            self._expect_keyword("by")
            order_by.append(self._parse_sort_spec())
            while self._match_punct(","):
                order_by.append(self._parse_sort_spec())
        limit = None
        if self._match_keyword("limit"):
            token = self._advance()
            if token.kind != TokenKind.NUMBER:
                raise SqlSyntaxError("LIMIT expects a number",
                                     token.line, token.column)
            limit = int(token.text)
        return SelectStmt(items=items, from_refs=from_refs, where=where,
                          group_by=group_by, having=having, order_by=order_by,
                          limit=limit, distinct=distinct)

    def _parse_select_item(self) -> SelectItem:
        if self._check_punct("*"):
            self._advance()
            return SelectItem(star=True)
        # qualified star:  alias.*
        if self._peek().kind == TokenKind.IDENT \
                and self._peek(1).text == "." and self._peek(2).text == "*":
            qualifier = self._advance().lower
            self._advance()  # '.'
            self._advance()  # '*'
            return SelectItem(star=True, qualifier=qualifier)
        expr = self.parse_expr()
        alias = None
        if self._match_keyword("as"):
            alias = self._expect_ident("column alias").lower
        elif self._peek().kind == TokenKind.IDENT \
                and self._peek().lower not in _CLAUSE_KEYWORDS:
            alias = self._advance().lower
        return SelectItem(expr=expr, alias=alias)

    def _parse_sort_spec(self) -> SortSpec:
        expr = self.parse_expr()
        ascending = True
        if self._match_keyword("desc"):
            ascending = False
        else:
            self._match_keyword("asc")
        return SortSpec(expr, ascending)

    # -- table references -----------------------------------------------

    def _parse_table_ref(self) -> TableRef:
        ref = self._parse_primary_ref()
        while True:
            if self._match_keyword("join"):
                kind = "inner"
            elif self._check_keyword("inner") and self._peek(1).lower == "join":
                self._advance()
                self._advance()
                kind = "inner"
            elif self._check_keyword("left"):
                self._advance()
                self._match_keyword("outer")
                self._expect_keyword("join")
                kind = "left"
            else:
                return ref
            right = self._parse_primary_ref()
            self._expect_keyword("on")
            condition = self.parse_expr()
            ref = JoinRef(ref, right, kind, condition)

    def _parse_primary_ref(self) -> TableRef:
        if self._match_punct("("):
            select = self.parse_select()
            self._expect_punct(")")
            self._match_keyword("as")
            alias = self._expect_ident("derived-table alias").lower
            return DerivedTable(select, alias)
        name = self._expect_ident("table name").lower
        alias = None
        if self._match_keyword("as"):
            alias = self._expect_ident("table alias").lower
        elif self._peek().kind == TokenKind.IDENT \
                and self._peek().lower not in _CLAUSE_KEYWORDS:
            alias = self._advance().lower
        return TableName(name, alias)

    # -- expressions ----------------------------------------------------

    def parse_expr(self) -> Expr:
        return self._parse_or()

    def _parse_or(self) -> Expr:
        expr = self._parse_and()
        while self._match_keyword("or"):
            expr = BinaryOp("or", expr, self._parse_and())
        return expr

    def _parse_and(self) -> Expr:
        expr = self._parse_not()
        while self._match_keyword("and"):
            expr = BinaryOp("and", expr, self._parse_not())
        return expr

    def _parse_not(self) -> Expr:
        if self._match_keyword("not"):
            return UnaryOp("not", self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> Expr:
        expr = self._parse_additive()
        token = self._peek()
        if token.kind == TokenKind.OPERATOR \
                and token.text in ("=", "!=", "<>", "<", "<=", ">", ">="):
            self._advance()
            return BinaryOp(token.text, expr, self._parse_additive())
        negated = False
        if self._check_keyword("not") and self._peek(1).lower in (
                "in", "between", "like"):
            self._advance()
            negated = True
        if self._match_keyword("between"):
            low = self._parse_additive()
            self._expect_keyword("and")
            high = self._parse_additive()
            between = BinaryOp("and",
                               BinaryOp(">=", expr, low),
                               BinaryOp("<=", expr, high))
            return UnaryOp("not", between) if negated else between
        if self._match_keyword("in"):
            return self._parse_in(expr, negated)
        if self._match_keyword("like"):
            pattern = self._parse_additive()
            call = FuncCall("like", (expr, pattern))
            return UnaryOp("not", call) if negated else call
        if self._match_keyword("is"):
            is_not = bool(self._match_keyword("not"))
            self._expect_keyword("null")
            return IsNull(expr, negated=is_not)
        return expr

    def _parse_in(self, operand: Expr, negated: bool) -> Expr:
        self._expect_punct("(")
        if self._check_keyword("select", "with"):
            subquery = self.parse_select()
            self._expect_punct(")")
            return InSubquery(operand, subquery, negated)
        items = [self.parse_expr()]
        while self._match_punct(","):
            items.append(self.parse_expr())
        self._expect_punct(")")
        return InList(operand, tuple(items), negated)

    def _parse_additive(self) -> Expr:
        expr = self._parse_multiplicative()
        while True:
            token = self._peek()
            if token.kind == TokenKind.OPERATOR and token.text in ("+", "-"):
                self._advance()
                expr = BinaryOp(token.text, expr, self._parse_multiplicative())
            else:
                return expr

    def _parse_multiplicative(self) -> Expr:
        expr = self._parse_unary()
        while True:
            token = self._peek()
            if token.kind == TokenKind.OPERATOR and token.text in ("*", "/"):
                self._advance()
                expr = BinaryOp(token.text, expr, self._parse_unary())
            else:
                return expr

    def _parse_unary(self) -> Expr:
        if self._check_punct("-"):
            self._advance()
            operand = self._parse_unary()
            # Fold negation into numeric literals so "-1" round-trips as
            # Literal(-1) and linear analysis sees plain constants.
            if isinstance(operand, Literal) \
                    and isinstance(operand.value, (int, float)) \
                    and not isinstance(operand.value, bool):
                return Literal(-operand.value)
            return UnaryOp("-", operand)
        if self._check_punct("+"):
            self._advance()
            return self._parse_unary()
        return self._parse_primary()

    def _parse_primary(self) -> Expr:
        token = self._peek()
        if token.kind == TokenKind.NUMBER:
            self._advance()
            text = token.text
            value = float(text) if ("." in text or "e" in text.lower()) \
                else int(text)
            return self._maybe_interval(Literal(value))
        if token.kind == TokenKind.STRING:
            self._advance()
            return Literal(token.text)
        if self._match_punct("("):
            expr = self.parse_expr()
            self._expect_punct(")")
            return expr
        if token.kind != TokenKind.IDENT:
            raise self._error("expected an expression")
        lowered = token.lower
        if lowered == "null":
            self._advance()
            return Literal(None)
        if lowered == "true":
            self._advance()
            return Literal(True)
        if lowered == "false":
            self._advance()
            return Literal(False)
        if lowered == "case":
            return self._parse_case()
        if lowered == "timestamp" and self._peek(1).kind == TokenKind.STRING:
            self._advance()
            text_token = self._advance()
            return Literal(parse_timestamp(text_token.text))
        if lowered == "interval":
            return self._parse_interval()
        if self._peek(1).text == "(":
            return self._parse_call()
        return self._parse_column_ref()

    def _maybe_interval(self, literal: Literal) -> Literal:
        """Fold a trailing time unit onto a numeric literal (``5 mins``)."""
        token = self._peek()
        if token.kind == TokenKind.IDENT and token.lower in _TIME_UNITS:
            self._advance()
            return Literal(literal.value * _TIME_UNITS[token.lower])
        return literal

    def _parse_interval(self) -> Literal:
        self._expect_keyword("interval")
        token = self._advance()
        if token.kind == TokenKind.STRING:
            magnitude = float(token.text) if "." in token.text \
                else int(token.text)
        elif token.kind == TokenKind.NUMBER:
            magnitude = float(token.text) if "." in token.text \
                else int(token.text)
        else:
            raise SqlSyntaxError("INTERVAL expects a quantity",
                                 token.line, token.column)
        unit_token = self._expect_ident("time unit")
        if unit_token.lower not in _TIME_UNITS:
            raise SqlSyntaxError(f"unknown time unit {unit_token.text!r}",
                                 unit_token.line, unit_token.column)
        seconds = magnitude * _TIME_UNITS[unit_token.lower]
        return Literal(int(seconds) if seconds == int(seconds) else seconds)

    def _parse_case(self) -> Expr:
        self._expect_keyword("case")
        whens: list[tuple[Expr, Expr]] = []
        while self._match_keyword("when"):
            condition = self.parse_expr()
            self._expect_keyword("then")
            whens.append((condition, self.parse_expr()))
        if not whens:
            raise self._error("CASE requires at least one WHEN")
        else_result = self.parse_expr() if self._match_keyword("else") else None
        self._expect_keyword("end")
        return Case(tuple(whens), else_result)

    def _parse_call(self) -> Expr:
        name_token = self._advance()
        name = name_token.lower
        self._expect_punct("(")
        distinct = False
        star = False
        args: list[Expr] = []
        if self._check_punct("*"):
            self._advance()
            star = True
        elif not self._check_punct(")"):
            distinct = bool(self._match_keyword("distinct"))
            args.append(self.parse_expr())
            while self._match_punct(","):
                args.append(self.parse_expr())
        self._expect_punct(")")
        is_window = self._check_keyword("over")
        if is_window:
            self._advance()
            partition, order, frame = self._parse_window_spec()
            argument = None if star or not args else args[0]
            offset = 1
            if name in ("lag", "lead") and len(args) > 1:
                if not isinstance(args[1], Literal) \
                        or not isinstance(args[1].value, int):
                    raise SqlSyntaxError(
                        f"{name}() offset must be an integer literal",
                        name_token.line, name_token.column)
                offset = args[1].value
            if name in _WINDOW_ONLY_NAMES or name in _AGGREGATE_NAMES:
                return WindowFunction(name, argument, tuple(partition),
                                      tuple(order), frame, offset)
            raise SqlSyntaxError(
                f"function {name!r} cannot be used as a window function",
                name_token.line, name_token.column)
        if name in _AGGREGATE_NAMES:
            argument = None if star else args[0] if args else None
            if name != "count" and argument is None:
                raise SqlSyntaxError(f"{name}() requires an argument",
                                     name_token.line, name_token.column)
            return AggregateCall(name, argument, distinct)
        if star or distinct:
            raise SqlSyntaxError(
                f"{name}() does not accept * or DISTINCT",
                name_token.line, name_token.column)
        return FuncCall(name, tuple(args))

    def _parse_window_spec(self) -> tuple[list[Expr], list[SortSpec],
                                          WindowFrame | None]:
        self._expect_punct("(")
        partition: list[Expr] = []
        order: list[SortSpec] = []
        frame: WindowFrame | None = None
        if self._match_keyword("partition"):
            self._expect_keyword("by")
            partition.append(self.parse_expr())
            while self._match_punct(","):
                partition.append(self.parse_expr())
        if self._match_keyword("order"):
            self._expect_keyword("by")
            order.append(self._parse_sort_spec())
            while self._match_punct(","):
                order.append(self._parse_sort_spec())
        if self._check_keyword("rows", "range"):
            mode = self._advance().lower
            if self._match_keyword("between"):
                start = self._parse_frame_bound(is_start=True)
                self._expect_keyword("and")
                end = self._parse_frame_bound(is_start=False)
            else:
                # "ROWS n PRECEDING" ==> BETWEEN n PRECEDING AND CURRENT ROW
                start = self._parse_frame_bound(is_start=True)
                end = 0
            frame = WindowFrame(mode, start, end)
        self._expect_punct(")")
        return partition, order, frame

    def _parse_frame_bound(self, *, is_start: bool) -> int | float | str:
        if self._match_keyword("unbounded"):
            if not self._match_keyword("preceding"):
                self._expect_keyword("following")
            return UNBOUNDED
        if self._match_keyword("current"):
            self._expect_keyword("row")
            return 0
        token = self._advance()
        if token.kind != TokenKind.NUMBER:
            raise SqlSyntaxError("expected a frame offset",
                                 token.line, token.column)
        offset: int | float = float(token.text) if "." in token.text \
            else int(token.text)
        unit_token = self._peek()
        if unit_token.kind == TokenKind.IDENT \
                and unit_token.lower in _TIME_UNITS:
            self._advance()
            offset *= _TIME_UNITS[unit_token.lower]
        if self._match_keyword("preceding"):
            return -offset
        self._expect_keyword("following")
        return offset

    def _parse_column_ref(self) -> Expr:
        first = self._expect_ident("column name").lower
        if self._check_punct(".") and self._peek(1).kind == TokenKind.IDENT:
            self._advance()
            second = self._advance().lower
            return ColumnRef(second, first)
        return ColumnRef(first)


def parse_select(text: str) -> SelectStmt:
    """Parse one SELECT statement (raises :class:`SqlSyntaxError`)."""
    return Parser(text).parse_statement()


def parse_expression(text: str) -> Expr:
    """Parse a standalone scalar expression (used by the rule language)."""
    parser = Parser(text)
    expr = parser.parse_expr()
    token = parser._peek()
    if token.kind != TokenKind.END:
        raise SqlSyntaxError(f"trailing input {token.text!r}",
                             token.line, token.column)
    return expr


def parse_sql(text: str):
    """Parse any supported SQL statement (SELECT / CREATE / INSERT)."""
    return Parser(text).parse_sql()
