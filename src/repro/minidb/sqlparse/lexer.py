"""Tokenizer for the minidb SQL dialect.

Produces a flat list of :class:`Token` objects with line/column positions
for error messages. Keywords are not reserved at the lexer level — the
parser decides contextually — but they are normalized to lower case via
``Token.lower``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SqlSyntaxError

__all__ = ["Token", "tokenize", "TokenKind"]


class TokenKind:
    """Token categories (plain strings for cheap comparison)."""

    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCT = "punct"
    END = "end"


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (1-based)."""

    kind: str
    text: str
    line: int
    column: int

    @property
    def lower(self) -> str:
        return self.text.lower()

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}@{self.line}:{self.column})"


_OPERATORS = ("<=", ">=", "<>", "!=", "||", "=", "<", ">", "+", "-", "*", "/")
_PUNCT = "(),.{}"


def tokenize(text: str) -> list[Token]:
    """Tokenize *text*, raising :class:`SqlSyntaxError` on bad input."""
    tokens: list[Token] = []
    length = len(text)
    position = 0
    line = 1
    line_start = 0

    def location() -> tuple[int, int]:
        return line, position - line_start + 1

    while position < length:
        char = text[position]
        if char == "\n":
            line += 1
            position += 1
            line_start = position
            continue
        if char in " \t\r":
            position += 1
            continue
        if text.startswith("--", position):
            newline = text.find("\n", position)
            position = length if newline < 0 else newline
            continue
        current_line, current_column = location()
        if char.isdigit() or (char == "." and position + 1 < length
                              and text[position + 1].isdigit()):
            start = position
            seen_dot = False
            seen_exponent = False
            while position < length:
                char = text[position]
                if char.isdigit():
                    position += 1
                elif char == "." and not seen_dot and not seen_exponent:
                    seen_dot = True
                    position += 1
                elif char in "eE" and not seen_exponent and position > start:
                    seen_exponent = True
                    position += 1
                    if position < length and text[position] in "+-":
                        position += 1
                else:
                    break
            tokens.append(Token(TokenKind.NUMBER, text[start:position],
                                current_line, current_column))
            continue
        if char.isalpha() or char == "_":
            start = position
            while position < length and (text[position].isalnum()
                                         or text[position] == "_"):
                position += 1
            tokens.append(Token(TokenKind.IDENT, text[start:position],
                                current_line, current_column))
            continue
        if char == "'":
            position += 1
            pieces: list[str] = []
            while True:
                if position >= length:
                    raise SqlSyntaxError("unterminated string literal",
                                         current_line, current_column)
                char = text[position]
                if char == "'":
                    if text.startswith("''", position):
                        pieces.append("'")
                        position += 2
                        continue
                    position += 1
                    break
                pieces.append(char)
                position += 1
            tokens.append(Token(TokenKind.STRING, "".join(pieces),
                                current_line, current_column))
            continue
        if char == '"':
            position += 1
            start = position
            while position < length and text[position] != '"':
                position += 1
            if position >= length:
                raise SqlSyntaxError("unterminated quoted identifier",
                                     current_line, current_column)
            tokens.append(Token(TokenKind.IDENT, text[start:position],
                                current_line, current_column))
            position += 1
            continue
        matched_operator = None
        for operator in _OPERATORS:
            if text.startswith(operator, position):
                matched_operator = operator
                break
        if matched_operator is not None:
            tokens.append(Token(TokenKind.OPERATOR, matched_operator,
                                current_line, current_column))
            position += len(matched_operator)
            continue
        if char in _PUNCT or char == ";":
            tokens.append(Token(TokenKind.PUNCT, char,
                                current_line, current_column))
            position += 1
            continue
        raise SqlSyntaxError(f"unexpected character {char!r}",
                             current_line, current_column)

    end_line, end_column = location()
    tokens.append(Token(TokenKind.END, "", end_line, end_column))
    return tokens
