"""SQL front end: lexer, AST, and recursive-descent parser."""

from repro.minidb.sqlparse.parser import parse_expression, parse_select, parse_sql

__all__ = ["parse_select", "parse_expression", "parse_sql"]
