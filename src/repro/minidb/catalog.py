"""The minidb catalog: the namespace of tables and their statistics."""

from __future__ import annotations

from typing import Iterator

from repro.errors import CatalogError
from repro.minidb.schema import TableSchema
from repro.minidb.table import Table

__all__ = ["Catalog"]


class Catalog:
    """A case-insensitive mapping from table names to :class:`Table`.

    ``version`` is bumped whenever the namespace changes (create/drop);
    together with the per-table versions it forms the staleness
    fingerprint used by the prepared-plan cache.
    """

    def __init__(self, storage=None) -> None:
        self._tables: dict[str, Table] = {}
        self.version = 0
        #: Disk storage backend shared by every table, or None (memory).
        self.storage = storage

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._tables

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def create_table(self, name: str, schema: TableSchema) -> Table:
        key = name.lower()
        if key in self._tables:
            raise CatalogError(f"table {name!r} already exists")
        if self.storage is not None:
            self.storage.log_create_table(key, schema)
        table = Table(key, schema, storage=self.storage)
        self._tables[key] = table
        self.version += 1
        return table

    def drop_table(self, name: str) -> None:
        key = name.lower()
        if key not in self._tables:
            raise CatalogError(f"no table named {name!r}")
        table = self._tables[key]
        if self.storage is not None:
            self.storage.log_drop_table(key)
            table.release_storage()
        del self._tables[key]
        self.version += 1

    def attach(self, table: Table) -> None:
        """Register a table recovered from storage (no WAL logging)."""
        self._tables[table.name] = table
        self.version += 1

    def table(self, name: str) -> Table:
        try:
            return self._tables[name.lower()]
        except KeyError:
            known = ", ".join(sorted(self._tables)) or "<none>"
            raise CatalogError(
                f"no table named {name!r}; known tables: {known}") from None

    def table_names(self) -> list[str]:
        return sorted(self._tables)
