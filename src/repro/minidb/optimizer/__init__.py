"""Cost-based optimizer: statistics, cardinality, cost model, planner."""
