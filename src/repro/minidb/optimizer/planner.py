"""Lowering logical plans to costed physical plans.

The planner performs the optimizations the reproduction depends on:

* **predicate pushdown** (see ``optimizer.rules``), with the window
  barrier that motivates the paper's rewrite engine;
* **access-path selection** — single-column range predicates over
  indexed columns become index range scans, with exact matching-row
  counts probed from the index (standing in for DB2's index statistics);
* **greedy join ordering** over inner-join groups, hash joins for
  equi-predicates with the smaller side as build input;
* **sort avoidance / order sharing** — Window and Sort operators are
  planned without a sort whenever the input already carries the required
  order, which is what makes the expanded rewrite of q1 nearly free
  (Figure 7(c) of the paper);
* **cost estimation** on every operator, surfaced through EXPLAIN and
  used by the rewrite engine to choose among candidate rewrites.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PlanningError
from repro.minidb.catalog import Catalog
from repro.minidb.codegen import apply_codegen
from repro.minidb.expressions import (
    BinaryOp,
    ColumnRef,
    Expr,
    and_all,
)
from repro.minidb.index import IndexRange
from repro.minidb.optimizer.cardinality import SelectivityEstimator
from repro.minidb.optimizer.cost import CostModel
from repro.minidb.optimizer.rules import push_down_filters
from repro.minidb.optimizer.stats import StatsRepository
from repro.minidb.plan.builder import split_conjuncts
from repro.minidb.plan.logical import (
    LogicalAggregate,
    LogicalDistinct,
    LogicalFilter,
    LogicalJoin,
    LogicalLimit,
    LogicalNode,
    LogicalProject,
    LogicalRequalify,
    LogicalScan,
    LogicalSemiJoin,
    LogicalSort,
    LogicalUnion,
    LogicalWindow,
)
from repro.minidb.plan.physical import (
    AggregateOp,
    DistinctOp,
    FilterOp,
    HashJoinOp,
    IndexRangeScan,
    LimitOp,
    NestedLoopJoinOp,
    Ordering,
    PassThroughOp,
    PhysicalNode,
    ProjectOp,
    SemiJoinOp,
    SeqScan,
    SortOp,
    UnionAllOp,
)
from repro.minidb.plan.shard import apply_sharding
from repro.minidb.plan.window import WindowFuncSpec, WindowOp
from repro.minidb.parallel import configured_worker_count

__all__ = ["Planner", "PlannerOptions"]


@dataclass
class PlannerOptions:
    """Feature toggles, mostly for ablation experiments and the
    optimizer-equivalence property tests."""

    use_indexes: bool = True
    order_sharing: bool = True
    naive_windows: bool = False
    push_filters: bool = True
    #: Historical toggle for the retired per-window fork pool; kept so
    #: ablation configs keep parsing. Parallelism is now planned as
    #: Exchange segments (see ``shard_parallel``), which subsume the
    #: per-sequence window path.
    parallel_windows: bool = False
    #: Wrap shardable pipeline segments in Exchange operators; still
    #: subject to the ``REPRO_WORKERS`` and row-threshold gates at both
    #: plan and execution time.
    shard_parallel: bool = True


class Planner:
    """Stateless-per-query physical planner."""

    def __init__(self, catalog: Catalog, stats: StatsRepository,
                 cost_model: CostModel | None = None,
                 options: PlannerOptions | None = None) -> None:
        self._catalog = catalog
        self._stats = stats
        self._cost = cost_model or CostModel()
        self._options = options or PlannerOptions()
        self._estimator = SelectivityEstimator(stats)

    # ------------------------------------------------------------------

    def plan(self, logical: LogicalNode) -> PhysicalNode:
        """Optimize and lower *logical* into an executable plan."""
        root = self.plan_unsharded(logical)
        if self._options.shard_parallel:
            workers = configured_worker_count()
            if workers >= 2:
                root = apply_sharding(root, workers, self._cost)
        return root

    def plan_unsharded(self, logical: LogicalNode) -> PhysicalNode:
        """Lower *logical* without the shard post-pass.

        Pool workers call this (via ``shard_parallel=False``) to rebuild
        the exact serial plan shape the parent's Exchange walk indices
        refer to.
        """
        optimized = push_down_filters(logical) \
            if self._options.push_filters else logical
        root = self._lower(optimized)
        # Codegen runs before the shard post-pass so parent and pool
        # workers (which re-plan with shard_parallel=False) agree on
        # tree shape and walk indices. No-op unless REPRO_CODEGEN=1.
        return apply_codegen(root)

    # ------------------------------------------------------------------

    def _lower(self, node: LogicalNode) -> PhysicalNode:
        if isinstance(node, LogicalScan):
            return self._lower_scan(node, [])
        if isinstance(node, LogicalFilter):
            return self._lower_filter(node)
        if isinstance(node, LogicalProject):
            return self._lower_project(node)
        if isinstance(node, LogicalJoin):
            return self._lower_join_tree(node)
        if isinstance(node, LogicalSemiJoin):
            return self._lower_semi_join(node)
        if isinstance(node, LogicalAggregate):
            return self._lower_aggregate(node)
        if isinstance(node, LogicalWindow):
            return self._lower_window(node)
        if isinstance(node, LogicalDistinct):
            child = self._lower(node.child)
            op = DistinctOp(child)
            op.estimated_rows = self._estimate_distinct_rows(node, child)
            op.estimated_cost = (child.estimated_cost
                                 + self._cost.distinct(child.estimated_rows))
            return op
        if isinstance(node, LogicalUnion):
            left = self._lower(node.left)
            right = self._lower(node.right)
            op = UnionAllOp(left, right)
            op.estimated_rows = left.estimated_rows + right.estimated_rows
            op.estimated_cost = left.estimated_cost + right.estimated_cost
            return op
        if isinstance(node, LogicalSort):
            return self._lower_sort(node)
        if isinstance(node, LogicalLimit):
            child = self._lower(node.child)
            op = LimitOp(child, node.count)
            op.estimated_rows = min(float(node.count), child.estimated_rows)
            op.estimated_cost = child.estimated_cost
            return op
        if isinstance(node, LogicalRequalify):
            child = self._lower(node.child)
            op = PassThroughOp(child, child.schema.requalify(node.binding),
                               node.binding)
            op.estimated_rows = child.estimated_rows
            op.estimated_cost = child.estimated_cost
            return op
        raise PlanningError(f"cannot lower {type(node).__name__}")

    def _estimate_distinct_rows(self, node: LogicalDistinct,
                                child: PhysicalNode) -> float:
        """Distinct-row estimate, correlation-aware for sequence keys.

        The generic estimate is ``min(NDV, input rows)``. For the
        paper-critical pattern ``DISTINCT(project(key))`` under a range
        predicate on an order column of the same table (the join-back
        sequence list Π_epc(σ_rtime(R))), the per-group span statistic
        refines it: a sequence intersects the queried window only if its
        own short lifetime overlaps it, so the distinct count is roughly
        ``NDV * (window fraction + average sequence span fraction)``.
        """
        generic = max(1.0, child.estimated_rows * 0.5)
        if len(node.schema) != 1:
            return generic
        field = node.schema.fields[0]
        if field.origin is None:
            return min(generic, child.estimated_rows)
        table_name, key_column = field.origin
        table_stats = self._stats.get(table_name)
        if table_stats is None:
            return generic
        key_stats = table_stats.column(key_column)
        if key_stats is None or not key_stats.ndv:
            return generic
        ndv = float(key_stats.ndv)
        estimate = min(ndv, child.estimated_rows)
        # Look for range bounds on a correlated order column.
        for logical in node.walk():
            if not isinstance(logical, LogicalFilter):
                continue
            for order_column, fraction in self._range_fractions(
                    logical.predicate, logical.child.schema, table_name):
                span = table_stats.span_fraction(key_column, order_column)
                if span is None:
                    continue
                correlated = ndv * min(1.0, fraction + span)
                estimate = min(estimate, max(1.0, correlated))
        return max(1.0, estimate)

    def _range_fractions(self, predicate: Expr, schema,
                         table_name: str):
        """(order column, selected fraction) pairs implied by range
        conjuncts of *predicate* over columns of *table_name*."""
        from repro.analysis.linear import normalize_comparison

        bounds: dict[str, list] = {}
        for conjunct in split_conjuncts(predicate):
            normalized = normalize_comparison(conjunct)
            if normalized is None:
                continue
            form, op = normalized
            ref = form.single_reference()
            if ref is None:
                negated = form.negate()
                ref = negated.single_reference()
                if ref is None:
                    continue
                flip = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}
                if op not in flip:
                    continue
                op = flip[op]
                form = negated
            if op in ("=", "!="):
                continue
            try:
                position = schema.resolve(ref.qualifier, ref.name)
            except PlanningError:
                continue
            origin = schema.fields[position].origin
            if origin is None or origin[0] != table_name:
                continue
            entry = bounds.setdefault(origin[1], [None, None])
            value = -form.constant
            if op in ("<", "<="):
                entry[1] = value if entry[1] is None else min(entry[1], value)
            else:
                entry[0] = value if entry[0] is None else max(entry[0], value)
        table_stats = self._stats.get(table_name)
        if table_stats is None:
            return
        for column, (low, high) in bounds.items():
            column_stats = table_stats.column(column)
            if column_stats is None:
                continue
            yield column, column_stats.range_fraction(low, high)

    # -- scans and filters ------------------------------------------------

    def _table_rows(self, node: LogicalScan) -> float:
        stats = self._stats.get(node.table.name)
        if stats is not None:
            return float(stats.row_count)
        return float(len(node.table))

    def _lower_scan(self, node: LogicalScan,
                    conjuncts: list[Expr]) -> PhysicalNode:
        """Plan base-table access for *node* filtered by *conjuncts*."""
        table = node.table
        base_rows = self._table_rows(node)
        access: PhysicalNode | None = None
        residual = list(conjuncts)
        if self._options.use_indexes and conjuncts:
            choice = self._choose_index(node, conjuncts)
            if choice is not None:
                index, key_range, used = choice
                access = IndexRangeScan(table, node.schema, index, key_range)
                matching = float(index.count(key_range))
                access.estimated_rows = matching
                access.estimated_cost = self._cost.index_scan(matching)
                residual = [c for c in conjuncts if c not in used]
        if access is None:
            access = SeqScan(table, node.schema)
            access.estimated_rows = base_rows
            access.estimated_cost = self._cost.seq_scan(base_rows)
            # Zone-map pruning specs: every ``col op literal`` conjunct
            # lets a disk-backed scan skip pages whose min/max disprove
            # it. Attribute-only (no tree-shape change), so shard walk
            # indices and the plan cache stay valid; zones are consulted
            # at execution time.
            access.prune = [
                (node.schema.resolve(ref.qualifier, ref.name), op, value)
                for ref, op, value in
                (self._parse_range_conjunct(c, node) or (None,) * 3
                 for c in conjuncts)
                if ref is not None]
        if not residual:
            return access
        predicate = and_all(residual)
        bound = predicate.bind(node.schema.resolver())
        op = FilterOp(access, predicate, bound)
        # Conditional selectivity: the index range already enforced part
        # of the predicate, so estimate the residual as
        # P(all conjuncts) / P(index range) rather than multiplying the
        # overlapping restriction in twice (matters for the expanded
        # rewrite's "bound AND (s OR cc)" shape, where the factored bound
        # repeats inside the disjunction).
        joint = self._estimator.selectivity(and_all(conjuncts), node.schema)
        access_fraction = max(access.estimated_rows / max(base_rows, 1.0),
                              1e-9)
        selectivity = min(1.0, joint / access_fraction)
        op.estimated_rows = max(1.0, access.estimated_rows * selectivity)
        op.estimated_cost = (access.estimated_cost
                             + self._cost.filter(access.estimated_rows,
                                                 len(residual)))
        return op

    def _choose_index(self, node: LogicalScan, conjuncts: list[Expr]):
        """Pick the most selective usable index, or None.

        Returns (index, key_range, conjuncts-consumed).
        """
        by_column: dict[str, list[tuple[Expr, str, object]]] = {}
        for conjunct in conjuncts:
            parsed = self._parse_range_conjunct(conjunct, node)
            if parsed is None:
                continue
            ref, op, value = parsed
            by_column.setdefault(ref.name, []).append((conjunct, op, value))
        best = None
        for column, entries in by_column.items():
            index = node.table.index_on(column)
            if index is None:
                continue
            key_range = IndexRange()
            used: list[Expr] = []
            for conjunct, op, value in entries:
                if op == "=":
                    if (key_range.low is None or value > key_range.low):
                        key_range.low = value
                        key_range.low_inclusive = True
                    if (key_range.high is None or value < key_range.high):
                        key_range.high = value
                        key_range.high_inclusive = True
                elif op in (">", ">="):
                    if key_range.low is None or value >= key_range.low:
                        key_range.low = value
                        key_range.low_inclusive = op == ">="
                else:  # "<", "<="
                    if key_range.high is None or value <= key_range.high:
                        key_range.high = value
                        key_range.high_inclusive = op == "<="
                used.append(conjunct)
            if key_range.low is None and key_range.high is None:
                continue
            matching = index.count(key_range)
            if best is None or matching < best[3]:
                best = (index, key_range, used, matching)
        if best is None:
            return None
        index, key_range, used, matching = best
        # An index scan that matches nearly everything is slower than a
        # sequential scan; fall back in that case. The comparison uses
        # the statistics row count (like every other estimate), not the
        # live list length — under pinned snapshot statistics the live
        # table may already be longer, and the plan choice must be
        # reproducible from the pinned state alone.
        if matching > 0.8 * max(self._table_rows(node), 1.0):
            return None
        return index, key_range, used

    def _parse_range_conjunct(self, conjunct: Expr, node: LogicalScan):
        """Decompose ``col op literal`` (either side) or return None."""
        if not isinstance(conjunct, BinaryOp):
            return None
        if conjunct.op not in ("=", "<", "<=", ">", ">="):
            return None
        left, right, op = conjunct.left, conjunct.right, conjunct.op
        if not isinstance(left, ColumnRef) and isinstance(right, ColumnRef):
            flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}
            left, right = right, left
            op = flipped.get(op, op)
        if not isinstance(left, ColumnRef):
            return None
        if not node.schema.has(left.qualifier, left.name):
            return None
        value = SelectivityEstimator._as_literal(right)
        if value is None:
            return None
        return left, op, value

    def _lower_filter(self, node: LogicalFilter) -> PhysicalNode:
        conjuncts = split_conjuncts(node.predicate)
        if isinstance(node.child, LogicalScan):
            return self._lower_scan(node.child, conjuncts)
        child = self._lower(node.child)
        # Bind against the *physical* child schema: join reordering may
        # lay fields out differently from the logical child.
        bound = node.predicate.bind(child.schema.resolver())
        op = FilterOp(child, node.predicate, bound)
        selectivity = self._estimator.selectivity(node.predicate,
                                                  child.schema)
        op.estimated_rows = max(1.0, child.estimated_rows * selectivity)
        op.estimated_cost = (child.estimated_cost
                             + self._cost.filter(child.estimated_rows,
                                                 len(conjuncts)))
        return op

    # -- project ----------------------------------------------------------

    def _lower_project(self, node: LogicalProject) -> PhysicalNode:
        child = self._lower(node.child)
        resolver = child.schema.resolver()
        bound_items = [expr.bind(resolver) for expr, _ in node.items]
        passthrough: dict[int, int] = {}
        for out_position, (expr, _) in enumerate(node.items):
            if isinstance(expr, ColumnRef):
                passthrough[out_position] = child.schema.resolve(
                    expr.qualifier, expr.name)
        op = ProjectOp(child, node.schema, bound_items, passthrough,
                       item_exprs=[expr for expr, _ in node.items])
        op.estimated_rows = child.estimated_rows
        op.estimated_cost = (child.estimated_cost
                             + self._cost.project(child.estimated_rows,
                                                  len(node.items)))
        return op

    # -- joins -------------------------------------------------------------

    def _lower_join_tree(self, node: LogicalJoin) -> PhysicalNode:
        if node.kind == "left":
            return self._lower_single_join(node)
        leaves: list[LogicalNode] = []
        predicates: list[Expr] = []
        self._flatten_inner_joins(node, leaves, predicates)
        if len(leaves) == 1:
            raise PlanningError("inner join flattening produced one leaf")
        relations = [self._lower(leaf) for leaf in leaves]
        return self._greedy_join(relations, predicates)

    def _flatten_inner_joins(self, node: LogicalNode,
                             leaves: list[LogicalNode],
                             predicates: list[Expr]) -> None:
        if isinstance(node, LogicalJoin) and node.kind == "inner":
            self._flatten_inner_joins(node.left, leaves, predicates)
            self._flatten_inner_joins(node.right, leaves, predicates)
            predicates.extend(split_conjuncts(node.condition))
        else:
            leaves.append(node)

    def _schema_resolves(self, expr: Expr, schema) -> bool:
        return all(schema.has(ref.qualifier, ref.name)
                   for ref in expr.referenced_columns())

    def _column_ndv(self, ref: ColumnRef, schema) -> float | None:
        try:
            position = schema.resolve(ref.qualifier, ref.name)
        except PlanningError:
            return None
        origin = schema.fields[position].origin
        if origin is None:
            return None
        table_stats = self._stats.get(origin[0])
        if table_stats is None:
            return None
        column_stats = table_stats.column(origin[1])
        return float(column_stats.ndv) if column_stats else None

    def _estimate_join_rows(self, left: PhysicalNode, right: PhysicalNode,
                            equi_pairs: list[tuple[Expr, Expr]],
                            residual_count: int) -> float:
        rows = left.estimated_rows * right.estimated_rows
        for left_key, right_key in equi_pairs:
            left_ndv = (self._column_ndv(left_key, left.schema)
                        if isinstance(left_key, ColumnRef) else None)
            right_ndv = (self._column_ndv(right_key, right.schema)
                         if isinstance(right_key, ColumnRef) else None)
            candidates = [ndv for ndv in (left_ndv, right_ndv)
                          if ndv and ndv > 0]
            divisor = max(candidates) if candidates else 10.0
            rows /= divisor
        rows *= (1.0 / 3.0) ** residual_count
        return max(rows, 1.0)

    def _split_join_predicate(self, predicate: Expr, left: PhysicalNode,
                              right: PhysicalNode):
        """Classify one conjunct as an equi-pair or residual, if applicable.

        Returns ("equi", (left_expr, right_expr)) with sides oriented to
        (left, right); ("residual", predicate); or None when the conjunct
        does not resolve over the pair.
        """
        combined = left.schema.concat(right.schema)
        if not self._schema_resolves(predicate, combined):
            return None
        if isinstance(predicate, BinaryOp) and predicate.op == "=":
            first, second = predicate.left, predicate.right
            if self._schema_resolves(first, left.schema) \
                    and self._schema_resolves(second, right.schema):
                return "equi", (first, second)
            if self._schema_resolves(second, left.schema) \
                    and self._schema_resolves(first, right.schema):
                return "equi", (second, first)
        return "residual", predicate

    def _build_hash_join(self, left: PhysicalNode, right: PhysicalNode,
                         equi_pairs: list[tuple[Expr, Expr]],
                         residuals: list[Expr],
                         kind: str = "inner") -> PhysicalNode:
        schema = left.schema.concat(right.schema)
        if equi_pairs:
            left_keys = [expr.bind(left.schema.resolver())
                         for expr, _ in equi_pairs]
            right_keys = [expr.bind(right.schema.resolver())
                          for _, expr in equi_pairs]
            residual_expr = and_all(residuals)
            bound_residual = (residual_expr.bind(schema.resolver())
                              if residual_expr is not None else None)
            op: PhysicalNode = HashJoinOp(
                left, right, schema, left_keys, right_keys, kind,
                bound_residual, residual_expr,
                left_key_exprs=[expr for expr, _ in equi_pairs],
                right_key_exprs=[expr for _, expr in equi_pairs])
            cost = self._cost.hash_join(right.estimated_rows,
                                        left.estimated_rows, 0.0)
        else:
            condition_expr = and_all(residuals)
            bound = (condition_expr.bind(schema.resolver())
                     if condition_expr is not None else None)
            op = NestedLoopJoinOp(left, right, schema, bound,
                                  condition_expr, kind)
            cost = self._cost.nested_loop_join(left.estimated_rows,
                                               right.estimated_rows)
        op.estimated_rows = self._estimate_join_rows(
            left, right, equi_pairs, len(residuals))
        if kind == "left":
            op.estimated_rows = max(op.estimated_rows, left.estimated_rows)
        op.estimated_cost = (left.estimated_cost + right.estimated_cost
                             + cost)
        return op

    def _greedy_join(self, relations: list[PhysicalNode],
                     predicates: list[Expr]) -> PhysicalNode:
        remaining_predicates = list(predicates)
        remaining = list(relations)
        # Start from the relation with the smallest estimated cardinality.
        current = min(remaining, key=lambda rel: rel.estimated_rows)
        remaining.remove(current)
        while remaining:
            best_choice = None
            for candidate in remaining:
                equi_pairs: list[tuple[Expr, Expr]] = []
                residuals: list[Expr] = []
                for predicate in remaining_predicates:
                    classified = self._split_join_predicate(
                        predicate, current, candidate)
                    if classified is None:
                        continue
                    kind, payload = classified
                    if kind == "equi":
                        equi_pairs.append(payload)
                    else:
                        residuals.append(payload)
                connected = bool(equi_pairs or residuals)
                rows = self._estimate_join_rows(current, candidate,
                                                equi_pairs, len(residuals))
                ranking = (not connected, rows, candidate.estimated_rows)
                if best_choice is None or ranking < best_choice[0]:
                    best_choice = (ranking, candidate, equi_pairs, residuals)
            _, candidate, equi_pairs, residuals = best_choice
            remaining_predicates = [
                predicate for predicate in remaining_predicates
                if self._split_join_predicate(predicate, current,
                                              candidate) is None]
            # Orient the hash join so the smaller input is the build side.
            if candidate.estimated_rows <= current.estimated_rows:
                current = self._build_hash_join(current, candidate,
                                                equi_pairs, residuals)
            else:
                flipped = [(right, left) for left, right in equi_pairs]
                current = self._build_hash_join(candidate, current,
                                                flipped, residuals)
            remaining.remove(candidate)
        if remaining_predicates:
            predicate = and_all(remaining_predicates)
            bound = predicate.bind(current.schema.resolver())
            filtered = FilterOp(current, predicate, bound)
            selectivity = self._estimator.selectivity(predicate,
                                                      current.schema)
            filtered.estimated_rows = max(
                1.0, current.estimated_rows * selectivity)
            filtered.estimated_cost = (
                current.estimated_cost
                + self._cost.filter(current.estimated_rows,
                                    len(remaining_predicates)))
            current = filtered
        return current

    def _lower_single_join(self, node: LogicalJoin) -> PhysicalNode:
        left = self._lower(node.left)
        right = self._lower(node.right)
        equi_pairs: list[tuple[Expr, Expr]] = []
        residuals: list[Expr] = []
        for predicate in split_conjuncts(node.condition):
            classified = self._split_join_predicate(predicate, left, right)
            if classified is None:
                raise PlanningError(
                    f"join condition {predicate.to_sql()} does not resolve "
                    "over the join inputs")
            kind, payload = classified
            if kind == "equi":
                equi_pairs.append(payload)
            else:
                residuals.append(payload)
        return self._build_hash_join(left, right, equi_pairs, residuals,
                                     node.kind)

    # -- semi join -----------------------------------------------------------

    def _lower_semi_join(self, node: LogicalSemiJoin) -> PhysicalNode:
        left = self._lower(node.left)
        right = self._lower(node.right)
        bound = node.left_expr.bind(left.schema.resolver())
        op = SemiJoinOp(left, right, node.left_expr, bound, node.negated)
        fraction = 0.5
        if isinstance(node.left_expr, ColumnRef):
            ndv = self._column_ndv(node.left_expr, node.left.schema)
            if ndv:
                fraction = min(1.0, right.estimated_rows / ndv)
        if node.negated:
            fraction = 1.0 - fraction
        op.estimated_rows = max(1.0, left.estimated_rows * fraction)
        op.estimated_cost = (left.estimated_cost + right.estimated_cost
                             + self._cost.semi_join(right.estimated_rows,
                                                    left.estimated_rows))
        return op

    # -- aggregate / window ----------------------------------------------

    def _lower_aggregate(self, node: LogicalAggregate) -> PhysicalNode:
        child = self._lower(node.child)
        resolver = child.schema.resolver()
        group_keys = [expr.bind(resolver) for expr, _ in node.group]
        specs = []
        for call, _ in node.aggregates:
            argument = (call.argument.bind(resolver)
                        if call.argument is not None else None)
            specs.append((call.name, argument, call.distinct))
        op = AggregateOp(child, node.schema, group_keys, specs,
                         group_exprs=[expr for expr, _ in node.group],
                         argument_exprs=[call.argument
                                         for call, _ in node.aggregates])
        group_rows = 1.0
        for expr, _ in node.group:
            ndv = (self._column_ndv(expr, node.child.schema)
                   if isinstance(expr, ColumnRef) else None)
            group_rows *= ndv if ndv else 10.0
        op.estimated_rows = max(1.0, min(group_rows, child.estimated_rows))
        op.estimated_cost = (child.estimated_cost
                             + self._cost.aggregate(child.estimated_rows,
                                                    len(specs)))
        return op

    def _required_window_ordering(self, node: LogicalWindow,
                                  schema) -> Ordering | None:
        """The (position, asc) order a window needs, if key columns allow.

        Positions refer to *schema* (the physical child's). Returns None
        when partition/order keys are not plain column references, in
        which case order sharing cannot be proven.
        """
        required: list[tuple[int, bool]] = []
        for expr in node.partition_by:
            if not isinstance(expr, ColumnRef):
                return None
            required.append((schema.resolve(expr.qualifier, expr.name), True))
        for spec in node.order_by:
            if not isinstance(spec.expr, ColumnRef):
                return None
            required.append((schema.resolve(spec.expr.qualifier,
                                            spec.expr.name),
                             spec.ascending))
        return tuple(required)

    def _lower_window(self, node: LogicalWindow) -> PhysicalNode:
        child = self._lower(node.child)
        resolver = child.schema.resolver()
        partition_keys = [expr.bind(resolver) for expr in node.partition_by]
        order_keys = [(spec.expr.bind(resolver), spec.ascending)
                      for spec in node.order_by]
        specs = []
        for call, _ in node.functions:
            argument = (call.argument.bind(resolver)
                        if call.argument is not None else None)
            specs.append(WindowFuncSpec(call.name, argument, call.frame,
                                        has_order=bool(node.order_by),
                                        offset=call.offset))
        required = self._required_window_ordering(node, child.schema)
        presorted = False
        if required is not None and self._options.order_sharing:
            presorted = child.ordering[:len(required)] == required
        ordering_out: Ordering = child.ordering if presorted else \
            (required or ())
        window_schema = child.schema
        for _, name in node.functions:
            position = node.schema.resolve(None, name)
            window_schema = window_schema.append(node.schema.fields[position])
        op = WindowOp(child, window_schema, partition_keys, order_keys,
                      specs, presorted=presorted, ordering=ordering_out,
                      naive=self._options.naive_windows,
                      parallel=self._options.parallel_windows,
                      partition_exprs=list(node.partition_by),
                      order_exprs=[spec.expr for spec in node.order_by],
                      argument_exprs=[call.argument
                                      for call, _ in node.functions])
        op.estimated_rows = child.estimated_rows
        op.estimated_cost = (child.estimated_cost
                             + self._cost.window(child.estimated_rows,
                                                 len(specs),
                                                 needs_sort=not presorted))
        return op

    # -- sort ---------------------------------------------------------------

    def _lower_sort(self, node: LogicalSort) -> PhysicalNode:
        child = self._lower(node.child)
        schema = child.schema
        target: list[tuple[int, bool]] = []
        all_columns = True
        for spec in node.keys:
            if isinstance(spec.expr, ColumnRef):
                target.append((schema.resolve(spec.expr.qualifier,
                                              spec.expr.name),
                               spec.ascending))
            else:
                all_columns = False
                break
        if all_columns and self._options.order_sharing \
                and child.ordering[:len(target)] == tuple(target):
            return child
        resolver = schema.resolver()
        keys = [(spec.expr.bind(resolver), spec.ascending)
                for spec in node.keys]
        ordering = tuple(target) if all_columns else ()
        op = SortOp(child, keys, ordering,
                    key_exprs=[spec.expr for spec in node.keys])
        op.estimated_rows = child.estimated_rows
        op.estimated_cost = (child.estimated_cost
                             + self._cost.sort(child.estimated_rows))
        return op
