"""Logical rewrite rules: predicate pushdown.

The pushdown pass sinks WHERE conjuncts as close to base tables as
semantics allow. The interesting rule — and the one the paper's whole
rewrite problem revolves around — is the **window barrier**: a predicate
may only move below a Window node when it references nothing but the
window's PARTITION BY columns, because removing rows from a sequence
changes every frame computed over that sequence. Predicates over the
sequence key (e.g. ``rtime < T1``) therefore stay above cleansing
windows; relocating them correctly is the job of the deferred-cleansing
rewrite engine, not the DBMS optimizer (Section 5.1 of the paper makes
exactly this point).
"""

from __future__ import annotations

from repro.minidb.expressions import ColumnRef, Expr, and_all
from repro.minidb.plan.builder import split_conjuncts
from repro.minidb.plan.logical import (
    LogicalAggregate,
    LogicalDistinct,
    LogicalFilter,
    LogicalJoin,
    LogicalLimit,
    LogicalNode,
    LogicalProject,
    LogicalRequalify,
    LogicalScan,
    LogicalSemiJoin,
    LogicalSort,
    LogicalUnion,
    LogicalWindow,
)

__all__ = ["push_down_filters"]


def push_down_filters(node: LogicalNode) -> LogicalNode:
    """Return an equivalent plan with filters pushed toward the leaves."""
    return _push(node, [])


def _wrap(node: LogicalNode, conjuncts: list[Expr]) -> LogicalNode:
    predicate = and_all(conjuncts)
    if predicate is None:
        return node
    return LogicalFilter(node, predicate)


def _resolves(conjunct: Expr, node: LogicalNode) -> bool:
    """Whether every column reference of *conjunct* resolves in *node*."""
    for ref in conjunct.referenced_columns():
        if not node.schema.has(ref.qualifier, ref.name):
            return False
    return True


def _push(node: LogicalNode, conjuncts: list[Expr]) -> LogicalNode:
    """Push *conjuncts* (valid over node's output) into *node*.

    Returns a plan equivalent to ``Filter(conjuncts, node)`` with every
    conjunct placed as low as its semantics allow.
    """
    if isinstance(node, LogicalFilter):
        return _push(node.child, conjuncts + split_conjuncts(node.predicate))

    if isinstance(node, LogicalScan):
        return _wrap(node, conjuncts)

    if isinstance(node, LogicalJoin):
        return _push_join(node, conjuncts)

    if isinstance(node, LogicalSemiJoin):
        sinkable = [c for c in conjuncts if _resolves(c, node.left)]
        kept = [c for c in conjuncts if c not in sinkable]
        left = _push(node.left, sinkable)
        right = _push(node.right, [])
        return _wrap(
            LogicalSemiJoin(left, right, node.left_expr, node.negated), kept)

    if isinstance(node, LogicalProject):
        return _push_project(node, conjuncts)

    if isinstance(node, LogicalWindow):
        return _push_window(node, conjuncts)

    if isinstance(node, LogicalAggregate):
        return _push_aggregate(node, conjuncts)

    if isinstance(node, LogicalRequalify):
        rebound = [_rebind_by_position(c, node.schema, node.child.schema)
                   for c in conjuncts]
        return LogicalRequalify(_push(node.child, rebound), node.binding)

    if isinstance(node, LogicalDistinct):
        return LogicalDistinct(_push(node.child, conjuncts))

    if isinstance(node, LogicalSort):
        return LogicalSort(_push(node.child, conjuncts), node.keys)

    if isinstance(node, LogicalLimit):
        # Filtering after LIMIT is not the same as before it: stop here.
        return _wrap(LogicalLimit(_push(node.child, []), node.count),
                     conjuncts)

    if isinstance(node, LogicalUnion):
        left_conjuncts = [
            _rebind_by_position(c, node.schema, node.left.schema)
            for c in conjuncts]
        right_conjuncts = [
            _rebind_by_position(c, node.schema, node.right.schema)
            for c in conjuncts]
        return LogicalUnion(_push(node.left, left_conjuncts),
                            _push(node.right, right_conjuncts),
                            node.all_rows)

    # Unknown node kind: be conservative.
    return _wrap(node, conjuncts)


def _rebind_by_position(conjunct: Expr, outer, inner) -> Expr:
    """Rewrite refs valid over *outer* schema into refs over *inner*.

    The two schemas must be positionally aligned (Requalify, Union).
    """
    mapping: dict[Expr, Expr] = {}
    for ref in conjunct.referenced_columns():
        position = outer.resolve(ref.qualifier, ref.name)
        target = inner.fields[position]
        mapping[ref] = ColumnRef(target.name, target.qualifier)
    return conjunct.substitute(mapping)


def _push_join(node: LogicalJoin, conjuncts: list[Expr]) -> LogicalNode:
    all_conjuncts = list(conjuncts)
    join_condition_conjuncts = split_conjuncts(node.condition)
    if node.kind == "inner":
        all_conjuncts.extend(join_condition_conjuncts)
        left_sink: list[Expr] = []
        right_sink: list[Expr] = []
        remaining: list[Expr] = []
        for conjunct in all_conjuncts:
            if _resolves(conjunct, node.left):
                left_sink.append(conjunct)
            elif _resolves(conjunct, node.right):
                right_sink.append(conjunct)
            else:
                remaining.append(conjunct)
        left = _push(node.left, left_sink)
        right = _push(node.right, right_sink)
        return LogicalJoin(left, right, "inner", and_all(remaining))
    # LEFT JOIN: conjuncts from above may only sink to the preserved
    # (left) side; the ON condition stays put.
    left_sink = [c for c in conjuncts if _resolves(c, node.left)]
    kept = [c for c in conjuncts if c not in left_sink]
    left = _push(node.left, left_sink)
    right = _push(node.right, [])
    return _wrap(LogicalJoin(left, right, "left", node.condition), kept)


def _push_project(node: LogicalProject,
                  conjuncts: list[Expr]) -> LogicalNode:
    item_by_name = {name: expr for expr, name in node.items}
    sinkable: list[Expr] = []
    kept: list[Expr] = []
    for conjunct in conjuncts:
        mapping: dict[Expr, Expr] = {}
        ok = True
        for ref in conjunct.referenced_columns():
            source = item_by_name.get(ref.name)
            if source is None or ref.qualifier is not None:
                ok = False
                break
            mapping[ref] = source
        if ok:
            sinkable.append(conjunct.substitute(mapping))
        else:
            kept.append(conjunct)
    child = _push(node.child, sinkable)
    return _wrap(LogicalProject(child, node.items), kept)


def _push_window(node: LogicalWindow, conjuncts: list[Expr]) -> LogicalNode:
    """Sink only conjuncts restricted to the PARTITION BY columns.

    Removing whole partitions cannot change any window result inside the
    surviving partitions; removing anything else can (the paper's
    Section 5.1 counterexamples).
    """
    partition_positions: set[int] = set()
    partition_is_columns = True
    for expr in node.partition_by:
        if isinstance(expr, ColumnRef):
            partition_positions.add(
                node.child.schema.resolve(expr.qualifier, expr.name))
        else:
            partition_is_columns = False
            break
    sinkable: list[Expr] = []
    kept: list[Expr] = []
    for conjunct in conjuncts:
        if not partition_is_columns:
            kept.append(conjunct)
            continue
        positions = set()
        resolvable = True
        for ref in conjunct.referenced_columns():
            if not node.child.schema.has(ref.qualifier, ref.name):
                resolvable = False
                break
            positions.add(node.child.schema.resolve(ref.qualifier, ref.name))
        if resolvable and positions and positions <= partition_positions:
            sinkable.append(conjunct)
        else:
            kept.append(conjunct)
    child = _push(node.child, sinkable)
    return _wrap(LogicalWindow(child, node.functions), kept)


def _push_aggregate(node: LogicalAggregate,
                    conjuncts: list[Expr]) -> LogicalNode:
    group_sources = {name: expr for expr, name in node.group}
    sinkable: list[Expr] = []
    kept: list[Expr] = []
    for conjunct in conjuncts:
        mapping: dict[Expr, Expr] = {}
        ok = True
        for ref in conjunct.referenced_columns():
            source = group_sources.get(ref.name)
            if source is None or ref.qualifier is not None:
                ok = False
                break
            mapping[ref] = source
        if ok:
            sinkable.append(conjunct.substitute(mapping))
        else:
            kept.append(conjunct)
    child = _push(node.child, sinkable)
    return _wrap(LogicalAggregate(child, node.group, node.aggregates), kept)
