"""Selectivity and cardinality estimation.

Estimates are deliberately textbook-simple (System-R style): per-conjunct
selectivities multiplied with independence assumed, equality 1/NDV,
ranges from histograms, equi-joins 1/max(NDV). What matters for the
reproduction is that the estimates *rank* candidate rewrites sensibly —
the rewrite engine picks among m+1 candidate statements by comparing
root-plan costs, exactly as the paper does with DB2's estimates.
"""

from __future__ import annotations

from repro.minidb.expressions import (
    BinaryOp,
    ColumnRef,
    Expr,
    FuncCall,
    InList,
    InSubquery,
    IsNull,
    Literal,
    UnaryOp,
)
from repro.minidb.optimizer.stats import ColumnStats, StatsRepository
from repro.minidb.plan.planschema import PlanSchema

__all__ = ["SelectivityEstimator", "DEFAULT_SELECTIVITY"]

#: Fallback selectivity for predicates the estimator cannot analyze.
DEFAULT_SELECTIVITY = 1.0 / 3.0
#: Floor applied to every estimate to avoid zero-cardinality plans.
MIN_SELECTIVITY = 1e-6


class SelectivityEstimator:
    """Estimates predicate selectivities against plan schemas."""

    def __init__(self, stats: StatsRepository) -> None:
        self._stats = stats

    # ------------------------------------------------------------------

    def _column_stats(self, ref: ColumnRef,
                      schema: PlanSchema) -> ColumnStats | None:
        stats = self._column_stats_with_rows(ref, schema)
        return stats[0] if stats else None

    def _column_stats_with_rows(
            self, ref: ColumnRef,
            schema: PlanSchema) -> tuple[ColumnStats, int] | None:
        try:
            position = schema.resolve(ref.qualifier, ref.name)
        except Exception:
            return None
        origin = schema.fields[position].origin
        if origin is None:
            return None
        table_stats = self._stats.get(origin[0])
        if table_stats is None:
            return None
        column_stats = table_stats.column(origin[1])
        if column_stats is None:
            return None
        return column_stats, table_stats.row_count

    @staticmethod
    def _as_literal(expr: Expr):
        """Fold Literal and simple literal arithmetic to a Python value."""
        if isinstance(expr, Literal):
            return expr.value
        if isinstance(expr, UnaryOp) and expr.op == "-":
            inner = SelectivityEstimator._as_literal(expr.operand)
            return None if inner is None else -inner
        if isinstance(expr, BinaryOp) and expr.op in ("+", "-", "*", "/"):
            left = SelectivityEstimator._as_literal(expr.left)
            right = SelectivityEstimator._as_literal(expr.right)
            if left is None or right is None:
                return None
            if expr.op == "+":
                return left + right
            if expr.op == "-":
                return left - right
            if expr.op == "*":
                return left * right
            return left / right if right else None
        return None

    # ------------------------------------------------------------------

    def selectivity(self, predicate: Expr, schema: PlanSchema) -> float:
        """Estimated fraction of rows satisfying *predicate*."""
        estimate = self._selectivity(predicate, schema)
        return min(1.0, max(MIN_SELECTIVITY, estimate))

    def _selectivity(self, predicate: Expr, schema: PlanSchema) -> float:
        if isinstance(predicate, BinaryOp):
            if predicate.op == "and":
                return (self._selectivity(predicate.left, schema)
                        * self._selectivity(predicate.right, schema))
            if predicate.op == "or":
                left = self._selectivity(predicate.left, schema)
                right = self._selectivity(predicate.right, schema)
                return left + right - left * right
            if predicate.op in ("=", "!=", "<", "<=", ">", ">="):
                return self._comparison_selectivity(predicate, schema)
        if isinstance(predicate, UnaryOp) and predicate.op == "not":
            return 1.0 - self._selectivity(predicate.operand, schema)
        if isinstance(predicate, InList):
            return self._in_list_selectivity(predicate, schema)
        if isinstance(predicate, InSubquery):
            return DEFAULT_SELECTIVITY
        if isinstance(predicate, IsNull):
            return self._is_null_selectivity(predicate, schema)
        if isinstance(predicate, FuncCall) and predicate.name == "like":
            return 0.1
        if isinstance(predicate, Literal):
            return 1.0 if predicate.value is True else 0.0
        return DEFAULT_SELECTIVITY

    def _comparison_selectivity(self, predicate: BinaryOp,
                                schema: PlanSchema) -> float:
        left, right = predicate.left, predicate.right
        op = predicate.op
        if not isinstance(left, ColumnRef) and isinstance(right, ColumnRef):
            flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}
            op = flipped.get(op, op)
            left, right = right, left
        if isinstance(left, ColumnRef) and isinstance(right, ColumnRef):
            left_stats = self._column_stats(left, schema)
            right_stats = self._column_stats(right, schema)
            if op == "=":
                left_ndv = left_stats.ndv if left_stats else 0
                right_ndv = right_stats.ndv if right_stats else 0
                largest = max(left_ndv, right_ndv)
                return 1.0 / largest if largest else DEFAULT_SELECTIVITY
            return DEFAULT_SELECTIVITY
        if isinstance(left, ColumnRef):
            value = self._as_literal(right)
            if value is None:
                return DEFAULT_SELECTIVITY
            stats = self._column_stats(left, schema)
            if stats is None:
                return DEFAULT_SELECTIVITY
            if op == "=":
                return 1.0 / stats.ndv if stats.ndv else 0.0
            if op == "!=":
                return 1.0 - (1.0 / stats.ndv if stats.ndv else 0.0)
            if op in ("<", "<="):
                return stats.range_fraction(None, value)
            return stats.range_fraction(value, None)
        return DEFAULT_SELECTIVITY

    def _in_list_selectivity(self, predicate: InList,
                             schema: PlanSchema) -> float:
        if not isinstance(predicate.operand, ColumnRef):
            return DEFAULT_SELECTIVITY
        stats = self._column_stats(predicate.operand, schema)
        if stats is None or not stats.ndv:
            return DEFAULT_SELECTIVITY
        base = min(1.0, len(predicate.items) / stats.ndv)
        return 1.0 - base if predicate.negated else base

    def _is_null_selectivity(self, predicate: IsNull,
                             schema: PlanSchema) -> float:
        if not isinstance(predicate.operand, ColumnRef):
            return DEFAULT_SELECTIVITY
        resolved = self._column_stats_with_rows(predicate.operand, schema)
        if resolved is None:
            return 0.05
        stats, row_count = resolved
        fraction = stats.null_count / row_count if row_count else 0.0
        return 1.0 - fraction if predicate.negated else fraction
