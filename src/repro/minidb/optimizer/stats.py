"""Table and column statistics.

Statistics are computed by :func:`analyze_table` (the engine runs it
after bulk loads, like ``RUNSTATS`` on DB2) and consumed by the
cardinality estimator. Per column we keep the number of distinct values,
the null count, min/max, and an equi-depth histogram for orderable
types.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.minidb.table import Table
from repro.minidb.types import SqlType

__all__ = ["ColumnStats", "TableStats", "analyze_table", "StatsRepository"]

#: Number of equi-depth buckets kept per column histogram.
HISTOGRAM_BUCKETS = 64


@dataclass
class ColumnStats:
    """Summary statistics for one column."""

    ndv: int
    null_count: int
    min_value: object | None
    max_value: object | None
    #: Equi-depth bucket upper bounds (sorted); empty for unorderable data.
    histogram: list = field(default_factory=list)

    def range_fraction(self, low, high, *, low_inclusive: bool = True,
                       high_inclusive: bool = True) -> float:
        """Estimated fraction of non-null values inside [low, high].

        Uses the equi-depth histogram when present, otherwise linear
        interpolation over [min, max]. Open/closed bounds are treated
        identically (the estimator works at bucket granularity).
        """
        if self.min_value is None or self.max_value is None:
            return 0.0
        effective_low = self.min_value if low is None else low
        effective_high = self.max_value if high is None else high
        if effective_low > effective_high:
            return 0.0
        if self.histogram:
            total = len(self.histogram)
            covered = sum(
                1 for bound in self.histogram
                if effective_low <= bound <= effective_high)
            if covered:
                return covered / total
            # Bounds fall inside a single bucket.
            return min(1.0, 1.0 / total)
        span = self.max_value - self.min_value
        if not isinstance(span, (int, float)) or span <= 0:
            return 1.0
        clipped_low = max(effective_low, self.min_value)
        clipped_high = min(effective_high, self.max_value)
        if clipped_low > clipped_high:
            return 0.0
        return (clipped_high - clipped_low) / span


@dataclass
class TableStats:
    """Statistics for one table."""

    row_count: int
    columns: dict[str, ColumnStats] = field(default_factory=dict)
    #: key column -> order column -> average per-group span as a fraction
    #: of the order column's global span. Captures sequence clustering:
    #: for RFID reads, each EPC's lifetime covers a tiny fraction of the
    #: 5-year window, which is what makes an rtime range prune most
    #: sequences (the paper's §6.2 correlation observation).
    span_fractions: dict[str, dict[str, float]] = field(default_factory=dict)

    def column(self, name: str) -> ColumnStats | None:
        return self.columns.get(name.lower())

    def span_fraction(self, key_column: str,
                      order_column: str) -> float | None:
        by_order = self.span_fractions.get(key_column.lower())
        if by_order is None:
            return None
        return by_order.get(order_column.lower())


def analyze_table(table: Table) -> TableStats:
    """Compute fresh :class:`TableStats` for *table*."""
    stats = TableStats(row_count=len(table))
    for column in table.schema:
        values = []
        null_count = 0
        position = table.schema.position_of(column.name)
        for row in table.rows:
            value = row[position]
            if value is None:
                null_count += 1
            else:
                values.append(value)
        if not values:
            stats.columns[column.name] = ColumnStats(
                ndv=0, null_count=null_count, min_value=None, max_value=None)
            continue
        distinct = set(values)
        histogram: list = []
        if column.sql_type is not SqlType.BOOLEAN and len(values) > 1:
            ordered = sorted(values)
            buckets = min(HISTOGRAM_BUCKETS, len(ordered))
            histogram = [
                ordered[min(len(ordered) - 1,
                            (bucket + 1) * len(ordered) // buckets - 1)]
                for bucket in range(buckets)]
        stats.columns[column.name] = ColumnStats(
            ndv=len(distinct),
            null_count=null_count,
            min_value=min(distinct),
            max_value=max(distinct),
            histogram=histogram)
    _analyze_span_fractions(table, stats)
    return stats


def _analyze_span_fractions(table: Table, stats: TableStats) -> None:
    """Per-group span statistics for plausible (key, order) pairs.

    A key column must look like a grouping key (more than one value,
    average group size of at least ~3 rows); an order column must be a
    numeric/timestamp column with a non-degenerate range.
    """
    key_candidates = []
    order_candidates = []
    for column in table.schema:
        column_stats = stats.columns[column.name]
        if column_stats.ndv <= 1:
            continue
        if column.sql_type is SqlType.VARCHAR \
                and column_stats.ndv * 3 <= stats.row_count:
            key_candidates.append(column.name)
        if column.sql_type in (SqlType.TIMESTAMP, SqlType.INTEGER,
                               SqlType.DOUBLE):
            span = column_stats.max_value - column_stats.min_value
            if span and span > 0:
                order_candidates.append((column.name, span))
    for key_name in key_candidates:
        key_position = table.schema.position_of(key_name)
        for order_name, global_span in order_candidates:
            order_position = table.schema.position_of(order_name)
            extents: dict = {}
            for row in table.rows:
                key = row[key_position]
                value = row[order_position]
                if key is None or value is None:
                    continue
                extent = extents.get(key)
                if extent is None:
                    extents[key] = [value, value]
                elif value < extent[0]:
                    extent[0] = value
                elif value > extent[1]:
                    extent[1] = value
            if not extents:
                continue
            total = sum(high - low for low, high in extents.values())
            fraction = (total / len(extents)) / global_span
            stats.span_fractions.setdefault(key_name, {})[order_name] = \
                min(1.0, fraction)


class StatsRepository:
    """Stats per table name, recomputed on demand and cached.

    Entries produced by :meth:`analyze` remember the table's version at
    analysis time; :meth:`get` treats a version mismatch as staleness and
    returns None, so statistics never silently survive post-load inserts
    or index rebuilds. ``version`` counts every repository mutation and
    participates in the prepared-plan cache fingerprint.
    """

    def __init__(self) -> None:
        #: name -> (stats, source table or None, table version at analyze).
        self._stats: dict[str, tuple[TableStats, Table | None, int]] = {}
        self.version = 0
        #: Number of in-place append patches applied (observability).
        self.patches = 0

    def set(self, table_name: str, stats: TableStats) -> None:
        """Install externally computed stats (never treated as stale)."""
        self._stats[table_name.lower()] = (stats, None, -1)
        self.version += 1

    def get(self, table_name: str) -> TableStats | None:
        entry = self._stats.get(table_name.lower())
        if entry is None:
            return None
        stats, table, seen_version = entry
        if table is not None and table.version != seen_version:
            self.invalidate(table_name)
            return None
        return stats

    def analyze(self, table: Table) -> TableStats:
        stats = analyze_table(table)
        self._stats[table.name] = (stats, table, table.version)
        self.version += 1
        return stats

    def apply_append(self, table: Table, start: int) -> bool:
        """Patch cached stats in place for rows appended at *start*.

        Row count, null counts, and min/max are updated exactly. When
        the table has a warm dictionary-encoded column (see
        ``Table.encoded_ndv``) ndv is read exactly off the dictionary —
        the encoder already deduplicated every value; otherwise ndv
        becomes a lower-bound estimate (old ndv plus appended values that
        provably fall outside the old [min, max]). Histograms and span
        fractions are left as-is — for a trickle append they remain
        representative, and the next full :meth:`analyze` refreshes them.

        Crucially this does NOT bump ``self.version``: the patched stats
        are re-stamped with the table's current version, so prepared
        plans keyed on the stats epoch stay warm across small appends.
        Returns False when there is no fresh source-tracked entry to
        patch (caller should fall back to a full analyze).
        """
        entry = self._stats.get(table.name)
        if entry is None:
            return False
        stats, source, _seen_version = entry
        if source is not table:
            return False
        appended = table.rows[start:]
        stats.row_count = len(table.rows)
        for column in table.schema:
            column_stats = stats.columns.get(column.name)
            if column_stats is None:
                return False
            position = table.schema.position_of(column.name)
            outside = set()
            for row in appended:
                value = row[position]
                if value is None:
                    column_stats.null_count += 1
                    continue
                old_min = column_stats.min_value
                old_max = column_stats.max_value
                if old_min is None or value < old_min or value > old_max:
                    outside.add(value)
                if old_min is None or value < old_min:
                    column_stats.min_value = value
                if old_max is None or value > old_max:
                    column_stats.max_value = value
            exact_ndv = table.encoded_ndv(position)
            if exact_ndv is not None:
                column_stats.ndv = exact_ndv
            else:
                column_stats.ndv += len(outside)
        self._stats[table.name] = (stats, table, table.version)
        self.patches += 1
        return True

    def rebase(self, table: Table) -> bool:
        """Re-stamp a source-tracked entry after an in-place rewrite.

        For splice-style rewrites — the region cache re-cleansing a few
        cluster-key runs and swapping them into place — the value
        distribution is essentially unchanged, so a full re-analyze on
        the next plan would be wasted work. Only the row count is
        corrected; every other statistic is kept as a planner-grade
        approximation until the next full :meth:`analyze`. Like
        :meth:`apply_append` this does NOT bump ``self.version``, so
        prepared plans over the table stay warm. Returns False when
        there is no source-tracked entry for *table* (caller decides
        whether to fall back to a full analyze).
        """
        entry = self._stats.get(table.name)
        if entry is None:
            return False
        stats, source, _seen_version = entry
        if source is not table:
            return False
        stats.row_count = len(table.rows)
        self._stats[table.name] = (stats, table, table.version)
        self.patches += 1
        return True

    def invalidate(self, table_name: str) -> None:
        if self._stats.pop(table_name.lower(), None) is not None:
            self.version += 1
