"""The cost model.

Costs are abstract work units proportional to the row volume each
operator touches; constants reflect relative per-row expense in the
pure-Python executor (function-call dominated, so CPU constants matter
more than I/O as they would on disk). The absolute scale is irrelevant —
costs exist to *rank* plans and rewrites.
"""

from __future__ import annotations

import math

__all__ = ["CostModel"]


class CostModel:
    """Per-operator cost formulas; all take and return floats."""

    SCAN_ROW = 1.0
    INDEX_PROBE = 12.0       # descend cost per range scan
    INDEX_ROW = 1.1          # fetch per qualifying row
    FILTER_ROW = 0.3
    PROJECT_ROW = 0.3
    SORT_ROW_FACTOR = 0.6    # multiplied by log2(n)
    HASH_BUILD_ROW = 1.6
    HASH_PROBE_ROW = 1.1
    NESTED_LOOP_PAIR = 0.4
    WINDOW_ROW_PER_FN = 1.4
    AGGREGATE_ROW = 1.3
    DISTINCT_ROW = 0.9
    SEMI_BUILD_ROW = 1.0
    SEMI_PROBE_ROW = 0.8
    #: Marginal speedup per extra shard worker (dispatch + result-
    #: transfer overhead keeps scaling well below linear).
    PARALLEL_EFFICIENCY = 0.7
    #: Per-row cost of shipping a result tuple back from a worker.
    EXCHANGE_ROW = 0.05
    #: Fixed per-query dispatch cost of an Exchange (morsel setup,
    #: payload transfer, merge bookkeeping) — the pool fork itself is
    #: amortized across queries and not charged here.
    EXCHANGE_SETUP = 50.0

    def seq_scan(self, table_rows: float) -> float:
        return self.SCAN_ROW * table_rows

    def index_scan(self, matching_rows: float) -> float:
        return self.INDEX_PROBE + self.INDEX_ROW * matching_rows

    def filter(self, input_rows: float, conjunct_count: int = 1) -> float:
        return self.FILTER_ROW * max(conjunct_count, 1) * input_rows

    def project(self, input_rows: float, item_count: int) -> float:
        return self.PROJECT_ROW * max(item_count, 1) * input_rows

    def sort(self, input_rows: float) -> float:
        if input_rows <= 1:
            return 0.0
        return self.SORT_ROW_FACTOR * input_rows * math.log2(input_rows)

    def hash_join(self, build_rows: float, probe_rows: float,
                  output_rows: float) -> float:
        return (self.HASH_BUILD_ROW * build_rows
                + self.HASH_PROBE_ROW * probe_rows
                + 0.2 * output_rows)

    def nested_loop_join(self, outer_rows: float, inner_rows: float) -> float:
        return self.NESTED_LOOP_PAIR * outer_rows * max(inner_rows, 1.0)

    def window(self, input_rows: float, function_count: int,
               needs_sort: bool, parallel_workers: int = 1) -> float:
        compute = self.WINDOW_ROW_PER_FN * max(function_count, 1) * input_rows
        if parallel_workers > 1:
            # The sort stays serial; only per-partition evaluation scales.
            compute /= 1.0 + self.PARALLEL_EFFICIENCY * (parallel_workers - 1)
        return compute + (self.sort(input_rows) if needs_sort else 0.0)

    def aggregate(self, input_rows: float, aggregate_count: int) -> float:
        return self.AGGREGATE_ROW * max(aggregate_count, 1) * input_rows

    def distinct(self, input_rows: float) -> float:
        return self.DISTINCT_ROW * input_rows

    def semi_join(self, build_rows: float, probe_rows: float) -> float:
        return (self.SEMI_BUILD_ROW * build_rows
                + self.SEMI_PROBE_ROW * probe_rows)

    def exchange(self, segment_cost: float, output_rows: float,
                 workers: int) -> float:
        """Total cost of a sharded segment run across *workers*.

        Replaces the segment's serial cost (it is divided by the
        effective parallelism), so the rewrite chooser ranks candidate
        rewrites on what they will actually cost under the pool.
        """
        scaled = segment_cost / (1.0 + self.PARALLEL_EFFICIENCY
                                 * (max(workers, 1) - 1))
        return scaled + self.EXCHANGE_ROW * output_rows + self.EXCHANGE_SETUP
