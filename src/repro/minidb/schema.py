"""Column and table schema definitions for minidb.

A :class:`TableSchema` is an ordered list of :class:`Column` objects with
fast name -> position lookup. Schemas are immutable; derived schemas
(projections, joins, added columns) are built with the ``project`` /
``join`` / ``with_column`` helpers so every plan node can state its output
schema exactly.

Column names are case-insensitive (normalized to lower case), matching
common SQL behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.errors import SchemaError
from repro.minidb.types import SqlType

__all__ = ["Column", "TableSchema"]


@dataclass(frozen=True)
class Column:
    """A named, typed column.

    Attributes:
        name: lower-cased column name.
        sql_type: declared :class:`SqlType`.
    """

    name: str
    sql_type: SqlType

    def __post_init__(self) -> None:
        normalized = self.name.lower()
        if not normalized or not normalized.replace("_", "a").isalnum():
            raise SchemaError(f"invalid column name {self.name!r}")
        object.__setattr__(self, "name", normalized)

    def renamed(self, name: str) -> "Column":
        """A copy of this column under a new name."""
        return Column(name, self.sql_type)


class TableSchema:
    """An immutable ordered collection of :class:`Column` objects."""

    __slots__ = ("_columns", "_positions")

    def __init__(self, columns: Iterable[Column]) -> None:
        self._columns: tuple[Column, ...] = tuple(columns)
        self._positions: dict[str, int] = {}
        for position, column in enumerate(self._columns):
            if column.name in self._positions:
                raise SchemaError(f"duplicate column name {column.name!r}")
            self._positions[column.name] = position

    @classmethod
    def of(cls, *pairs: tuple[str, SqlType]) -> "TableSchema":
        """Build a schema from ``(name, type)`` pairs.

        Example::

            TableSchema.of(("epc", SqlType.VARCHAR), ("rtime", SqlType.TIMESTAMP))
        """
        return cls(Column(name, sql_type) for name, sql_type in pairs)

    @property
    def columns(self) -> tuple[Column, ...]:
        return self._columns

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(column.name for column in self._columns)

    def __len__(self) -> int:
        return len(self._columns)

    def __iter__(self) -> Iterator[Column]:
        return iter(self._columns)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TableSchema) and self._columns == other._columns

    def __repr__(self) -> str:
        body = ", ".join(f"{c.name} {c.sql_type.value}" for c in self._columns)
        return f"TableSchema({body})"

    def has_column(self, name: str) -> bool:
        return name.lower() in self._positions

    def position_of(self, name: str) -> int:
        """Index of column *name*, raising :class:`SchemaError` if absent."""
        try:
            return self._positions[name.lower()]
        except KeyError:
            raise SchemaError(
                f"no column {name!r}; available: {', '.join(self.names)}"
            ) from None

    def column(self, name: str) -> Column:
        return self._columns[self.position_of(name)]

    def type_of(self, name: str) -> SqlType:
        return self.column(name).sql_type

    def project(self, names: Sequence[str]) -> "TableSchema":
        """Schema containing only *names*, in the given order."""
        return TableSchema(self.column(name) for name in names)

    def join(self, other: "TableSchema") -> "TableSchema":
        """Concatenation of two schemas (column names must stay unique)."""
        return TableSchema((*self._columns, *other._columns))

    def with_column(self, column: Column) -> "TableSchema":
        """Schema extended with one appended column."""
        return TableSchema((*self._columns, column))

    def rename_all(self, renamer) -> "TableSchema":
        """Schema with every column renamed through callable *renamer*."""
        return TableSchema(c.renamed(renamer(c.name)) for c in self._columns)

    def covers(self, other: "TableSchema") -> bool:
        """Whether this schema includes every column of *other* (by name
        and type), regardless of position. Used to check that rule input
        tables include all columns of the table the rule is defined on.
        """
        for column in other:
            if not self.has_column(column.name):
                return False
            if self.type_of(column.name) is not column.sql_type:
                return False
        return True
