"""MVCC snapshots: consistent read views over a live :class:`Database`.

A :class:`Snapshot` pins, per table, the ``(schema_epoch, data_epoch,
row_count)`` triple current at creation time (``Table.pin_version``) plus
a deep copy of the table's statistics. Queries executed through the
snapshot see exactly the pinned state — concurrent ``append()`` calls
extend the live stores without becoming visible, and a concurrent
``replace_rows``/``DROP TABLE`` detaches the pinned versions onto frozen
row copies first — while ingest never waits for readers.

How it works
============

Appends only ever *extend* a table's row sequence, so a pinned version
is normally just a bound: scans read positions below ``row_count`` and
skip everything newer. Plans are the ordinary costed physical plans (the
planner runs against the live catalog with the *pinned* statistics, so
plan shapes are reproducible from the pinned state alone); right before
execution the snapshot *arms* every base scan with its table's bound
(``visible_count``) and, for detached versions, the frozen row prefix
(``visible_rows``), then disarms in a ``finally`` so the plan object
stays reusable for live execution.

Prepared-plan reuse uses the same fingerprint discipline as
:class:`~repro.minidb.engine.PreparedPlanCache`: table *data* epochs are
deliberately excluded (bounds are armed per execution, so one plan shape
serves any number of successive snapshots), while schema epochs, the
stats version, and every plan-shape knob participate. The cache is
per-snapshot by default; the server hands each wire session one cache so
a session's repeated queries replan zero times across snapshots.

Concurrency contract: one Snapshot may be used from one thread at a
time (like a cursor). Any number of snapshots can execute concurrently
with each other and with ingest on the owning database.
"""

from __future__ import annotations

import copy
from typing import TYPE_CHECKING, Any

from repro.errors import SnapshotError
from repro.minidb import parallel
from repro.minidb.codegen import codegen_enabled
from repro.minidb.optimizer.planner import Planner, PlannerOptions
from repro.minidb.optimizer.stats import TableStats
from repro.minidb.plan import shard
from repro.minidb.plan.builder import build_plan
from repro.minidb.plan.logical import LogicalNode
from repro.minidb.plan.physical import IndexRangeScan, PhysicalNode, SeqScan
from repro.minidb.result import ResultSet
from repro.minidb.sqlparse import parse_select
from repro.minidb.sqlparse.ast import SelectStmt
from repro.minidb.table import TableVersion
from repro.minidb.vector import materialize

if TYPE_CHECKING:  # pragma: no cover — import cycle with engine
    from repro.minidb.engine import Database, ExecutionMetrics

__all__ = ["Snapshot", "PinnedStats"]


class PinnedStats:
    """A frozen, read-only view of a :class:`StatsRepository`.

    ``StatsRepository.apply_append`` patches :class:`TableStats` objects
    *in place*, so a snapshot cannot simply hold references — it deep
    copies each table's stats at pin time. The planner only ever calls
    ``get(name)``, which this view answers from the frozen copies
    without any staleness checks (the pinned epoch never goes stale).
    """

    __slots__ = ("version", "_by_name")

    def __init__(self, version: int,
                 by_name: dict[str, TableStats]) -> None:
        self.version = version
        self._by_name = by_name

    def get(self, table_name: str) -> TableStats | None:
        return self._by_name.get(table_name.lower())


class Snapshot:
    """A consistent read view over every table of one database.

    Create via :meth:`Database.snapshot`; use as a context manager (or
    call :meth:`release` explicitly) so the pinned versions retire and
    any frozen row copies are freed.
    """

    def __init__(self, database: "Database", *,
                 plan_cache=None) -> None:
        from repro.minidb.engine import PreparedPlanCache

        database._ensure_stats()
        self._db = database
        self.versions: dict[str, TableVersion] = {
            table.name: table.pin_version()
            for table in database.catalog}
        self.stats = PinnedStats(database.stats.version, {
            name: copy.deepcopy(database.stats.get(name))
            for name in database.catalog.table_names()})
        self._catalog_version = database.catalog.version
        self._schema_epochs = tuple(sorted(
            (name, version.schema_epoch)
            for name, version in self.versions.items()))
        self.plan_cache = (plan_cache if plan_cache is not None
                           else PreparedPlanCache(64))
        self._released = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def release(self) -> None:
        """Drop every table pin; idempotent."""
        if self._released:
            return
        self._released = True
        for version in self.versions.values():
            version.table.release_version(version)

    def __enter__(self) -> "Snapshot":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()

    def __del__(self) -> None:
        try:
            self.release()
        except Exception:  # noqa: BLE001 — interpreter may be tearing down
            pass

    @property
    def released(self) -> bool:
        return self._released

    def row_count(self, table_name: str) -> int:
        """Rows of *table_name* visible to this snapshot."""
        return self._version_of(table_name).row_count

    def _version_of(self, table_name: str) -> TableVersion:
        version = self.versions.get(table_name.lower())
        if version is None:
            raise SnapshotError(
                f"table {table_name!r} was created after this snapshot "
                f"was pinned")
        return version

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------

    def _fingerprint(self, options: PlannerOptions) -> tuple:
        """Same discipline as ``Database._fingerprint``, pinned inputs.

        A leading marker keeps snapshot keys disjoint from live keys
        when a caller shares one cache for both.
        """
        return ("snapshot", self._catalog_version, self.stats.version,
                self._schema_epochs,
                tuple(sorted(vars(options).items())),
                parallel.configured_worker_count(),
                shard.SHARD_ROW_THRESHOLD,
                codegen_enabled())

    def _plan_query(self, query: SelectStmt | LogicalNode,
                    options: PlannerOptions) -> PhysicalNode:
        planner = Planner(self._db.catalog, self.stats,
                          self._db.cost_model, options)
        if isinstance(query, LogicalNode):
            logical = query
        else:
            logical = build_plan(query, self._db.catalog)
        plan = planner.plan(logical)
        self._db._arm_exchanges(plan, logical, options)
        return plan

    def plan(self, query: str | SelectStmt | LogicalNode,
             options: PlannerOptions | None = None) -> PhysicalNode:
        """The costed physical plan for *query* under pinned statistics.

        SQL text is memoized in :attr:`plan_cache`; non-text queries
        plan fresh every time (exactly like ``Database.plan``).
        """
        if self._released:
            raise SnapshotError("snapshot has been released")
        effective = options or self._db.options
        if not isinstance(query, str):
            return self._plan_query(query, effective)
        fingerprint = self._fingerprint(effective)
        cached = self.plan_cache.plan(query, fingerprint)
        if cached is not None:
            return cached
        statement = self.plan_cache.parsed(query)
        if statement is None:
            statement = parse_select(query)
            self.plan_cache.remember_parsed(query, statement)
        plan = self._plan_query(statement, effective)
        self.plan_cache.remember_plan(query, fingerprint, plan)
        return plan

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _arm(self, plan: PhysicalNode) -> list[Any]:
        armed = []
        for node in plan.walk():
            if isinstance(node, (SeqScan, IndexRangeScan)):
                version = self._version_of(node.table.name)
                node.visible_count = version.row_count
                node.visible_rows = version.frozen_rows
                armed.append(node)
        return armed

    @staticmethod
    def _disarm(armed: list[Any]) -> None:
        for node in armed:
            node.visible_count = None
            node.visible_rows = None

    def _materialize(self, plan: PhysicalNode) -> list[tuple]:
        armed = self._arm(plan)
        try:
            return materialize(plan)
        finally:
            self._disarm(armed)

    def execute(self, query: str | SelectStmt | LogicalNode,
                options: PlannerOptions | None = None) -> ResultSet:
        """Plan and run *query* against the pinned epochs."""
        plan = self.plan(query, options)
        rows = self._materialize(plan)
        columns = [out.name for out in plan.schema]
        return ResultSet(columns, rows)

    def execute_with_metrics(
            self, query: str | SelectStmt | LogicalNode,
            options: PlannerOptions | None = None,
    ) -> "tuple[ResultSet, ExecutionMetrics]":
        """Run *query* and report per-operator work counters.

        Counters are byte-identical to executing the same query on a
        database frozen at the pinned epochs (the snapshot-isolation
        tests pin exactly this).
        """
        from repro.minidb.engine import ExecutionMetrics

        hits_before = self.plan_cache.hits
        misses_before = self.plan_cache.misses
        plan = self.plan(query, options)
        rows = self._materialize(plan)
        columns = [out.name for out in plan.schema]
        metrics = ExecutionMetrics.from_plan(plan)
        metrics.plan_cache_hits = self.plan_cache.hits - hits_before
        metrics.plan_cache_misses = self.plan_cache.misses - misses_before
        return (ResultSet(columns, rows), metrics)

    def explain_analyze(self, query: str | SelectStmt | LogicalNode,
                        options: PlannerOptions | None = None) -> str:
        """Execute *query* and return EXPLAIN ANALYZE text."""
        plan = self.plan(query, options)
        self._materialize(plan)
        return plan.explain(analyze=True)
