"""The persistent shard-execution worker pool.

One :class:`ShardWorkerPool` serves a whole :class:`~repro.minidb.engine.
Database`: it is forked lazily on the first parallel dispatch and then
reused across queries, replacing the fork-per-query pool that previously
lived inside the window operator. Workers inherit the database (catalog,
tables, statistics) through ``fork``; nothing engine-sized is ever
pickled.

What *does* travel is deliberately small and closure-free:

* **task → worker**: the pickled *logical* plan plus planner options
  (closures in physical plans cannot cross a process boundary), the walk
  index of the segment to execute, one morsel (a shard spec for the
  segment's base scan), and the effective batch size;
* **worker → parent**: the morsel's output rows plus per-node execution
  counters in ``segment.walk()`` order.

The worker re-plans the logical payload against its fork-inherited
catalog — the planner is deterministic, so the physical shape matches
the parent's pre-shard plan exactly — and caches the result per payload,
so a query dispatched as many morsels plans once per worker, not once
per morsel. Stored tables inside logical plans are pickled *by name*
(``persistent_id``) and resolved against the worker's catalog.

Staleness is handled at the parent: the pool records a fingerprint of
(catalog version, stats version, table versions, worker count, shard
threshold) at spawn, and :meth:`Database.shard_pool` respawns the pool
when the fingerprint moves. A spawn therefore happens once per *database
state*, not once per query; ``Database.pool_spawns`` / ``pool_reuses``
pin that invariant in tests.

Worker count comes from ``REPRO_WORKERS`` (0 or unset disables;
``REPRO_PARALLEL`` is honoured as a deprecated alias).
"""

from __future__ import annotations

import io
import multiprocessing
import os
import pickle
import queue
import warnings
from typing import Any, Sequence

from repro.minidb.plan.shard import segment_scan
from repro.minidb.vector import forced_batch_size, materialize

__all__ = [
    "ShardDispatchError",
    "ShardWorkerPool",
    "configured_worker_count",
    "dumps_plan",
    "loads_plan",
]

#: Seconds the parent waits for one morsel result before declaring the
#: pool wedged and falling back to serial execution.
RESULT_TIMEOUT = 60.0

#: Per-worker cap on cached re-planned payloads.
_WORKER_PLAN_CACHE = 16


class ShardDispatchError(RuntimeError):
    """A worker reported an error (or timed out) during a dispatch."""


#: One-shot latch for the REPRO_PARALLEL deprecation warning: emitted the
#: first time the alias is actually *read* (i.e. REPRO_WORKERS unset and
#: REPRO_PARALLEL set), never again in the same process.
_alias_warning_emitted = False


def configured_worker_count() -> int:
    """Shard-pool size from ``REPRO_WORKERS``; 0 (the default) disables.

    ``REPRO_PARALLEL`` is read as a deprecated alias when
    ``REPRO_WORKERS`` is unset (emitting a one-shot
    ``DeprecationWarning``). Junk values disable; a positive integer
    pins the count. Unlike the retired fork-per-query pool, parallelism
    is opt-in: unset means serial.
    """
    global _alias_warning_emitted
    env = os.environ.get("REPRO_WORKERS")
    if env is None:
        env = os.environ.get("REPRO_PARALLEL")  # deprecated alias
        if env is not None and not _alias_warning_emitted:
            _alias_warning_emitted = True
            warnings.warn(
                "REPRO_PARALLEL is deprecated; set REPRO_WORKERS instead "
                "(it configured the retired fork-per-query window pool)",
                DeprecationWarning, stacklevel=2)
    if env is None:
        return 0
    try:
        return max(0, int(env.strip()))
    except ValueError:
        return 0


# ---------------------------------------------------------------------------
# Logical-plan payloads (tables pickled by name)
# ---------------------------------------------------------------------------


class _PlanPickler(pickle.Pickler):
    """Pickles stored tables by name; the worker resolves them against
    its fork-inherited catalog, so row data never crosses the pipe."""

    def persistent_id(self, obj: Any) -> Any:
        from repro.minidb.table import Table

        if isinstance(obj, Table):
            return ("minidb-table", obj.name)
        return None


class _PlanUnpickler(pickle.Unpickler):
    def __init__(self, file: io.BytesIO, catalog: Any) -> None:
        super().__init__(file)
        self._catalog = catalog

    def persistent_load(self, pid: Any) -> Any:
        kind, name = pid
        if kind != "minidb-table":
            raise pickle.UnpicklingError(f"unknown persistent id {pid!r}")
        return self._catalog.table(name)


def dumps_plan(logical: Any, options: Any) -> bytes:
    buffer = io.BytesIO()
    _PlanPickler(buffer).dump((logical, options))
    return buffer.getvalue()


def loads_plan(payload: bytes, catalog: Any) -> tuple[Any, Any]:
    return _PlanUnpickler(io.BytesIO(payload), catalog).load()


# ---------------------------------------------------------------------------
# Worker loop
# ---------------------------------------------------------------------------


def _plan_payload(database: Any, payload: bytes) -> Any:
    """Re-plan a pickled logical plan into the parent's pre-shard shape."""
    from dataclasses import replace

    from repro.minidb.optimizer.planner import Planner

    logical, options = loads_plan(payload, database.catalog)
    # The worker must reproduce the serial plan the parent sharded, so
    # the shard pass itself is disabled here; segment walk indices refer
    # to the unwrapped tree.
    options = replace(options, shard_parallel=False)
    planner = Planner(database.catalog, database.stats,
                      database.cost_model, options)
    return planner.plan(logical)


def _worker_main(worker_id: int, database: Any,
                 tasks: "multiprocessing.Queue",
                 results: "multiprocessing.Queue") -> None:
    storage = getattr(database, "storage", None)
    if storage is not None:
        # Own read-only descriptor + empty buffer pool: the worker
        # re-reads pages honestly instead of trusting fork-copied
        # frames, and can never write to the shared files.
        storage.reopen_worker()
    plans: dict[bytes, Any] = {}
    while True:
        task = tasks.get()
        if task is None:
            return
        (task_id, payload, segment_index, shard_spec, batch_size,
         visible_count) = task
        try:
            root = plans.get(payload)
            if root is None:
                root = _plan_payload(database, payload)
                if len(plans) >= _WORKER_PLAN_CACHE:
                    plans.pop(next(iter(plans)))
                plans[payload] = root
            segment = list(root.walk())[segment_index]
            scan = segment_scan(segment)
            segment.reset_metrics()
            scan.shard = shard_spec
            # Snapshot dispatches bound the scan to the pinned row
            # prefix; the worker's fork copy always holds at least that
            # many rows (the pool fingerprint includes table versions,
            # so a pool never predates the snapshot's epoch).
            scan.visible_count = visible_count
            try:
                with forced_batch_size(batch_size):
                    rows = materialize(segment)
            finally:
                scan.shard = None
                scan.visible_count = None
            stats = [(node.actual_rows, node.actual_batches,
                      getattr(node, "input_rows", 0),
                      getattr(node, "sorted_rows", 0))
                     for node in segment.walk()]
            results.put((task_id, worker_id, "ok", rows, stats))
        except BaseException as error:  # noqa: BLE001 — relayed to parent
            results.put((task_id, worker_id, "error",
                         f"{type(error).__name__}: {error}", None))


# ---------------------------------------------------------------------------
# The pool
# ---------------------------------------------------------------------------


class ShardWorkerPool:
    """A fixed set of forked workers pulling morsels off a shared queue.

    The shared task queue *is* the work-stealing mechanism: morsels are
    not pre-assigned, so a worker that finishes its expected share early
    simply pulls (steals) the next pending morsel. A morsel counts as
    stolen when it was executed by a worker other than its round-robin
    home (``task_id % workers``).
    """

    def __init__(self, database: Any, workers: int,
                 fingerprint: tuple) -> None:
        storage = getattr(database, "storage", None)
        if storage is not None:
            # Workers re-read pages from the file; make sure every
            # dirty frame is visible there before the fork happens.
            storage.flush_for_fork()
        context = multiprocessing.get_context("fork")
        self.workers = workers
        self.fingerprint = fingerprint
        self.alive = True
        self._tasks: multiprocessing.Queue = context.Queue()
        self._results: multiprocessing.Queue = context.Queue()
        self._processes = [
            context.Process(target=_worker_main,
                            args=(index, database, self._tasks,
                                  self._results),
                            daemon=True)
            for index in range(workers)]
        for process in self._processes:
            process.start()

    def dispatch(self, tasks: Sequence[tuple],
                 timeout: float = RESULT_TIMEOUT) -> list[tuple]:
        """Run *tasks* across the pool; returns results in task order.

        Each result is ``(worker_id, rows, stats)``. Any worker error or
        timeout raises :class:`ShardDispatchError`; the caller must then
        discard the pool (its queues may hold stale results).
        """
        if not self.alive:
            raise ShardDispatchError("pool is closed")
        for task in tasks:
            self._tasks.put(task)
        collected: dict[int, tuple] = {}
        for _ in range(len(tasks)):
            try:
                (task_id, worker_id, status,
                 payload, stats) = self._results.get(timeout=timeout)
            except queue.Empty:
                raise ShardDispatchError(
                    f"no result within {timeout:.0f}s "
                    f"({len(collected)}/{len(tasks)} morsels done)"
                ) from None
            if status != "ok":
                raise ShardDispatchError(f"worker {worker_id}: {payload}")
            collected[task_id] = (worker_id, payload, stats)
        return [collected[index] for index in range(len(tasks))]

    def close(self) -> None:
        """Terminate the workers; idempotent, never raises."""
        if not self.alive:
            return
        self.alive = False
        try:
            for _ in self._processes:
                self._tasks.put(None)
        except Exception:  # noqa: BLE001 — queue may already be broken
            pass
        for process in self._processes:
            process.join(timeout=1.0)
            if process.is_alive():
                process.terminate()
        self._tasks.close()
        self._results.close()
