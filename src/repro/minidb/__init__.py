"""minidb — the relational substrate (DB2 stand-in) for the reproduction.

A from-scratch, in-memory SQL engine with the capabilities the paper's
deferred-cleansing system relies on: SQL/OLAP window functions over
ROWS/RANGE frames, sorted indexes with range scans, joins, grouping, a
cost-based planner with order-sharing, and EXPLAIN cost estimates.
"""

from repro.minidb.engine import Database, ExecutionMetrics, Explained
from repro.minidb.optimizer.planner import PlannerOptions
from repro.minidb.result import ResultSet
from repro.minidb.schema import Column, TableSchema
from repro.minidb.sqlparse import parse_expression, parse_select
from repro.minidb.types import SqlType, minutes, hours, days

__all__ = [
    "Database",
    "ExecutionMetrics",
    "Explained",
    "PlannerOptions",
    "ResultSet",
    "Column",
    "TableSchema",
    "SqlType",
    "parse_select",
    "parse_expression",
    "minutes",
    "hours",
    "days",
]
