"""Single-column sorted indexes for minidb tables.

An index is a sorted array of ``(key, row_position)`` pairs searched with
``bisect`` — the pure-Python stand-in for the B-tree indexes the paper
creates on every column of ``caseR``/``palletR``. It supports equality
and range lookups and answers the planner's "matching row count" probes
exactly, which the cost model uses in place of histogram estimates when
an index exists.

NULL keys are excluded from the index (as in most engines): a predicate
match via an index never returns rows whose key is NULL, matching SQL
comparison semantics.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterable, Iterator

__all__ = ["SortedIndex", "IndexRange"]


class IndexRange:
    """A half-open key interval ``[low, high]`` with optional open ends.

    ``low``/``high`` of ``None`` mean unbounded on that side.
    """

    __slots__ = ("low", "high", "low_inclusive", "high_inclusive")

    def __init__(self, low: Any = None, high: Any = None, *,
                 low_inclusive: bool = True, high_inclusive: bool = True) -> None:
        self.low = low
        self.high = high
        self.low_inclusive = low_inclusive
        self.high_inclusive = high_inclusive

    @classmethod
    def equals(cls, key: Any) -> "IndexRange":
        return cls(low=key, high=key)

    def __repr__(self) -> str:
        left = "[" if self.low_inclusive else "("
        right = "]" if self.high_inclusive else ")"
        return f"IndexRange{left}{self.low!r}, {self.high!r}{right}"


class SortedIndex:
    """A sorted single-column index over a table's rows.

    The index is built once over the full table (or rebuilt after bulk
    loads); point inserts keep it sorted incrementally. Row positions
    refer to offsets in the owning table's row list.
    """

    def __init__(self, name: str, column: str) -> None:
        self.name = name
        self.column = column
        self._keys: list[Any] = []
        self._positions: list[int] = []

    def __len__(self) -> int:
        return len(self._keys)

    def build(self, keyed_positions: Iterable[tuple[Any, int]]) -> None:
        """(Re)build the index from ``(key, position)`` pairs."""
        pairs = sorted(
            (pair for pair in keyed_positions if pair[0] is not None),
            key=lambda pair: pair[0])
        self._keys = [key for key, _ in pairs]
        self._positions = [position for _, position in pairs]

    def insert(self, key: Any, position: int) -> None:
        """Insert one entry, keeping the index sorted."""
        if key is None:
            return
        slot = bisect.bisect_right(self._keys, key)
        self._keys.insert(slot, key)
        self._positions.insert(slot, position)

    def insert_many(self, keyed_positions: Iterable[tuple[Any, int]]) -> None:
        """Merge a batch of entries, keeping the index sorted.

        Equivalent to calling :meth:`insert` per pair (new entries land
        after existing equal keys, and after earlier-batch equal keys),
        but via a single linear merge instead of k O(n) list inserts —
        the append path for streaming ingest, where rebuilding the whole
        index per trickle would dominate.
        """
        fresh = sorted(
            (pair for pair in keyed_positions if pair[0] is not None),
            key=lambda pair: pair[0])
        if not fresh:
            return
        if not self._keys:
            self._keys = [key for key, _ in fresh]
            self._positions = [position for _, position in fresh]
            return
        old_keys, old_positions = self._keys, self._positions
        merged_keys: list[Any] = []
        merged_positions: list[int] = []
        cursor = 0
        for key, position in fresh:
            # bisect_right semantics: existing entries with key <= new
            # key stay ahead of the new entry.
            stop = bisect.bisect_right(old_keys, key, cursor)
            merged_keys.extend(old_keys[cursor:stop])
            merged_positions.extend(old_positions[cursor:stop])
            merged_keys.append(key)
            merged_positions.append(position)
            cursor = stop
        merged_keys.extend(old_keys[cursor:])
        merged_positions.extend(old_positions[cursor:])
        self._keys = merged_keys
        self._positions = merged_positions

    def _bounds(self, key_range: IndexRange) -> tuple[int, int]:
        if key_range.low is None:
            start = 0
        elif key_range.low_inclusive:
            start = bisect.bisect_left(self._keys, key_range.low)
        else:
            start = bisect.bisect_right(self._keys, key_range.low)
        if key_range.high is None:
            stop = len(self._keys)
        elif key_range.high_inclusive:
            stop = bisect.bisect_right(self._keys, key_range.high)
        else:
            stop = bisect.bisect_left(self._keys, key_range.high)
        return start, max(stop, start)

    def scan(self, key_range: IndexRange) -> Iterator[int]:
        """Yield row positions whose key falls in *key_range*, key order."""
        start, stop = self._bounds(key_range)
        for slot in range(start, stop):
            yield self._positions[slot]

    def count(self, key_range: IndexRange) -> int:
        """Exact number of entries in *key_range* (no row access)."""
        start, stop = self._bounds(key_range)
        return stop - start

    def min_key(self) -> Any:
        return self._keys[0] if self._keys else None

    def max_key(self) -> Any:
        return self._keys[-1] if self._keys else None
