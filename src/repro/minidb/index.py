"""Single-column sorted indexes for minidb tables.

An index is a sorted array of ``(key, row_position)`` pairs searched with
``bisect`` — the pure-Python stand-in for the B-tree indexes the paper
creates on every column of ``caseR``/``palletR``. It supports equality
and range lookups and answers the planner's "matching row count" probes
exactly, which the cost model uses in place of histogram estimates when
an index exists.

NULL keys are excluded from the index (as in most engines): a predicate
match via an index never returns rows whose key is NULL, matching SQL
comparison semantics.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterable, Iterator

__all__ = ["SortedIndex", "IndexRange"]


class IndexRange:
    """A half-open key interval ``[low, high]`` with optional open ends.

    ``low``/``high`` of ``None`` mean unbounded on that side.
    """

    __slots__ = ("low", "high", "low_inclusive", "high_inclusive")

    def __init__(self, low: Any = None, high: Any = None, *,
                 low_inclusive: bool = True, high_inclusive: bool = True) -> None:
        self.low = low
        self.high = high
        self.low_inclusive = low_inclusive
        self.high_inclusive = high_inclusive

    @classmethod
    def equals(cls, key: Any) -> "IndexRange":
        return cls(low=key, high=key)

    def contains(self, key: Any) -> bool:
        """Whether *key* falls inside the range (NULL never matches).

        Mirrors the index semantics exactly: NULL keys are excluded from
        indexes, so a range probe can never return them. Used by the
        detached-snapshot fallback, which filters frozen rows directly
        instead of consulting a (live, too-new) index.
        """
        if key is None:
            return False
        if self.low is not None:
            if key < self.low:
                return False
            if key == self.low and not self.low_inclusive:
                return False
        if self.high is not None:
            if key > self.high:
                return False
            if key == self.high and not self.high_inclusive:
                return False
        return True

    def __repr__(self) -> str:
        left = "[" if self.low_inclusive else "("
        right = "]" if self.high_inclusive else ")"
        return f"IndexRange{left}{self.low!r}, {self.high!r}{right}"


class SortedIndex:
    """A sorted single-column index over a table's rows.

    The index is built once over the full table (or rebuilt after bulk
    loads); point inserts keep it sorted incrementally. Row positions
    refer to offsets in the owning table's row list.

    Concurrency: the entry arrays live behind a single ``_data`` tuple
    that mutating batch operations (:meth:`build`, :meth:`insert_many` —
    the streaming-ingest paths) replace wholesale instead of editing in
    place. A reader that captures the tuple once therefore sees a
    complete, internally consistent index from some epoch: either
    without or with the whole appended batch, never a half-merged mix.
    Combined with a snapshot's position bound (appended positions are
    simply skipped) this makes index scans safe against concurrent
    ingest without a lock. Single-row :meth:`insert` still edits in
    place and remains writer-side only.
    """

    def __init__(self, name: str, column: str) -> None:
        self.name = name
        self.column = column
        #: ``(keys, positions)`` parallel arrays; replaced atomically by
        #: batch mutations, never partially updated.
        self._data: tuple[list[Any], list[int]] = ([], [])

    @property
    def _keys(self) -> list[Any]:
        return self._data[0]

    @property
    def _positions(self) -> list[int]:
        return self._data[1]

    def __len__(self) -> int:
        return len(self._data[0])

    def build(self, keyed_positions: Iterable[tuple[Any, int]]) -> None:
        """(Re)build the index from ``(key, position)`` pairs."""
        pairs = sorted(
            (pair for pair in keyed_positions if pair[0] is not None),
            key=lambda pair: pair[0])
        self._data = ([key for key, _ in pairs],
                      [position for _, position in pairs])

    def insert(self, key: Any, position: int) -> None:
        """Insert one entry, keeping the index sorted (in place)."""
        if key is None:
            return
        keys, positions = self._data
        slot = bisect.bisect_right(keys, key)
        keys.insert(slot, key)
        positions.insert(slot, position)

    def insert_many(self, keyed_positions: Iterable[tuple[Any, int]]) -> None:
        """Merge a batch of entries, keeping the index sorted.

        Equivalent to calling :meth:`insert` per pair (new entries land
        after existing equal keys, and after earlier-batch equal keys),
        but via a single linear merge instead of k O(n) list inserts —
        the append path for streaming ingest, where rebuilding the whole
        index per trickle would dominate. The merged arrays are
        published by swapping ``_data``, so concurrent readers never see
        a partial merge.
        """
        fresh = sorted(
            (pair for pair in keyed_positions if pair[0] is not None),
            key=lambda pair: pair[0])
        if not fresh:
            return
        old_keys, old_positions = self._data
        if not old_keys:
            self._data = ([key for key, _ in fresh],
                          [position for _, position in fresh])
            return
        merged_keys: list[Any] = []
        merged_positions: list[int] = []
        cursor = 0
        for key, position in fresh:
            # bisect_right semantics: existing entries with key <= new
            # key stay ahead of the new entry.
            stop = bisect.bisect_right(old_keys, key, cursor)
            merged_keys.extend(old_keys[cursor:stop])
            merged_positions.extend(old_positions[cursor:stop])
            merged_keys.append(key)
            merged_positions.append(position)
            cursor = stop
        merged_keys.extend(old_keys[cursor:])
        merged_positions.extend(old_positions[cursor:])
        self._data = (merged_keys, merged_positions)

    @staticmethod
    def _bounds_in(keys: list[Any],
                   key_range: IndexRange) -> tuple[int, int]:
        if key_range.low is None:
            start = 0
        elif key_range.low_inclusive:
            start = bisect.bisect_left(keys, key_range.low)
        else:
            start = bisect.bisect_right(keys, key_range.low)
        if key_range.high is None:
            stop = len(keys)
        elif key_range.high_inclusive:
            stop = bisect.bisect_right(keys, key_range.high)
        else:
            stop = bisect.bisect_left(keys, key_range.high)
        return start, max(stop, start)

    def _bounds(self, key_range: IndexRange) -> tuple[int, int]:
        return self._bounds_in(self._data[0], key_range)

    def scan(self, key_range: IndexRange) -> Iterator[int]:
        """Yield row positions whose key falls in *key_range*, key order."""
        # One capture of the published arrays = one consistent epoch.
        keys, positions = self._data
        start, stop = self._bounds_in(keys, key_range)
        for slot in range(start, stop):
            yield positions[slot]

    def count(self, key_range: IndexRange) -> int:
        """Exact number of entries in *key_range* (no row access)."""
        keys, _ = self._data
        start, stop = self._bounds_in(keys, key_range)
        return stop - start

    def min_key(self) -> Any:
        keys, _ = self._data
        return keys[0] if keys else None

    def max_key(self) -> Any:
        keys, _ = self._data
        return keys[-1] if keys else None
