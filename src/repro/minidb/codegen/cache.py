"""Compile cache and linecache registration for generated kernels.

Generated source is fully deterministic for a given plan shape, so the
cache is keyed on the source text itself: two plans that fuse to the
same kernel (common across the rewrite engine's candidate plans, and
across plan-cache misses after appends) share one code object. Each
distinct source gets a stable virtual filename derived from its content
hash and is registered with :mod:`linecache`, so tracebacks raised
inside a kernel — and ``pdb`` — show the emitted lines, not ``<string>``.

``REPRO_CODEGEN_DUMP=<dir>`` additionally writes every freshly compiled
kernel to ``<dir>/minidb-codegen-<hash>.py`` for offline inspection.
"""

from __future__ import annotations

import hashlib
import linecache
import os
import time
from collections import OrderedDict
from pathlib import Path
from typing import Any, Callable, Mapping

__all__ = [
    "DUMP_ENV",
    "cache_stats",
    "clear_cache",
    "compiled_kernel",
]

DUMP_ENV = "REPRO_CODEGEN_DUMP"

#: Bounds memory for long-lived processes; far above any test workload.
_CACHE_CAPACITY = 128

_cache: OrderedDict[str, tuple[Callable, str]] = OrderedDict()

#: Process-wide counters, diffed by ``execute_with_metrics`` the same
#: way the pool spawn/reuse counters are.
cache_hits = 0
cache_misses = 0
compile_ms = 0.0


def cache_stats() -> tuple[int, int, float]:
    """``(hits, misses, total compile milliseconds)`` so far."""
    return cache_hits, cache_misses, compile_ms


def clear_cache() -> None:
    """Drop every cached kernel (tests only)."""
    for _, filename in _cache.values():
        linecache.cache.pop(filename, None)
    _cache.clear()


def _virtual_filename(source: str) -> str:
    digest = hashlib.sha256(source.encode()).hexdigest()[:12]
    return f"<minidb-codegen-{digest}>"


def _dump(filename: str, source: str) -> None:
    directory = os.environ.get(DUMP_ENV, "").strip()
    if not directory:
        return
    stem = filename.strip("<>")
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    (path / f"{stem}.py").write_text(source)


def compiled_kernel(source: str,
                    namespace: Mapping[str, Any]) -> tuple[Callable, str]:
    """Compile *source* (or reuse a cached compile) → ``(kernel, filename)``.

    *namespace* supplies the runtime helpers the kernel's globals need
    (``RowBatch``, the SQL logic/division helpers); it is only consulted
    on a cache miss, so callers must pass the same helpers for the same
    source.
    """
    global cache_hits, cache_misses, compile_ms
    entry = _cache.get(source)
    if entry is not None:
        cache_hits += 1
        _cache.move_to_end(source)
        return entry
    cache_misses += 1
    started = time.perf_counter()
    filename = _virtual_filename(source)
    linecache.cache[filename] = (
        len(source), None, source.splitlines(keepends=True), filename)
    code = compile(source, filename, "exec")
    module_globals: dict[str, Any] = dict(namespace)
    module_globals["__name__"] = filename.strip("<>").replace("-", "_")
    exec(code, module_globals)
    kernel = module_globals["_fused_kernel"]
    compile_ms += (time.perf_counter() - started) * 1000.0
    _dump(filename, source)
    _cache[source] = (kernel, filename)
    while len(_cache) > _CACHE_CAPACITY:
        _, (_, evicted) = _cache.popitem(last=False)
        linecache.cache.pop(evicted, None)
    return kernel, filename
