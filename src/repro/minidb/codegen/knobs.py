"""The ``REPRO_CODEGEN`` knob.

Kept in its own tiny module so the planner, the engine fingerprints and
the fuzz oracle can all consult the flag without importing the emitter
(and its physical-plan dependencies).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

__all__ = ["CODEGEN_ENV", "codegen_enabled", "forced_codegen"]

#: Set to ``1`` to compile fusible plan spines into generated kernels.
CODEGEN_ENV = "REPRO_CODEGEN"


def codegen_enabled() -> bool:
    """Whether plan compilation is switched on for new plans."""
    return os.environ.get(CODEGEN_ENV, "").strip() == "1"


@contextmanager
def forced_codegen(enabled: bool) -> Iterator[None]:
    """Pin the codegen knob for a scope (tests, fuzz labels, benchmarks)."""
    previous = os.environ.get(CODEGEN_ENV)
    os.environ[CODEGEN_ENV] = "1" if enabled else "0"
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(CODEGEN_ENV, None)
        else:
            os.environ[CODEGEN_ENV] = previous
