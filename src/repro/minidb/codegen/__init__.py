"""Query compilation: fused plan spines as generated Python kernels.

Gated behind ``REPRO_CODEGEN=1``. See ``pipeline`` for the fusion
grammar and emitter, ``cache`` for the source-keyed compile cache and
linecache registration, and DESIGN.md §12 for the architecture notes.
"""

from repro.minidb.codegen.cache import (
    DUMP_ENV,
    cache_stats,
    clear_cache,
    compiled_kernel,
)
from repro.minidb.codegen.knobs import (
    CODEGEN_ENV,
    codegen_enabled,
    forced_codegen,
)
from repro.minidb.codegen.pipeline import (
    FAULT_ENV,
    CompiledSpineOp,
    apply_codegen,
)

__all__ = [
    "CODEGEN_ENV",
    "CompiledSpineOp",
    "DUMP_ENV",
    "FAULT_ENV",
    "apply_codegen",
    "cache_stats",
    "clear_cache",
    "codegen_enabled",
    "compiled_kernel",
    "forced_codegen",
]
