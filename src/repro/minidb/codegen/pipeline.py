"""Fusing physical-plan spines into generated Python kernels.

``apply_codegen`` walks a freshly lowered plan (before the shard
post-pass) and replaces every maximal fusible spine with a
:class:`CompiledSpineOp`. A spine is a chain of Filter / Project /
PassThrough operators with at most one hash join in the middle::

    Top := (Filter | Project | PassThrough)*
           (HashJoin (Filter | Project | PassThrough)*)?
           Source

The wrapper keeps the original subtree as its ``child`` (EXPLAIN, walk
indices and the shard segment discovery are unchanged), but executes a
single generated loop per column chunk instead of pulling a
:class:`RowBatch` through every operator. Expressions are emitted via
:meth:`Expr.emit_value` / :meth:`Expr.emit_truth`; any node without an
emitter (CASE, scalar functions, subqueries, …) simply ends the spine
there — the operators outside the kernel keep running interpreted, so
window rule chains, sorts and aggregates become chunk *sources* feeding
a compiled spine above them.

Per-operator ``actual_rows`` / ``input_rows`` counters are maintained
inside the kernel with per-chunk flushes, so EXPLAIN ANALYZE output is
identical to the interpreted batch path. The generated source is
deterministic for a plan shape, which makes it the compile-cache key
(see ``cache``) and keeps parent and fork-pool workers byte-identical:
workers re-plan the payload with the same knobs and land on the same
kernel for their shard morsels.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Iterator, Sequence

from repro.errors import PlanningError
from repro.minidb.codegen.cache import compiled_kernel
from repro.minidb.codegen.knobs import codegen_enabled
from repro.minidb.expressions import EmitContext, EmitUnsupported, _arith
from repro.minidb.plan.physical import (
    FilterOp,
    HashJoinOp,
    PassThroughOp,
    PhysicalNode,
    ProjectOp,
    _resolve_batch_size,
)
from repro.minidb.plan.shard import _SPINE_CHILD
from repro.minidb.types import sql_and, sql_or
from repro.minidb.vector import (RowBatch, configured_batch_size,
                                 decode_batch)

__all__ = ["CompiledSpineOp", "FAULT_ENV", "apply_codegen"]

#: Shared with the rewrite-layer fault (``repro.rewrite.expanded``); the
#: value ``codegen`` selects the emitter fault instead (strict
#: comparisons weakened to inclusive ones), giving the fuzz oracle a
#: codegen-only bug to catch.
FAULT_ENV = "REPRO_FUZZ_INJECT_BUG"


def _fault_active() -> bool:
    return os.environ.get(FAULT_ENV, "") == "codegen"


def _sql_div(left: Any, right: Any) -> Any:
    return _arith("/", left, right)


#: Runtime helpers injected into every kernel's module globals.
_KERNEL_NAMESPACE = {
    "RowBatch": RowBatch,
    "_sql_and": sql_and,
    "_sql_or": sql_or,
    "_sql_div": _sql_div,
}

_CHILD_ATTRS = ("child", "left", "right")


# ---------------------------------------------------------------------------
# Spine matching


def _emits(emit: Callable[[EmitContext], None]) -> bool:
    """Whether *emit* succeeds against a probe context."""
    ctx = EmitContext(lambda qualifier, name: "_probe")
    try:
        emit(ctx)
    except EmitUnsupported:
        return False
    return True


def _supported_filter(op: FilterOp) -> bool:
    return _emits(lambda ctx: op.predicate.emit_truth(ctx))


def _supported_project(op: ProjectOp) -> bool:
    if op.item_exprs is None:
        return False

    def run(ctx: EmitContext) -> None:
        for position, expr in enumerate(op.item_exprs):
            if position not in op.passthrough:
                expr.emit_value(ctx)

    return _emits(run)


def _supported_join(op: HashJoinOp) -> bool:
    if op.kind not in ("inner", "left"):
        return False
    if op.left_key_exprs is None or op.right_key_exprs is None:
        return False
    if op._residual is not None and op.residual_expr is None:
        return False

    def run(ctx: EmitContext) -> None:
        for expr in op.left_key_exprs:
            expr.emit_value(ctx)
        if op.residual_expr is not None:
            op.residual_expr.emit_truth(ctx)

    return _emits(run)


def _match_spine(node: PhysicalNode):
    """``(fused ops top→down, chunk source, the join or None)``.

    Only operators whose expressions all have emitters are taken; the
    first unsupported operator becomes the chunk source (the fallback
    rule — it and everything below it stay interpreted).
    """
    ops: list[PhysicalNode] = []
    join: HashJoinOp | None = None
    current = node
    while True:
        if isinstance(current, FilterOp) and _supported_filter(current):
            ops.append(current)
            current = current.child
            continue
        if isinstance(current, PassThroughOp):
            ops.append(current)
            current = current.child
            continue
        if isinstance(current, ProjectOp) and _supported_project(current):
            ops.append(current)
            current = current.child
            continue
        if isinstance(current, HashJoinOp) and join is None \
                and _supported_join(current):
            join = current
            ops.append(current)
            current = current.left
            continue
        break
    return ops, current, join


# ---------------------------------------------------------------------------
# Kernel emission


class _SpineEmitter:
    """Emits one generator function fusing ``ops`` over source chunks.

    Shape of the generated code: the region between the chunk source and
    the join (or the whole spine when there is none) runs as selection-
    vector comprehensions over the source columns; the join and the
    region above it run as a row loop over the surviving positions,
    probing the prebuilt hash table and appending output values column
    by column. Counter updates are accumulated in locals and flushed to
    the wrapped operators once per chunk, reproducing the interpreted
    batch path's EXPLAIN ANALYZE numbers exactly.
    """

    def __init__(self, ops: Sequence[PhysicalNode], source: PhysicalNode,
                 join: HashJoinOp | None) -> None:
        self.ops = list(ops)
        self.source = source
        self.join = join
        self.ctx = EmitContext(flip_comparisons=_fault_active())
        self.used_columns: set[int] = set()
        self.touched_ops: set[int] = set()
        self.sel_counter = 0

    # -- row environments over the source chunk ------------------------

    def _read(self, entry: tuple[str, Any]) -> str:
        kind, payload = entry
        if kind == "col":
            self.used_columns.add(payload)
            return f"_s{payload}[_i]"
        return payload

    def _env_resolver(self, schema, env: list) -> Callable:
        base = schema.resolver()

        def resolve(qualifier: str | None, name: str) -> str:
            return self._read(env[base(qualifier, name)])

        return resolve

    def _code_resolver(self, schema, env: list[str]) -> Callable:
        base = schema.resolver()

        def resolve(qualifier: str | None, name: str) -> str:
            return env[base(qualifier, name)]

        return resolve

    def _op_ref(self, index: int) -> str:
        self.touched_ops.add(index)
        return f"_op{index}"

    # -- emission -------------------------------------------------------

    def emit(self) -> str:
        ops, join = self.ops, self.join
        join_index = ops.index(join) if join is not None else None
        below = ops if join is None else ops[join_index + 1:]
        upper = [] if join is None else ops[:join_index]

        body: list[str] = []
        env: list[tuple[str, Any]] = [
            ("col", position) for position in range(len(self.source.schema))]
        sel: str | None = None

        base = len(ops) - 1
        for offset, op in enumerate(reversed(below)):
            index = base - offset
            if isinstance(op, PassThroughOp):
                continue
            if isinstance(op, FilterOp):
                sel = self._emit_filter(body, op, index, env, sel)
            else:
                env = self._emit_project(body, op, index, env, sel)

        if join is None:
            self._emit_output(body, env, sel)
        else:
            self._emit_join_region(body, upper, join, join_index, env, sel)

        return self._assemble(body)

    def _emit_filter(self, body: list[str], op: FilterOp, index: int,
                     env: list, sel: str | None) -> str:
        self.ctx.resolve_column = self._env_resolver(op.child.schema, env)
        condition = op.predicate.emit_truth(self.ctx)
        self.sel_counter += 1
        new_sel = f"_sel{self.sel_counter}"
        iterator = "range(_n)" if sel is None else sel
        input_expr = "_n" if sel is None else f"len({sel})"
        ref = self._op_ref(index)
        body.append(f"{new_sel} = [_i for _i in {iterator} if {condition}]")
        body.append(f"{ref}.input_rows += {input_expr}")
        body.append(f"if not {new_sel}:")
        body.append("    continue")
        body.append(f"{ref}.actual_rows += len({new_sel})")
        body.append(f"{ref}.actual_batches += 1")
        return new_sel

    def _emit_project(self, body: list[str], op: ProjectOp, index: int,
                      env: list, sel: str | None) -> list:
        self.ctx.resolve_column = self._env_resolver(op.child.schema, env)
        new_env: list[tuple[str, Any]] = []
        for position, expr in enumerate(op.item_exprs):
            if position in op.passthrough:
                new_env.append(env[op.passthrough[position]])
            else:
                new_env.append(("expr", expr.emit_value(self.ctx)))
        rows_expr = "_n" if sel is None else f"len({sel})"
        ref = self._op_ref(index)
        body.append(f"{ref}.actual_rows += {rows_expr}")
        body.append(f"{ref}.actual_batches += 1")
        return new_env

    def _emit_output(self, body: list[str], env: list,
                     sel: str | None) -> None:
        columns: list[str] = []
        for entry in env:
            kind, payload = entry
            if kind == "col" and sel is None:
                self.used_columns.add(payload)
                columns.append(f"_s{payload}")
            else:
                iterator = "range(_n)" if sel is None else sel
                columns.append(f"[{self._read(entry)} for _i in {iterator}]")
        length = "_n" if sel is None else f"len({sel})"
        body.append(f"yield RowBatch([{', '.join(columns)}], {length})")

    # -- the join + everything above it ---------------------------------

    def _upper_stages(self, upper: Sequence[PhysicalNode],
                      join_index: int) -> tuple[list, str]:
        """Stage plan for the row-loop region, with shared count vars."""
        stages: list[tuple] = []
        gvars = 1  # _g0 counts rows the join emits (matches + pads)
        current = "_g0"
        base = join_index - 1
        for offset, op in enumerate(reversed(upper)):
            index = base - offset
            if isinstance(op, PassThroughOp):
                continue
            if isinstance(op, FilterOp):
                out = f"_g{gvars}"
                gvars += 1
                stages.append(("filter", index, op, current, out))
                current = out
            else:
                stages.append(("project", index, op, current, current))
        return stages, current

    def _expand_branch(self, stages: list, joined_env: list[str],
                       indent: str) -> list[str]:
        lines: list[str] = []
        env = joined_env
        for kind, _index, op, _gin, gout in stages:
            if kind == "filter":
                self.ctx.resolve_column = self._code_resolver(
                    op.child.schema, env)
                condition = op.predicate.emit_truth(self.ctx)
                lines.append(f"{indent}if not {condition}:")
                lines.append(f"{indent}    continue")
                lines.append(f"{indent}{gout} += 1")
            else:
                self.ctx.resolve_column = self._code_resolver(
                    op.child.schema, env)
                new_env: list[str] = []
                for position, expr in enumerate(op.item_exprs):
                    if position in op.passthrough:
                        new_env.append(env[op.passthrough[position]])
                    else:
                        new_env.append(expr.emit_value(self.ctx))
                env = new_env
        for position, code in enumerate(env):
            lines.append(f"{indent}_a{position}({code})")
        return lines

    def _emit_join_region(self, body: list[str],
                          upper: Sequence[PhysicalNode], join: HashJoinOp,
                          join_index: int, env: list,
                          sel: str | None) -> None:
        stages, final_count = self._upper_stages(upper, join_index)
        count_vars = ["_g0"] + [stage[4] for stage in stages
                                if stage[0] == "filter"]
        width = len(self.ops[0].schema)

        for var in count_vars:
            body.append(f"{var} = 0")
        for position in range(width):
            body.append(f"_o{position} = []")
            body.append(f"_a{position} = _o{position}.append")

        self.ctx.resolve_column = self._env_resolver(join.left.schema, env)
        key_codes = [expr.emit_value(self.ctx)
                     for expr in join.left_key_exprs]

        left_codes = [self._read(entry) for entry in env]
        right_width = len(join.right.schema)
        match_env = left_codes + [f"_r[{p}]" for p in range(right_width)]
        pad_env = left_codes + ["None"] * right_width

        residual = None
        if join.residual_expr is not None:
            self.ctx.resolve_column = self._code_resolver(
                join.schema, match_env)
            residual = join.residual_expr.emit_truth(self.ctx)

        iterator = "range(_n)" if sel is None else sel
        body.append(f"for _i in {iterator}:")
        if len(key_codes) == 1:
            body.append(f"    _k = {key_codes[0]}")
            body.append("    _rs = None if _k is None else _ht.get(_k)")
        else:
            for i, code in enumerate(key_codes):
                body.append(f"    _k{i} = {code}")
            null_check = " or ".join(f"_k{i} is None"
                                     for i in range(len(key_codes)))
            key_tuple = ", ".join(f"_k{i}" for i in range(len(key_codes)))
            body.append(f"    _rs = None if {null_check} "
                        f"else _ht.get(({key_tuple}))")
        left_join = join.kind == "left"
        if left_join:
            body.append("    _matched = False")
        body.append("    if _rs:")
        body.append("        for _r in _rs:")
        if residual is not None:
            body.append(f"            if not {residual}:")
            body.append("                continue")
        if left_join:
            body.append("            _matched = True")
        body.append("            _g0 += 1")
        body.extend(self._expand_branch(stages, match_env, " " * 12))
        if left_join:
            body.append("    if not _matched:")
            body.append("        _g0 += 1")
            body.extend(self._expand_branch(stages, pad_env, " " * 8))

        join_ref = self._op_ref(join_index)
        body.append(f"{join_ref}.actual_rows += _g0")
        body.append("if _g0:")
        body.append(f"    {join_ref}.actual_batches += 1")
        for kind, index, _op, gin, gout in stages:
            ref = self._op_ref(index)
            if kind == "filter":
                body.append(f"{ref}.input_rows += {gin}")
                body.append(f"{ref}.actual_rows += {gout}")
                body.append(f"if {gout}:")
                body.append(f"    {ref}.actual_batches += 1")
            else:
                body.append(f"if {gin}:")
                body.append(f"    {ref}.actual_rows += {gin}")
                body.append(f"    {ref}.actual_batches += 1")
        body.append(f"if not {final_count}:")
        body.append("    continue")
        columns = ", ".join(f"_o{p}" for p in range(width))
        body.append(f"yield RowBatch([{columns}], {final_count})")

    # -- assembly -------------------------------------------------------

    def _assemble(self, body: list[str]) -> str:
        lines = ["# fused spine (top to bottom):"]
        for op in self.ops:
            lines.append(f"#   {op.label()}")
        lines.append(f"# chunk source: {self.source.label()}")
        lines.append("def _fused_kernel(_source, _nodes, _tables):")
        if self.join is not None:
            lines.append("    _ht = _tables[0]")
        for index in sorted(self.touched_ops):
            lines.append(f"    _op{index} = _nodes[{index}]")
        lines.append("    for _b in _source:")
        lines.append("        _n = _b.length")
        lines.append("        if not _n:")
        lines.append("            continue")
        lines.append("        _c = _b.columns")
        for position in sorted(self.used_columns):
            lines.append(f"        _s{position} = _c[{position}]")
        for line in body:
            lines.append(f"        {line}")
        return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# The compiled operator


def _build_hash_table(join: HashJoinOp, size: int) -> dict:
    """Build the probe table off the (interpreted) build side.

    Mirrors :meth:`HashJoinOp.batches`: NULL key parts never match.
    Single-key tables are keyed on the bare value so the generated probe
    can skip the per-row tuple allocation.
    """
    table: dict = {}
    single = len(join._right_keys) == 1
    for right_batch in join.right.batches(size):
        right_rows = right_batch.rows()
        key_columns = HashJoinOp._key_columns(
            right_batch, join._batch_right_keys, join._right_keys)
        if single:
            column = key_columns[0]
            for i in range(right_batch.length):
                part = column[i]
                if part is None:
                    continue
                table.setdefault(part, []).append(right_rows[i])
        else:
            for i in range(right_batch.length):
                key = tuple(column[i] for column in key_columns)
                if any(part is None for part in key):
                    continue
                table.setdefault(key, []).append(right_rows[i])
    return table


class CompiledSpineOp(PhysicalNode):
    """Executes a fused spine through a generated kernel.

    ``child`` is the original (still fully wired) top operator of the
    fused subtree: EXPLAIN renders the real operators, plan walks keep
    their indices (the shard layer depends on that), and per-operator
    counters keep reporting through the wrapped nodes. Execution never
    pulls through ``child`` — the kernel reads source chunks directly.
    """

    __slots__ = ("child", "fused", "source", "join", "kernel",
                 "source_text", "filename", "kernel_runs")

    def __init__(self, child: PhysicalNode, fused: Sequence[PhysicalNode],
                 source: PhysicalNode, join: HashJoinOp | None,
                 kernel: Callable, source_text: str,
                 filename: str) -> None:
        super().__init__()
        self.child = child
        self.fused = list(fused)
        self.source = source
        self.join = join
        self.kernel = kernel
        self.source_text = source_text
        self.filename = filename
        self.kernel_runs = 0
        self.schema = child.schema
        self.ordering = child.ordering
        self.estimated_rows = child.estimated_rows
        self.estimated_cost = child.estimated_cost

    def inputs(self) -> Sequence[PhysicalNode]:
        return (self.child,)

    # The wrapper's counters mirror its top fused operator, which the
    # kernel maintains at the interpreted flush points — so EXPLAIN
    # ANALYZE output is identical whichever execution mode (compiled
    # batches or the scalar fallback below) actually ran. Writes are
    # dropped: reset_metrics and shard-stat merges reach the real
    # operator through the plan walk anyway.
    @property
    def actual_rows(self) -> int:
        return self.child.actual_rows

    @actual_rows.setter
    def actual_rows(self, value: int) -> None:
        pass

    @property
    def actual_batches(self) -> int:
        return self.child.actual_batches

    @actual_batches.setter
    def actual_batches(self, value: int) -> None:
        pass

    def scalar_rows(self) -> Iterator[tuple]:
        # REPRO_BATCH_SIZE=0 disables batch execution entirely; the
        # original operator subtree is still wired below, so scalar
        # demand runs it interpreted (zero batches, scalar counters)
        # exactly as if the wrapper were absent.
        if configured_batch_size() == 0:
            yield from self.child.scalar_rows()
            return
        for batch in self.batches():
            yield from batch.rows()

    def batches(self, size: int | None = None) -> Iterator[RowBatch]:
        size = _resolve_batch_size(size)
        tables = []
        if self.join is not None:
            tables.append(_build_hash_table(self.join, size))
        self.kernel_runs += 1
        # Maximal fallback at the encoding boundary: generated kernels
        # index columns positionally and re-emit them wholesale, so an
        # encoded scan is decoded to plain lists before it reaches the
        # kernel — compiled results stay byte-identical to interpreted.
        source = map(decode_batch, self.source.batches(size))
        yield from self.kernel(source, self.fused, tables)

    def label(self) -> str:
        return (f"CompiledSpine[{len(self.fused)} ops, "
                f"{self.filename}]")


#: The shard layer walks spines through wrapper ``child`` links.
_SPINE_CHILD[CompiledSpineOp] = "child"


# ---------------------------------------------------------------------------
# The planner pass


def apply_codegen(root: PhysicalNode) -> PhysicalNode:
    """Replace fusible spines in *root* with compiled wrappers.

    Runs at the end of ``Planner.plan_unsharded`` — before the shard
    post-pass, so Exchange segment walk indices computed by the parent
    match what pool workers re-plan.
    """
    if not codegen_enabled():
        return root
    return _rewrite(root)


def _rewrite(node: PhysicalNode) -> PhysicalNode:
    wrapper = _try_fuse(node)
    if wrapper is not None:
        return wrapper
    for attribute in _CHILD_ATTRS:
        child = getattr(node, attribute, None)
        if isinstance(child, PhysicalNode):
            rewritten = _rewrite(child)
            if rewritten is not child:
                setattr(node, attribute, rewritten)
    return node


def _try_fuse(node: PhysicalNode) -> CompiledSpineOp | None:
    ops, source, join = _match_spine(node)
    if not any(isinstance(op, (FilterOp, ProjectOp, HashJoinOp))
               for op in ops):
        return None
    try:
        source_text = _SpineEmitter(ops, source, join).emit()
    except (EmitUnsupported, PlanningError):
        return None
    # Recurse below the fusion boundary: the chunk source and the join
    # build side may themselves contain fusible spines (a second join
    # becomes a stacked wrapper feeding this kernel chunks).
    new_source = _rewrite(source)
    if new_source is not source:
        bottom = ops[-1]
        setattr(bottom, "left" if bottom is join else "child", new_source)
    if join is not None:
        new_right = _rewrite(join.right)
        if new_right is not join.right:
            join.right = new_right
    kernel, filename = compiled_kernel(source_text, _KERNEL_NAMESPACE)
    return CompiledSpineOp(node, ops, new_source, join, kernel,
                           source_text, filename)
