"""Lowering from the parsed SQL AST to a logical plan.

Implements standard SQL clause evaluation order:

``FROM`` (joins) -> ``WHERE`` -> ``GROUP BY`` / aggregates -> ``HAVING``
-> window functions -> select list -> ``DISTINCT`` -> set ops ->
``ORDER BY`` -> ``LIMIT``.

Window functions and aggregate calls found in the select list are
extracted into dedicated plan nodes and replaced by references to
computed columns. ``IN (SELECT ...)`` conjuncts in WHERE become
semi-joins.
"""

from __future__ import annotations

from typing import Mapping

from repro.errors import PlanningError
from repro.minidb.catalog import Catalog
from repro.minidb.expressions import (
    AggregateCall,
    BinaryOp,
    ColumnRef,
    Expr,
    InSubquery,
    SortSpec,
    UnaryOp,
    WindowFunction,
    and_all,
)
from repro.minidb.plan.logical import (
    LogicalAggregate,
    LogicalDistinct,
    LogicalFilter,
    LogicalJoin,
    LogicalLimit,
    LogicalNode,
    LogicalProject,
    LogicalRequalify,
    LogicalSemiJoin,
    LogicalSort,
    LogicalUnion,
    LogicalWindow,
)
from repro.minidb.plan.logical import LogicalScan
from repro.minidb.sqlparse.ast import (
    DerivedTable,
    JoinRef,
    SelectItem,
    SelectStmt,
    TableName,
    TableRef,
)

__all__ = ["build_plan", "split_conjuncts"]


def split_conjuncts(expr: Expr | None) -> list[Expr]:
    """Flatten a predicate into its top-level AND conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, BinaryOp) and expr.op == "and":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def build_plan(statement: SelectStmt, catalog: Catalog,
               outer_ctes: Mapping[str, SelectStmt] | None = None,
               table_plans: Mapping[str, LogicalNode] | None = None,
               ) -> LogicalNode:
    """Build the logical plan for *statement* against *catalog*.

    ``table_plans`` maps table names to pre-built logical subplans; a
    FROM reference to such a name binds the subplan instead of scanning
    the stored table. The deferred-cleansing rewrite engine uses this to
    substitute Φ_C(...) for the reads table.
    """
    return _Builder(catalog, outer_ctes or {}, table_plans or {}) \
        .build(statement)


class _Builder:
    def __init__(self, catalog: Catalog,
                 ctes: Mapping[str, SelectStmt],
                 table_plans: Mapping[str, LogicalNode] | None = None) -> None:
        self._catalog = catalog
        self._ctes = dict(ctes)
        self._table_plans = dict(table_plans or {})
        self._generated = 0

    def _fresh_name(self, prefix: str) -> str:
        self._generated += 1
        return f"_{prefix}{self._generated}"

    # ------------------------------------------------------------------

    def build(self, statement: SelectStmt) -> LogicalNode:
        scope_ctes = dict(self._ctes)
        scope_ctes.update({cte.name: cte.select for cte in statement.ctes})
        builder = _Builder(self._catalog, scope_ctes, self._table_plans)
        plan = builder._build_core(statement)
        if statement.set_op is not None:
            right = _Builder(self._catalog, scope_ctes,
                             self._table_plans).build(
                statement.set_op.right)
            plan = LogicalUnion(plan, right,
                                all_rows=statement.set_op.op == "union_all")
            if statement.set_op.op == "union":
                plan = LogicalDistinct(plan)
        return plan

    # ------------------------------------------------------------------

    def _build_core(self, statement: SelectStmt) -> LogicalNode:
        plan = self._build_from(statement.from_refs)
        plan = self._apply_where(plan, statement.where)
        plan, item_exprs, having = self._apply_grouping(plan, statement)
        if having is not None:
            plan = LogicalFilter(plan, having)
        plan, item_exprs = self._apply_windows(plan, item_exprs)
        items = self._expand_items(plan, statement.items, item_exprs)
        sort_specs: list[SortSpec] = []
        hidden: list[tuple[Expr, str]] = []
        if statement.order_by:
            sort_specs, hidden = self._resolve_order_by(
                plan, statement.order_by, statement.items, items)
        if hidden and statement.distinct:
            raise PlanningError(
                "ORDER BY expressions must appear in the select list "
                "when DISTINCT is used")
        plan = LogicalProject(plan, items + hidden)
        if statement.distinct:
            plan = LogicalDistinct(plan)
        if sort_specs:
            plan = LogicalSort(plan, sort_specs)
        if hidden:
            # Drop the hidden sort columns after ordering.
            plan = LogicalProject(
                plan, [(ColumnRef(name), name) for _, name in items])
        if statement.limit is not None:
            plan = LogicalLimit(plan, statement.limit)
        return plan

    # -- FROM -----------------------------------------------------------

    def _build_from(self, refs: list[TableRef]) -> LogicalNode:
        if not refs:
            raise PlanningError("queries without a FROM clause are not "
                                "supported")
        plan = self._build_table_ref(refs[0])
        for ref in refs[1:]:
            plan = LogicalJoin(plan, self._build_table_ref(ref))
        return plan

    def _build_table_ref(self, ref: TableRef) -> LogicalNode:
        if isinstance(ref, TableName):
            if ref.name in self._table_plans:
                return LogicalRequalify(self._table_plans[ref.name],
                                        ref.binding)
            if ref.name in self._ctes:
                sub_plan = self.build(self._ctes[ref.name])
                return LogicalRequalify(sub_plan, ref.binding)
            table = self._catalog.table(ref.name)
            return LogicalScan(table, ref.binding)
        if isinstance(ref, DerivedTable):
            sub_plan = self.build(ref.select)
            return LogicalRequalify(sub_plan, ref.alias)
        if isinstance(ref, JoinRef):
            left = self._build_table_ref(ref.left)
            right = self._build_table_ref(ref.right)
            return LogicalJoin(left, right, ref.kind, ref.condition)
        raise PlanningError(f"unsupported table reference {ref!r}")

    # -- WHERE ------------------------------------------------------------

    def _apply_where(self, plan: LogicalNode,
                     where: Expr | None) -> LogicalNode:
        plain: list[Expr] = []
        for conjunct in split_conjuncts(where):
            if isinstance(conjunct, InSubquery):
                plan = self._semi_join(plan, conjunct)
            elif isinstance(conjunct, UnaryOp) and conjunct.op == "not" \
                    and isinstance(conjunct.operand, InSubquery):
                inner = conjunct.operand
                plan = self._semi_join(
                    plan, InSubquery(inner.operand, inner.subquery,
                                     not inner.negated))
            else:
                for node in conjunct.walk():
                    if isinstance(node, InSubquery):
                        raise PlanningError(
                            "IN (SELECT ...) is only supported as a "
                            "top-level AND conjunct of WHERE")
                plain.append(conjunct)
        predicate = and_all(plain)
        if predicate is not None:
            plan = LogicalFilter(plan, predicate)
        return plan

    def _semi_join(self, plan: LogicalNode,
                   conjunct: InSubquery) -> LogicalNode:
        subquery_plan = _Builder(self._catalog, self._ctes,
                                 self._table_plans).build(
            conjunct.subquery)
        return LogicalSemiJoin(plan, subquery_plan, conjunct.operand,
                               conjunct.negated)

    # -- GROUP BY / aggregates -------------------------------------------

    def _apply_grouping(
        self, plan: LogicalNode, statement: SelectStmt,
    ) -> tuple[LogicalNode, list[Expr | None], Expr | None]:
        """Returns (plan, rewritten select-item exprs, rewritten HAVING)."""
        item_exprs: list[Expr | None] = [
            item.expr for item in statement.items]
        aggregates: list[AggregateCall] = []
        for expr in item_exprs:
            if expr is None:
                continue
            for node in expr.walk():
                if isinstance(node, AggregateCall) and node not in aggregates:
                    aggregates.append(node)
        if statement.having is not None:
            for node in statement.having.walk():
                if isinstance(node, AggregateCall) and node not in aggregates:
                    aggregates.append(node)
        if not statement.group_by and not aggregates:
            return plan, item_exprs, statement.having
        if statement.having is not None and not statement.group_by \
                and not aggregates:
            raise PlanningError("HAVING requires GROUP BY or aggregates")

        group_items: list[tuple[Expr, str]] = []
        substitution: dict[Expr, Expr] = {}
        used_group_names: set[str] = set()
        for position, expr in enumerate(statement.group_by):
            if isinstance(expr, ColumnRef) \
                    and expr.name not in used_group_names:
                name = expr.name
            else:
                name = self._fresh_name("g")
            used_group_names.add(name)
            group_items.append((expr, name))
            substitution[expr] = ColumnRef(name)
        aggregate_items: list[tuple[AggregateCall, str]] = []
        for position, call in enumerate(aggregates):
            name = self._fresh_name("a")
            aggregate_items.append((call, name))
            substitution[call] = ColumnRef(name)

        plan = LogicalAggregate(plan, group_items, aggregate_items)
        rewritten_items = [
            expr.substitute(substitution) if expr is not None else None
            for expr in item_exprs]
        having = (statement.having.substitute(substitution)
                  if statement.having is not None else None)
        return plan, rewritten_items, having

    # -- window functions --------------------------------------------------

    def _apply_windows(
        self, plan: LogicalNode, item_exprs: list[Expr | None],
    ) -> tuple[LogicalNode, list[Expr | None]]:
        window_calls: list[WindowFunction] = []
        for expr in item_exprs:
            if expr is None:
                continue
            for node in expr.walk():
                if isinstance(node, WindowFunction) \
                        and node not in window_calls:
                    window_calls.append(node)
        if not window_calls:
            return plan, item_exprs
        # Group calls that share partition/order keys into a single
        # Window node, preserving first-appearance order of groups.
        groups: list[tuple[tuple, list[WindowFunction]]] = []
        for call in window_calls:
            signature = (call.partition_by, call.order_by)
            for existing_signature, members in groups:
                if existing_signature == signature:
                    members.append(call)
                    break
            else:
                groups.append((signature, [call]))
        substitution: dict[Expr, Expr] = {}
        for _, members in groups:
            named = [(call, self._fresh_name("w")) for call in members]
            plan = LogicalWindow(plan, named)
            for call, name in named:
                substitution[call] = ColumnRef(name)
        rewritten = [
            expr.substitute(substitution) if expr is not None else None
            for expr in item_exprs]
        return plan, rewritten

    # -- select list --------------------------------------------------------

    def _expand_items(
        self, plan: LogicalNode, items: list[SelectItem],
        item_exprs: list[Expr | None],
    ) -> list[tuple[Expr, str]]:
        out: list[tuple[Expr, str]] = []
        used_names: set[str] = set()

        def unique(name: str) -> str:
            candidate = name
            suffix = 1
            while candidate in used_names:
                candidate = f"{name}_{suffix}"
                suffix += 1
            used_names.add(candidate)
            return candidate

        for item, expr in zip(items, item_exprs):
            if item.star:
                for field in plan.schema:
                    if item.qualifier and field.qualifier != item.qualifier:
                        continue
                    # Skip engine-generated window/aggregate columns.
                    if field.qualifier is None and field.name.startswith("_"):
                        continue
                    out.append((ColumnRef(field.name, field.qualifier),
                                unique(field.name)))
                continue
            if item.alias:
                name = item.alias
            elif isinstance(item.expr, ColumnRef):
                name = item.expr.name
            else:
                name = self._fresh_name("col")
            out.append((expr, unique(name)))
        return out

    # -- ORDER BY -------------------------------------------------------

    def _resolve_order_by(
        self, plan: LogicalNode, order_by: list[SortSpec],
        original_items: list[SelectItem],
        projected: list[tuple[Expr, str]],
    ) -> tuple[list[SortSpec], list[tuple[Expr, str]]]:
        """Map ORDER BY expressions onto the projection's output.

        Resolution order per the SQL convention: a select-item alias or
        identical expression; an output column name; otherwise the
        expression is computed over the pre-projection plan as a hidden
        column (returned separately) that the caller sorts on and then
        drops.
        """
        projected_names = {name for _, name in projected}
        by_expr = {}
        for item, (expr, name) in zip(
                [i for i in original_items if not i.star], projected):
            if item.expr is not None:
                by_expr.setdefault(item.expr, name)
        resolved: list[SortSpec] = []
        hidden: list[tuple[Expr, str]] = []
        for spec in order_by:
            expr = spec.expr
            if expr in by_expr:
                resolved.append(SortSpec(ColumnRef(by_expr[expr]),
                                         spec.ascending))
                continue
            if isinstance(expr, ColumnRef) and expr.qualifier is None \
                    and expr.name in projected_names:
                resolved.append(SortSpec(ColumnRef(expr.name),
                                         spec.ascending))
                continue
            # Hidden sort column computed over the pre-projection plan.
            for ref in expr.referenced_columns():
                if not plan.schema.has(ref.qualifier, ref.name):
                    raise PlanningError(
                        f"ORDER BY expression {expr.to_sql()} references "
                        f"unknown column {ref.to_sql()}")
            name = self._fresh_name("ord")
            hidden.append((expr, name))
            resolved.append(SortSpec(ColumnRef(name), spec.ascending))
        return resolved, hidden
