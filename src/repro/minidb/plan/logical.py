"""Logical plan operators.

Each node is a small immutable-ish tree object that knows its output
:class:`PlanSchema`. The builder (``plan/builder.py``) produces logical
plans from parsed AST; the optimizer rewrites them; the planner lowers
them to physical operators.

Expression output types are inferred by :func:`infer_type`, which is
deliberately simple: it exists so plan schemas can be propagated and
rule-input compatibility checked, not to implement a full SQL type
system.
"""

from __future__ import annotations

from typing import Any, Iterator, Sequence

from repro.errors import PlanningError
from repro.minidb.expressions import (
    AggregateCall,
    BinaryOp,
    Case,
    ColumnRef,
    Expr,
    FuncCall,
    InList,
    InSubquery,
    IsNull,
    Literal,
    SortSpec,
    UnaryOp,
    WindowFunction,
)
from repro.minidb.plan.planschema import Field, PlanSchema
from repro.minidb.table import Table
from repro.minidb.types import SqlType

__all__ = [
    "infer_type",
    "LogicalNode",
    "LogicalScan",
    "LogicalFilter",
    "LogicalProject",
    "LogicalJoin",
    "LogicalSemiJoin",
    "LogicalAggregate",
    "LogicalWindow",
    "LogicalDistinct",
    "LogicalUnion",
    "LogicalSort",
    "LogicalLimit",
    "LogicalRequalify",
]


def _literal_type(value: Any) -> SqlType:
    if isinstance(value, bool):
        return SqlType.BOOLEAN
    if isinstance(value, int):
        return SqlType.INTEGER
    if isinstance(value, float):
        return SqlType.DOUBLE
    if isinstance(value, str):
        return SqlType.VARCHAR
    if value is None:
        return SqlType.VARCHAR
    raise PlanningError(f"cannot type literal {value!r}")


def infer_type(expr: Expr, schema: PlanSchema) -> SqlType:
    """Best-effort static type of *expr* over rows of *schema*."""
    if isinstance(expr, ColumnRef):
        return schema.fields[schema.resolve(expr.qualifier, expr.name)].sql_type
    if isinstance(expr, Literal):
        return _literal_type(expr.value)
    if isinstance(expr, BinaryOp):
        if expr.op in ("and", "or") or expr.op in ("=", "!=", "<", "<=",
                                                   ">", ">="):
            return SqlType.BOOLEAN
        left = infer_type(expr.left, schema)
        right = infer_type(expr.right, schema)
        if expr.op == "-" and left is SqlType.TIMESTAMP \
                and right is SqlType.TIMESTAMP:
            return SqlType.INTERVAL
        if SqlType.TIMESTAMP in (left, right):
            return SqlType.TIMESTAMP
        if expr.op == "/":
            return SqlType.DOUBLE
        if SqlType.DOUBLE in (left, right):
            return SqlType.DOUBLE
        if SqlType.INTERVAL in (left, right):
            return SqlType.INTERVAL
        return SqlType.INTEGER
    if isinstance(expr, UnaryOp):
        if expr.op == "not":
            return SqlType.BOOLEAN
        return infer_type(expr.operand, schema)
    if isinstance(expr, (IsNull, InList, InSubquery)):
        return SqlType.BOOLEAN
    if isinstance(expr, Case):
        for _, result in expr.whens:
            if not (isinstance(result, Literal) and result.value is None):
                return infer_type(result, schema)
        if expr.else_result is not None:
            return infer_type(expr.else_result, schema)
        return SqlType.VARCHAR
    if isinstance(expr, FuncCall):
        if expr.name in ("length", "abs"):
            return SqlType.INTEGER if expr.name == "length" \
                else infer_type(expr.args[0], schema)
        if expr.name == "like":
            return SqlType.BOOLEAN
        if expr.name in ("coalesce", "nullif", "least", "greatest"):
            return infer_type(expr.args[0], schema)
        return SqlType.VARCHAR
    if isinstance(expr, AggregateCall):
        if expr.name == "count":
            return SqlType.INTEGER
        if expr.name == "avg":
            return SqlType.DOUBLE
        return infer_type(expr.argument, schema)
    if isinstance(expr, WindowFunction):
        if expr.name in ("count", "row_number"):
            return SqlType.INTEGER
        if expr.name == "avg":
            return SqlType.DOUBLE
        if expr.argument is None:
            return SqlType.INTEGER
        return infer_type(expr.argument, schema)
    raise PlanningError(f"cannot infer type of {expr!r}")


class LogicalNode:
    """Base class: every logical operator exposes schema and children."""

    schema: PlanSchema

    def children(self) -> Sequence["LogicalNode"]:
        return ()

    def label(self) -> str:
        """Single-line description for EXPLAIN output."""
        return type(self).__name__

    def walk(self) -> Iterator["LogicalNode"]:
        yield self
        for child in self.children():
            yield from child.walk()


class LogicalScan(LogicalNode):
    """Full access to a stored table, bound under *binding*."""

    def __init__(self, table: Table, binding: str | None = None) -> None:
        self.table = table
        self.binding = (binding or table.name).lower()
        self.schema = PlanSchema.from_table(table.schema, self.binding,
                                            table_name=table.name)

    def label(self) -> str:
        if self.binding != self.table.name:
            return f"Scan({self.table.name} AS {self.binding})"
        return f"Scan({self.table.name})"


class LogicalFilter(LogicalNode):
    """Row filter: keeps rows where *predicate* evaluates to TRUE."""

    def __init__(self, child: LogicalNode, predicate: Expr) -> None:
        self.child = child
        self.predicate = predicate
        self.schema = child.schema

    def children(self) -> Sequence[LogicalNode]:
        return (self.child,)

    def label(self) -> str:
        return f"Filter({self.predicate.to_sql()})"


class LogicalProject(LogicalNode):
    """Computes a new row shape from named expressions."""

    def __init__(self, child: LogicalNode,
                 items: Sequence[tuple[Expr, str]]) -> None:
        self.child = child
        self.items = [(expr, name.lower()) for expr, name in items]
        fields = []
        for expr, name in self.items:
            origin = None
            if isinstance(expr, ColumnRef):
                position = child.schema.resolve(expr.qualifier, expr.name)
                origin = child.schema.fields[position].origin
            fields.append(Field(name, infer_type(expr, child.schema),
                                origin=origin))
        self.schema = PlanSchema(fields)

    def children(self) -> Sequence[LogicalNode]:
        return (self.child,)

    def label(self) -> str:
        body = ", ".join(f"{expr.to_sql()} AS {name}"
                         for expr, name in self.items)
        return f"Project({body})"


class LogicalJoin(LogicalNode):
    """Inner or left join; ``condition`` of None means cross join."""

    def __init__(self, left: LogicalNode, right: LogicalNode,
                 kind: str = "inner", condition: Expr | None = None) -> None:
        if kind not in ("inner", "left"):
            raise PlanningError(f"unsupported join kind {kind!r}")
        self.left = left
        self.right = right
        self.kind = kind
        self.condition = condition
        self.schema = left.schema.concat(right.schema)

    def children(self) -> Sequence[LogicalNode]:
        return (self.left, self.right)

    def label(self) -> str:
        condition = self.condition.to_sql() if self.condition else "TRUE"
        return f"Join[{self.kind}]({condition})"


class LogicalSemiJoin(LogicalNode):
    """``left WHERE left_expr [NOT] IN (right plan's single column)``."""

    def __init__(self, left: LogicalNode, right: LogicalNode,
                 left_expr: Expr, negated: bool = False) -> None:
        if len(right.schema) != 1:
            raise PlanningError(
                "IN subquery must produce exactly one column, got "
                f"{len(right.schema)}")
        self.left = left
        self.right = right
        self.left_expr = left_expr
        self.negated = negated
        self.schema = left.schema

    def children(self) -> Sequence[LogicalNode]:
        return (self.left, self.right)

    def label(self) -> str:
        keyword = "NOT IN" if self.negated else "IN"
        return f"SemiJoin({self.left_expr.to_sql()} {keyword} ...)"


class LogicalAggregate(LogicalNode):
    """Hash aggregation over group keys with aggregate outputs.

    Output schema: the group fields (in order) followed by the aggregate
    fields.
    """

    def __init__(self, child: LogicalNode,
                 group: Sequence[tuple[Expr, str]],
                 aggregates: Sequence[tuple[AggregateCall, str]]) -> None:
        self.child = child
        self.group = [(expr, name.lower()) for expr, name in group]
        self.aggregates = [(call, name.lower()) for call, name in aggregates]
        fields = []
        for expr, name in self.group:
            origin = None
            if isinstance(expr, ColumnRef):
                position = child.schema.resolve(expr.qualifier, expr.name)
                origin = child.schema.fields[position].origin
            fields.append(Field(name, infer_type(expr, child.schema),
                                origin=origin))
        fields.extend(Field(name, infer_type(call, child.schema))
                      for call, name in self.aggregates)
        self.schema = PlanSchema(fields)

    def children(self) -> Sequence[LogicalNode]:
        return (self.child,)

    def label(self) -> str:
        keys = ", ".join(name for _, name in self.group)
        aggs = ", ".join(f"{call.to_sql()} AS {name}"
                         for call, name in self.aggregates)
        return f"Aggregate(keys=[{keys}], aggs=[{aggs}])"


class LogicalWindow(LogicalNode):
    """Appends one computed column per window function.

    All functions in one node must share the same PARTITION BY / ORDER BY
    keys (the builder groups compatible specs together); this models the
    paper's observation that rules sharing an ordering share one sort.
    """

    def __init__(self, child: LogicalNode,
                 functions: Sequence[tuple[WindowFunction, str]]) -> None:
        if not functions:
            raise PlanningError("window node requires at least one function")
        first = functions[0][0]
        for call, _ in functions[1:]:
            if call.partition_by != first.partition_by \
                    or call.order_by != first.order_by:
                raise PlanningError(
                    "all window functions in one Window node must share "
                    "PARTITION BY and ORDER BY")
        self.child = child
        self.functions = [(call, name.lower()) for call, name in functions]
        schema = child.schema
        for call, name in self.functions:
            schema = schema.append(Field(name, infer_type(call, child.schema)))
        self.schema = schema

    @property
    def partition_by(self) -> tuple[Expr, ...]:
        return self.functions[0][0].partition_by

    @property
    def order_by(self) -> tuple[SortSpec, ...]:
        return self.functions[0][0].order_by

    def children(self) -> Sequence[LogicalNode]:
        return (self.child,)

    def label(self) -> str:
        body = ", ".join(f"{call.to_sql()} AS {name}"
                         for call, name in self.functions)
        return f"Window({body})"


class LogicalDistinct(LogicalNode):
    """Duplicate elimination over whole rows."""

    def __init__(self, child: LogicalNode) -> None:
        self.child = child
        self.schema = child.schema

    def children(self) -> Sequence[LogicalNode]:
        return (self.child,)

    def label(self) -> str:
        return "Distinct"


class LogicalUnion(LogicalNode):
    """UNION (ALL) of two inputs with compatible arity."""

    def __init__(self, left: LogicalNode, right: LogicalNode,
                 all_rows: bool) -> None:
        if len(left.schema) != len(right.schema):
            raise PlanningError(
                f"UNION arity mismatch: {len(left.schema)} vs "
                f"{len(right.schema)} columns")
        self.left = left
        self.right = right
        self.all_rows = all_rows
        self.schema = left.schema

    def children(self) -> Sequence[LogicalNode]:
        return (self.left, self.right)

    def label(self) -> str:
        return "UnionAll" if self.all_rows else "Union"


class LogicalSort(LogicalNode):
    """Total order by the given sort keys."""

    def __init__(self, child: LogicalNode, keys: Sequence[SortSpec]) -> None:
        self.child = child
        self.keys = list(keys)
        self.schema = child.schema

    def children(self) -> Sequence[LogicalNode]:
        return (self.child,)

    def label(self) -> str:
        body = ", ".join(spec.to_sql() for spec in self.keys)
        return f"Sort({body})"


class LogicalLimit(LogicalNode):
    """First *count* rows of the input."""

    def __init__(self, child: LogicalNode, count: int) -> None:
        self.child = child
        self.count = count
        self.schema = child.schema

    def children(self) -> Sequence[LogicalNode]:
        return (self.child,)

    def label(self) -> str:
        return f"Limit({self.count})"


class LogicalRequalify(LogicalNode):
    """Re-binds a subplan's output columns under one qualifier.

    Used for derived tables and CTE references: ``(SELECT ...) v1`` makes
    every output column addressable as ``v1.column``.
    """

    def __init__(self, child: LogicalNode, binding: str) -> None:
        self.child = child
        self.binding = binding.lower()
        self.schema = child.schema.requalify(self.binding)

    def children(self) -> Sequence[LogicalNode]:
        return (self.child,)

    def label(self) -> str:
        return f"As({self.binding})"
