"""Physical (executable) plan operators.

Operators are pull-based and support two execution surfaces:

* ``batches()`` — the vectorized path: yields :class:`RowBatch` columnar
  chunks. Hot operators (scan, filter, project, hash join, semi join,
  sort, aggregate, distinct, union, limit) implement it natively,
  evaluating whole chunks through batch-compiled expressions
  (:meth:`Expr.bind_batch`) instead of calling a closure per row.
* ``rows()`` — a thin tuple-at-a-time adapter kept for compatibility:
  under batch execution it re-yields batch rows; with
  ``REPRO_BATCH_SIZE=0`` it runs the original ``scalar_rows()``
  implementations, which are retained verbatim as the reference
  interpreter (and as the honest "before" side of the vectorization
  benchmarks).

Each operator carries:

* ``schema`` — its output :class:`PlanSchema`;
* ``estimated_rows`` / ``estimated_cost`` — filled in by the planner's
  cost model and surfaced through EXPLAIN (the rewrite engine compares
  root costs of candidate rewrites, as the paper does with DB2's
  estimates);
* ``ordering`` — the output order the operator *guarantees*, as a tuple
  of ``(column position, ascending)`` pairs. The planner uses it to skip
  redundant sorts (the paper's "order sharing" between cleansing windows
  and query windows);
* ``actual_rows`` / ``actual_batches`` — incremented during execution,
  for EXPLAIN-ANALYZE style inspection and for the benchmark harness's
  work metrics. Both paths produce identical ``actual_rows`` totals.
"""

from __future__ import annotations

from itertools import islice
from typing import Any, Callable, Iterator, Sequence

from repro.errors import ExecutionError
from repro.minidb.expressions import BatchBound, Expr
from repro.minidb.index import IndexRange, SortedIndex
from repro.minidb.plan.planschema import PlanSchema
from repro.minidb.storage.heap import DiskRowStore
from repro.minidb.storage.zones import pruning_enabled
from repro.minidb.table import Table
from repro.minidb.types import sort_key_column
from repro.minidb.vector import (
    DEFAULT_BATCH_SIZE,
    ENCODED_TYPES,
    DictColumn,
    RLEColumn,
    RowBatch,
    batch_execution_enabled,
    concat_columns,
    configured_batch_size,
    record_encoded_columns,
)

__all__ = [
    "PhysicalNode",
    "SeqScan",
    "IndexRangeScan",
    "FilterOp",
    "ProjectOp",
    "HashJoinOp",
    "NestedLoopJoinOp",
    "SemiJoinOp",
    "SortOp",
    "AggregateOp",
    "DistinctOp",
    "UnionAllOp",
    "LimitOp",
    "Ordering",
]

#: A guaranteed output order: ((column position, ascending), ...).
Ordering = tuple[tuple[int, bool], ...]


def _resolve_batch_size(size: int | None) -> int:
    """The effective chunk size for one ``batches()`` invocation."""
    if size is not None and size > 0:
        return size
    return configured_batch_size() or DEFAULT_BATCH_SIZE


class PhysicalNode:
    """Base class for executable operators.

    The hierarchy is slotted: plans for large queries allocate thousands
    of nodes, and per-row inner loops read operator attributes, so the
    fixed layout saves both memory and a dict lookup per access.
    """

    __slots__ = ("schema", "ordering", "estimated_rows", "estimated_cost",
                 "actual_rows", "actual_batches")

    schema: PlanSchema
    ordering: Ordering
    estimated_rows: float
    estimated_cost: float

    def __init__(self) -> None:
        self.ordering = ()
        self.estimated_rows = 0.0
        self.estimated_cost = 0.0
        self.actual_rows = 0
        self.actual_batches = 0

    def inputs(self) -> Sequence["PhysicalNode"]:
        return ()

    def scalar_rows(self) -> Iterator[tuple]:
        """Tuple-at-a-time implementation (the reference interpreter)."""
        raise NotImplementedError

    def rows(self) -> Iterator[tuple]:
        """Yield output tuples under the configured execution mode."""
        if not batch_execution_enabled():
            yield from self.scalar_rows()
            return
        for batch in self.batches():
            yield from batch.rows()

    def batches(self, size: int | None = None) -> Iterator[RowBatch]:
        """Yield output as columnar chunks.

        Operators without a native vectorized implementation chunk
        their ``scalar_rows()`` stream, so a mixed plan still moves
        batches end to end.
        """
        size = _resolve_batch_size(size)
        width = len(self.schema)
        chunk: list[tuple] = []
        for row in self.scalar_rows():
            chunk.append(row)
            if len(chunk) >= size:
                self.actual_batches += 1
                yield RowBatch.from_rows(chunk, width)
                chunk = []
        if chunk:
            self.actual_batches += 1
            yield RowBatch.from_rows(chunk, width)

    def label(self) -> str:
        return type(self).__name__

    def explain(self, depth: int = 0, analyze: bool = False) -> str:
        """Render this subtree as indented EXPLAIN text.

        With ``analyze=True`` (after executing the plan) each line also
        reports the rows the operator actually produced, EXPLAIN ANALYZE
        style.
        """
        line = (f"{'  ' * depth}{self.label()}  "
                f"[rows={self.estimated_rows:.0f} "
                f"cost={self.estimated_cost:.0f}]")
        if analyze:
            line += f" (actual rows={self.actual_rows})"
        parts = [line]
        parts.extend(child.explain(depth + 1, analyze)
                     for child in self.inputs())
        return "\n".join(parts)

    def walk(self) -> Iterator["PhysicalNode"]:
        yield self
        for child in self.inputs():
            yield from child.walk()

    def reset_metrics(self) -> None:
        """Zero the per-execution counters across the whole subtree.

        Prepared plans are re-executed; without a reset, ``actual_rows``
        and ``sorted_rows`` would accumulate across runs and corrupt
        :class:`ExecutionMetrics`.
        """
        for node in self.walk():
            node.actual_rows = 0
            node.actual_batches = 0
            if hasattr(node, "sorted_rows"):
                node.sorted_rows = 0
            if hasattr(node, "input_rows"):
                node.input_rows = 0
            if hasattr(node, "kernel_runs"):  # codegen.CompiledSpineOp
                node.kernel_runs = 0
            if hasattr(node, "workers_used"):  # ExchangeOp
                node.workers_used = 0
                node.morsel_count = 0
                node.steal_count = 0
                node.per_shard_rows = []


class SeqScan(PhysicalNode):
    """Full scan of a stored table in insertion order.

    ``shard`` restricts the scan to one morsel of a shard-parallel
    dispatch (see ``plan.shard``): either a contiguous row range
    ``("block", lo, hi)`` or a key-value set ``("key", position,
    values)``. Pool workers set it around each morsel execution; it is
    always None in serial plans.

    ``visible_count``/``visible_rows`` pin the scan to an MVCC
    snapshot (see ``minidb.snapshot``). With ``visible_count`` set the
    scan reads only positions below the bound — appends only extend
    the row store, so the bounded prefix is exactly the pinned epoch.
    ``visible_rows`` additionally redirects the scan to a frozen row
    prefix when the live store was rewritten (``replace_rows``/drop)
    after the snapshot was pinned. Both are None for live execution.
    """

    __slots__ = ('table', 'shard', 'prune', 'visible_count',
                 'visible_rows')

    def __init__(self, table: Table, schema: PlanSchema) -> None:
        super().__init__()
        self.table = table
        self.schema = schema
        self.shard: tuple | None = None
        #: Zone-pruning conjuncts ``(column position, op, literal)``
        #: attached by the planner; consulted only for disk-backed
        #: tables, where page zone maps can disprove whole pages.
        self.prune: list[tuple] = []
        self.visible_count: int | None = None
        self.visible_rows = None

    def _source_rows(self):
        """The row sequence this scan reads (live store or frozen)."""
        if self.visible_rows is not None:
            return self.visible_rows
        return self.table.rows

    def _pruned_source(self):
        """Page runs surviving zone pruning, or None when inapplicable.

        Both the scalar and the batch path route through this, so the
        two execute identically (same pages skipped, same actual_rows)
        and EXPLAIN ANALYZE parity between them is preserved. Detached
        snapshots never use live pages: the frozen prefix is a plain
        list, so pruning is skipped rather than consulting pages that
        may already describe rewritten data.
        """
        if not self.prune or not pruning_enabled():
            return None
        if self.visible_rows is not None:
            return None
        store = self.table.rows
        if not isinstance(store, DiskRowStore):
            return None
        return store.pruned_pages(self.prune)

    def _pruned_rows(self, pages) -> Iterator[list]:
        """Per-page row runs from *pages*, snapshot- and shard-restricted."""
        shard = self.shard
        bound = self.visible_count
        for start, rows in pages:
            if bound is not None:
                # Page start offsets are stable under append, so the
                # snapshot bound clips each run positionally.
                if start >= bound:
                    continue
                if start + len(rows) > bound:
                    rows = rows[:bound - start]
            if shard is None:
                selected = rows
            elif shard[0] == "block":
                _, lo, hi = shard
                selected = rows[max(0, lo - start):
                                max(0, hi - start)]
            else:
                _, position, values = shard
                selected = [row for row in rows
                            if row[position] in values]
            if selected:
                yield selected

    def _shard_rows(self, rows, bound: int | None) -> Iterator[tuple]:
        kind = self.shard[0]
        if kind == "block":
            _, lo, hi = self.shard
            if bound is not None:
                hi = min(hi, bound)
            yield from rows[lo:hi]
            return
        _, position, values = self.shard
        source = rows if bound is None else islice(iter(rows), bound)
        for row in source:
            if row[position] in values:
                yield row

    def scalar_rows(self) -> Iterator[tuple]:
        pages = self._pruned_source()
        if pages is not None:
            for selected in self._pruned_rows(pages):
                for row in selected:
                    self.actual_rows += 1
                    yield row
            return
        rows = self._source_rows()
        bound = self.visible_count
        if self.shard is not None:
            source = self._shard_rows(rows, bound)
        elif bound is None:
            source = rows
        else:
            # Never iterate the live store unbounded under a snapshot:
            # list iterators observe concurrent appends, so the bound
            # must be enforced even when it equals len(rows) right now.
            source = islice(iter(rows), bound)
        for row in source:
            self.actual_rows += 1
            yield row

    def batches(self, size: int | None = None) -> Iterator[RowBatch]:
        size = _resolve_batch_size(size)
        pages = self._pruned_source()
        if pages is not None:
            # Transpose surviving page runs directly instead of going
            # through ``columnar()``: the column cache would fetch every
            # page and defeat the pruning.
            pending: list[tuple] = []
            for selected in self._pruned_rows(pages):
                pending.extend(selected)
                while len(pending) >= size:
                    chunk, pending = pending[:size], pending[size:]
                    yield self._row_chunk_batch(chunk)
            if pending:
                yield self._row_chunk_batch(pending)
            return
        if self.visible_rows is not None:
            yield from self._frozen_batches(size)
            return
        columns = self.table.encoded_columnar()
        encoded = sum(1 for column in columns
                      if isinstance(column, ENCODED_TYPES))
        if encoded:
            record_encoded_columns(encoded)
        bound = self.visible_count
        if self.shard is not None:
            yield from self._shard_batches(columns, size, bound)
            return
        total = len(self.table.rows) if bound is None else bound
        for lo in range(0, total, size):
            hi = min(lo + size, total)
            self.actual_rows += hi - lo
            self.actual_batches += 1
            yield RowBatch([column[lo:hi] for column in columns], hi - lo)

    def _frozen_batches(self, size: int) -> Iterator[RowBatch]:
        """Batch path over a detached snapshot's frozen row prefix.

        The frozen prefix is a plain row list from a retired epoch, so
        the columnar cache (which reflects the live store) cannot be
        used; rows are transposed per chunk instead, shard-restricted
        the same way the live paths are.
        """
        rows = self.visible_rows
        total = len(rows)
        if self.visible_count is not None:
            total = min(total, self.visible_count)
        if self.shard is None:
            for lo in range(0, total, size):
                chunk = rows[lo:min(lo + size, total)]
                if chunk:
                    yield self._row_chunk_batch(chunk)
            return
        if self.shard[0] == "block":
            _, shard_lo, shard_hi = self.shard
            shard_hi = min(shard_hi, total)
            for lo in range(shard_lo, shard_hi, size):
                chunk = rows[lo:min(lo + size, shard_hi)]
                if chunk:
                    yield self._row_chunk_batch(chunk)
            return
        _, position, values = self.shard
        selected = [row for row in rows[:total]
                    if row[position] in values]
        for lo in range(0, len(selected), size):
            yield self._row_chunk_batch(selected[lo:lo + size])

    def _row_chunk_batch(self, chunk: list[tuple]) -> RowBatch:
        self.actual_rows += len(chunk)
        self.actual_batches += 1
        return RowBatch([list(column) for column in zip(*chunk)],
                        len(chunk))

    def _shard_batches(self, columns: list[list], size: int,
                       bound: int | None) -> Iterator[RowBatch]:
        kind = self.shard[0]
        if kind == "block":
            _, shard_lo, shard_hi = self.shard
            if bound is not None:
                shard_hi = min(shard_hi, bound)
            for lo in range(shard_lo, shard_hi, size):
                hi = min(lo + size, shard_hi)
                self.actual_rows += hi - lo
                self.actual_batches += 1
                yield RowBatch([column[lo:hi] for column in columns],
                               hi - lo)
            return
        _, position, values = self.shard
        key_column = columns[position] if columns else []
        if bound is not None:
            key_column = key_column[:bound]
        selected = [i for i, value in enumerate(key_column)
                    if value in values]
        for lo in range(0, len(selected), size):
            chunk = selected[lo:lo + size]
            self.actual_rows += len(chunk)
            self.actual_batches += 1
            yield RowBatch([column.take(chunk)
                            if isinstance(column, ENCODED_TYPES)
                            else [column[i] for i in chunk]
                            for column in columns], len(chunk))

    def label(self) -> str:
        suffix = "" if self.shard is None else f" shard={self.shard[0]}"
        return f"SeqScan({self.table.name}){suffix}"


class IndexRangeScan(PhysicalNode):
    """Range scan through a sorted index; output is ordered by the key.

    ``visible_count``/``visible_rows`` pin the scan to an MVCC
    snapshot, mirroring :class:`SeqScan`. With only ``visible_count``
    set, index entries at positions past the bound (appended after the
    pin) are skipped — the index yields in key order, so later
    positions are interleaved and must be filtered, not truncated.
    With ``visible_rows`` set (the store was rewritten after the pin)
    the live index no longer describes the frozen prefix, so the scan
    filters and sorts the frozen rows directly, reproducing the index's
    output order exactly: equal keys come out in position order both
    ways (``bisect_right`` insertion and a stable sort agree).
    """

    __slots__ = ('table', 'index', 'key_range', 'visible_count',
                 'visible_rows')

    def __init__(self, table: Table, schema: PlanSchema,
                 index: SortedIndex, key_range: IndexRange) -> None:
        super().__init__()
        self.table = table
        self.schema = schema
        self.index = index
        self.key_range = key_range
        key_position = table.schema.position_of(index.column)
        self.ordering = ((key_position, True),)
        self.visible_count: int | None = None
        self.visible_rows = None

    def _detached_rows(self) -> list[tuple]:
        key_position = self.table.schema.position_of(self.index.column)
        source = islice(iter(self.visible_rows), self.visible_count)
        selected = [row for row in source
                    if self.key_range.contains(row[key_position])]
        selected.sort(key=lambda row: row[key_position])
        return selected

    def scalar_rows(self) -> Iterator[tuple]:
        if self.visible_rows is not None:
            for row in self._detached_rows():
                self.actual_rows += 1
                yield row
            return
        table_rows = self.table.rows
        bound = self.visible_count
        for position in self.index.scan(self.key_range):
            if bound is not None and position >= bound:
                continue
            self.actual_rows += 1
            yield table_rows[position]

    def batches(self, size: int | None = None) -> Iterator[RowBatch]:
        size = _resolve_batch_size(size)
        if self.visible_rows is not None:
            rows = self._detached_rows()
            for lo in range(0, len(rows), size):
                chunk = rows[lo:lo + size]
                self.actual_rows += len(chunk)
                self.actual_batches += 1
                yield RowBatch([list(column) for column in zip(*chunk)],
                               len(chunk))
            return
        columns = self.table.columnar()
        bound = self.visible_count
        chunk: list[int] = []
        for position in self.index.scan(self.key_range):
            if bound is not None and position >= bound:
                continue
            chunk.append(position)
            if len(chunk) >= size:
                yield self._gather(columns, chunk)
                chunk = []
        if chunk:
            yield self._gather(columns, chunk)

    def _gather(self, columns: list[list], positions: list[int]) -> RowBatch:
        self.actual_rows += len(positions)
        self.actual_batches += 1
        return RowBatch([[column[p] for p in positions]
                         for column in columns], len(positions))

    def label(self) -> str:
        return (f"IndexRangeScan({self.table.name}.{self.index.column} "
                f"{self.key_range!r})")


class FilterOp(PhysicalNode):
    """Keeps rows where the bound predicate evaluates to TRUE.

    The batch path evaluates the predicate over a whole chunk and keeps
    the surviving positions (a selection vector); ``input_rows`` records
    how many rows the predicate saw, so :class:`ExecutionMetrics` can
    report selection-vector density.
    """

    __slots__ = ('child', 'predicate', '_bound', '_batch_bound', 'input_rows')

    def __init__(self, child: PhysicalNode, predicate: Expr,
                 bound: Callable[[tuple], Any]) -> None:
        super().__init__()
        self.child = child
        self.predicate = predicate
        self._bound = bound
        self._batch_bound: BatchBound = predicate.bind_batch(
            child.schema.resolver())
        self.input_rows = 0
        self.schema = child.schema
        self.ordering = child.ordering

    def inputs(self) -> Sequence[PhysicalNode]:
        return (self.child,)

    def scalar_rows(self) -> Iterator[tuple]:
        bound = self._bound
        for row in self.child.rows():
            if bound(row) is True:
                self.actual_rows += 1
                yield row

    def batches(self, size: int | None = None) -> Iterator[RowBatch]:
        batch_bound = self._batch_bound
        for batch in self.child.batches(size):
            self.input_rows += batch.length
            values = batch_bound(batch)
            if isinstance(values, RLEColumn):
                # Run-wise selection: rejected runs are skipped without
                # inspecting a single row, surviving runs pass through
                # as contiguous slices of the input batch.
                yield from self._run_batches(batch, values)
                continue
            if isinstance(values, DictColumn):
                # One truth test per distinct value, then a code lookup
                # per row instead of an identity check per row.
                truth = [value is True for value in values.values]
                selected = [i for i, code in enumerate(values.codes)
                            if truth[code]]
            else:
                selected = [i for i, value in enumerate(values)
                            if value is True]
            if not selected:
                continue
            out = batch if len(selected) == batch.length \
                else batch.take(selected)
            self.actual_rows += out.length
            self.actual_batches += 1
            yield out

    def _run_batches(self, batch: RowBatch,
                     values: RLEColumn) -> Iterator[RowBatch]:
        spans: list[list[int]] = []
        for start, length, value in values.runs():
            if value is not True:
                continue
            if spans and spans[-1][1] == start:
                spans[-1][1] = start + length
            else:
                spans.append([start, start + length])
        if len(spans) == 1 and spans[0][0] == 0 \
                and spans[0][1] == batch.length:
            self.actual_rows += batch.length
            self.actual_batches += 1
            yield batch
            return
        for lo, hi in spans:
            out = batch.slice(lo, hi)
            self.actual_rows += out.length
            self.actual_batches += 1
            yield out

    def label(self) -> str:
        return f"Filter({self.predicate.to_sql()})"


class ProjectOp(PhysicalNode):
    """Computes the output row from bound expressions.

    ``passthrough`` maps output positions to input positions for items
    that are plain column references; it is used to translate the input's
    ordering property through the projection, and lets the batch path
    reuse the child's column lists without copying. ``item_exprs`` (the
    unbound select-list expressions) enables batch compilation of the
    computed items; without it the batch path evaluates the row-bound
    closures elementwise.
    """

    __slots__ = ('child', '_bound_items', '_batch_items', 'item_exprs',
                 'passthrough')

    def __init__(self, child: PhysicalNode, schema: PlanSchema,
                 bound_items: Sequence[Callable[[tuple], Any]],
                 passthrough: dict[int, int],
                 item_exprs: Sequence[Expr] | None = None) -> None:
        super().__init__()
        self.child = child
        self.schema = schema
        self._bound_items = list(bound_items)
        # Kept unbound for the codegen emitter (and for EXPLAIN CODEGEN).
        self.item_exprs = list(item_exprs) if item_exprs is not None else None
        self.passthrough = dict(passthrough)
        self._batch_items: list[tuple[str, Any]] | None = None
        if item_exprs is not None:
            resolver = child.schema.resolver()
            items: list[tuple[str, Any]] = []
            for out_position, expr in enumerate(item_exprs):
                if out_position in passthrough:
                    items.append(("col", passthrough[out_position]))
                else:
                    items.append(("expr", expr.bind_batch(resolver)))
            self._batch_items = items
        ordering: list[tuple[int, bool]] = []
        inverse = {inp: out for out, inp in passthrough.items()}
        for position, ascending in child.ordering:
            if position not in inverse:
                break
            ordering.append((inverse[position], ascending))
        self.ordering = tuple(ordering)

    def inputs(self) -> Sequence[PhysicalNode]:
        return (self.child,)

    def scalar_rows(self) -> Iterator[tuple]:
        bound_items = self._bound_items
        for row in self.child.rows():
            self.actual_rows += 1
            yield tuple(item(row) for item in bound_items)

    def batches(self, size: int | None = None) -> Iterator[RowBatch]:
        batch_items = self._batch_items
        for batch in self.child.batches(size):
            if batch_items is None:
                in_rows = batch.rows()
                columns = [[item(row) for row in in_rows]
                           for item in self._bound_items]
            else:
                columns = [batch.columns[payload] if kind == "col"
                           else payload(batch)
                           for kind, payload in batch_items]
            self.actual_rows += batch.length
            self.actual_batches += 1
            yield RowBatch(columns, batch.length)

    def label(self) -> str:
        return f"Project({', '.join(f.display() for f in self.schema)})"


class HashJoinOp(PhysicalNode):
    """Equi-join: builds a hash table on the right input.

    ``residual`` (if any) is applied to joined rows for non-equi
    conjuncts. Left join emits left rows with NULL padding when no match
    survives the residual. The batch path extracts join-key columns per
    chunk (a direct column reference for the common plain-column keys)
    and probes row-wise over the materialized chunk rows.
    """

    __slots__ = ('left', 'right', '_left_keys', '_right_keys', 'kind',
                 '_residual', 'residual_expr', '_batch_left_keys',
                 '_batch_right_keys', 'left_key_exprs', 'right_key_exprs')

    def __init__(self, left: PhysicalNode, right: PhysicalNode,
                 schema: PlanSchema,
                 left_keys: Sequence[Callable[[tuple], Any]],
                 right_keys: Sequence[Callable[[tuple], Any]],
                 kind: str,
                 residual: Callable[[tuple], Any] | None,
                 residual_expr: Expr | None,
                 left_key_exprs: Sequence[Expr] | None = None,
                 right_key_exprs: Sequence[Expr] | None = None) -> None:
        super().__init__()
        self.left = left
        self.right = right
        self.schema = schema
        self._left_keys = list(left_keys)
        self._right_keys = list(right_keys)
        self.kind = kind
        self._residual = residual
        self.residual_expr = residual_expr
        self._batch_left_keys: list[BatchBound] | None = None
        self._batch_right_keys: list[BatchBound] | None = None
        # Kept unbound for the codegen emitter.
        self.left_key_exprs = (list(left_key_exprs)
                               if left_key_exprs is not None else None)
        self.right_key_exprs = (list(right_key_exprs)
                                if right_key_exprs is not None else None)
        if left_key_exprs is not None:
            resolver = left.schema.resolver()
            self._batch_left_keys = [expr.bind_batch(resolver)
                                     for expr in left_key_exprs]
        if right_key_exprs is not None:
            resolver = right.schema.resolver()
            self._batch_right_keys = [expr.bind_batch(resolver)
                                      for expr in right_key_exprs]
        self.ordering = left.ordering  # probe side preserves its order

    def inputs(self) -> Sequence[PhysicalNode]:
        return (self.left, self.right)

    def scalar_rows(self) -> Iterator[tuple]:
        table: dict[tuple, list[tuple]] = {}
        right_keys = self._right_keys
        for row in self.right.rows():
            key = tuple(key(row) for key in right_keys)
            if any(part is None for part in key):
                continue
            table.setdefault(key, []).append(row)
        left_keys = self._left_keys
        residual = self._residual
        null_pad = (None,) * len(self.right.schema)
        for left_row in self.left.rows():
            key = tuple(key(left_row) for key in left_keys)
            matched = False
            if not any(part is None for part in key):
                for right_row in table.get(key, ()):
                    joined = left_row + right_row
                    if residual is not None and residual(joined) is not True:
                        continue
                    matched = True
                    self.actual_rows += 1
                    yield joined
            if not matched and self.kind == "left":
                self.actual_rows += 1
                yield left_row + null_pad

    @staticmethod
    def _key_columns(batch: RowBatch,
                     batch_keys: list[BatchBound] | None,
                     row_keys: list[Callable[[tuple], Any]]) -> list[list]:
        if batch_keys is not None:
            return [key(batch) for key in batch_keys]
        in_rows = batch.rows()
        return [[key(row) for row in in_rows] for key in row_keys]

    def batches(self, size: int | None = None) -> Iterator[RowBatch]:
        size = _resolve_batch_size(size)
        table: dict[tuple, list[tuple]] = {}
        for right_batch in self.right.batches(size):
            right_rows = right_batch.rows()
            key_columns = self._key_columns(right_batch,
                                            self._batch_right_keys,
                                            self._right_keys)
            for i in range(right_batch.length):
                key = tuple(column[i] for column in key_columns)
                if any(part is None for part in key):
                    continue
                table.setdefault(key, []).append(right_rows[i])
        residual = self._residual
        null_pad = (None,) * len(self.right.schema)
        pad_left = self.kind == "left"
        width = len(self.schema)
        single = len(self._left_keys) == 1
        for left_batch in self.left.batches(size):
            left_rows = left_batch.rows()
            key_columns = self._key_columns(left_batch,
                                            self._batch_left_keys,
                                            self._left_keys)
            out: list[tuple] = []
            if single:
                key_column = key_columns[0]
                if isinstance(key_column, DictColumn):
                    # Probe the hash table once per distinct key value,
                    # then walk codes: per row it's one list index, not
                    # a hash probe. NULL (code 0) maps to no matches.
                    buckets = [() if value is None
                               else table.get((value,), ())
                               for value in key_column.values]
                    per_row = key_column.codes
                else:
                    buckets = None
                    per_row = key_column
                for i, part in enumerate(per_row):
                    matched = False
                    candidates = buckets[part] if buckets is not None \
                        else (table.get((part,), ())
                              if part is not None else ())
                    if candidates:
                        for right_row in candidates:
                            joined = left_rows[i] + right_row
                            if residual is not None \
                                    and residual(joined) is not True:
                                continue
                            matched = True
                            out.append(joined)
                    if not matched and pad_left:
                        out.append(left_rows[i] + null_pad)
            else:
                for i in range(left_batch.length):
                    key = tuple(column[i] for column in key_columns)
                    matched = False
                    if not any(part is None for part in key):
                        for right_row in table.get(key, ()):
                            joined = left_rows[i] + right_row
                            if residual is not None \
                                    and residual(joined) is not True:
                                continue
                            matched = True
                            out.append(joined)
                    if not matched and pad_left:
                        out.append(left_rows[i] + null_pad)
            if out:
                self.actual_rows += len(out)
                self.actual_batches += 1
                yield RowBatch.from_rows(out, width)

    def label(self) -> str:
        return f"HashJoin[{self.kind}]"


class NestedLoopJoinOp(PhysicalNode):
    """Fallback join for non-equi or cross joins (right side buffered)."""

    __slots__ = ('left', 'right', '_condition', 'condition_expr', 'kind')

    def __init__(self, left: PhysicalNode, right: PhysicalNode,
                 schema: PlanSchema,
                 condition: Callable[[tuple], Any] | None,
                 condition_expr: Expr | None,
                 kind: str) -> None:
        super().__init__()
        self.left = left
        self.right = right
        self.schema = schema
        self._condition = condition
        self.condition_expr = condition_expr
        self.kind = kind
        self.ordering = left.ordering

    def inputs(self) -> Sequence[PhysicalNode]:
        return (self.left, self.right)

    def scalar_rows(self) -> Iterator[tuple]:
        right_rows = list(self.right.rows())
        condition = self._condition
        null_pad = (None,) * len(self.right.schema)
        for left_row in self.left.rows():
            matched = False
            for right_row in right_rows:
                joined = left_row + right_row
                if condition is not None and condition(joined) is not True:
                    continue
                matched = True
                self.actual_rows += 1
                yield joined
            if not matched and self.kind == "left":
                self.actual_rows += 1
                yield left_row + null_pad

    def label(self) -> str:
        condition = (self.condition_expr.to_sql()
                     if self.condition_expr is not None else "TRUE")
        return f"NestedLoopJoin[{self.kind}]({condition})"


class SemiJoinOp(PhysicalNode):
    """Filters left rows by membership of a key in the right input.

    NOT IN follows SQL semantics: if the right side contains any NULL,
    no row qualifies; left keys that are NULL never qualify.
    """

    __slots__ = ('left', 'right', 'left_expr', '_bound_left', '_batch_left',
                 'negated')

    def __init__(self, left: PhysicalNode, right: PhysicalNode,
                 left_expr: Expr,
                 bound_left: Callable[[tuple], Any],
                 negated: bool) -> None:
        super().__init__()
        self.left = left
        self.right = right
        self.left_expr = left_expr
        self._bound_left = bound_left
        self._batch_left: BatchBound = left_expr.bind_batch(
            left.schema.resolver())
        self.negated = negated
        self.schema = left.schema
        self.ordering = left.ordering

    def inputs(self) -> Sequence[PhysicalNode]:
        return (self.left, self.right)

    def scalar_rows(self) -> Iterator[tuple]:
        members: set = set()
        saw_null = False
        for row in self.right.rows():
            value = row[0]
            if value is None:
                saw_null = True
            else:
                members.add(value)
        if self.negated and saw_null:
            return
        bound_left = self._bound_left
        negated = self.negated
        for row in self.left.rows():
            value = bound_left(row)
            if value is None:
                continue
            if (value in members) != negated:
                self.actual_rows += 1
                yield row

    def batches(self, size: int | None = None) -> Iterator[RowBatch]:
        members: set = set()
        saw_null = False
        for right_batch in self.right.batches(size):
            column = right_batch.columns[0] if right_batch.columns else ()
            for value in column:
                if value is None:
                    saw_null = True
                else:
                    members.add(value)
        if self.negated and saw_null:
            return
        batch_left = self._batch_left
        negated = self.negated
        for batch in self.left.batches(size):
            values = batch_left(batch)
            selected = [i for i, value in enumerate(values)
                        if value is not None
                        and (value in members) != negated]
            if not selected:
                continue
            out = batch if len(selected) == batch.length \
                else batch.take(selected)
            self.actual_rows += out.length
            self.actual_batches += 1
            yield out

    def label(self) -> str:
        keyword = "NOT IN" if self.negated else "IN"
        return f"SemiJoin({self.left_expr.to_sql()} {keyword} ...)"


class SortOp(PhysicalNode):
    """Full sort; NULLs order first on every ascending key (and last on
    descending keys, since a descending pass is the reverse of the
    ascending order).

    Sort keys are computed exactly once per input row per key into
    decorated arrays, then the row order is obtained by stable
    multi-pass index sorts over those arrays — the key expressions are
    never re-evaluated during comparisons. With ``key_exprs`` the batch
    path extracts key columns through the vectorized expression
    compiler.
    """

    __slots__ = ('child', '_keys', '_batch_keys', 'sorted_rows')

    def __init__(self, child: PhysicalNode,
                 keys: Sequence[tuple[Callable[[tuple], Any], bool]],
                 ordering: Ordering,
                 key_exprs: Sequence[Expr] | None = None) -> None:
        super().__init__()
        self.child = child
        self._keys = list(keys)
        self._batch_keys: list[BatchBound] | None = None
        if key_exprs is not None:
            resolver = child.schema.resolver()
            self._batch_keys = [expr.bind_batch(resolver)
                                for expr in key_exprs]
        self.schema = child.schema
        self.ordering = ordering
        self.sorted_rows = 0

    def inputs(self) -> Sequence[PhysicalNode]:
        return (self.child,)

    def _sorted_order(self, count: int,
                      decorated: list[list]) -> list[int]:
        """Row order from precomputed per-key sort-key arrays.

        Stable multi-key sort: apply keys from last to first, exactly as
        the historical per-pass row sorts did.
        """
        order = list(range(count))
        for keyed, (_, ascending) in zip(reversed(decorated),
                                         reversed(self._keys)):
            order.sort(key=keyed.__getitem__, reverse=not ascending)
        return order

    def _sorted_rows(self, buffered: list[tuple],
                     collected: list[RowBatch] | None = None) -> list[tuple]:
        if not buffered:
            return buffered
        if self._batch_keys is not None:
            if collected:
                # Column-wise concat keeps dictionary codes intact, so
                # sorted-dictionary keys sort by raw integer codes.
                big = concat_columns(collected, len(self.schema))
            else:
                big = RowBatch.from_rows(buffered, len(self.schema))
            decorated = [sort_key_column(batch_key(big))
                         for batch_key in self._batch_keys]
        else:
            decorated = [sort_key_column([key(row) for row in buffered])
                         for key, _ in self._keys]
        order = self._sorted_order(len(buffered), decorated)
        return [buffered[i] for i in order]

    def scalar_rows(self) -> Iterator[tuple]:
        buffered = list(self.child.rows())
        self.sorted_rows = len(buffered)
        if buffered:
            decorated = [sort_key_column([key(row) for row in buffered])
                         for key, _ in self._keys]
            order = self._sorted_order(len(buffered), decorated)
            buffered = [buffered[i] for i in order]
        for row in buffered:
            self.actual_rows += 1
            yield row

    def batches(self, size: int | None = None) -> Iterator[RowBatch]:
        size = _resolve_batch_size(size)
        buffered: list[tuple] = []
        collected: list[RowBatch] = []
        for batch in self.child.batches(size):
            collected.append(batch)
            buffered.extend(batch.rows())
        self.sorted_rows = len(buffered)
        buffered = self._sorted_rows(buffered, collected)
        width = len(self.schema)
        for lo in range(0, len(buffered), size):
            chunk = buffered[lo:lo + size]
            self.actual_rows += len(chunk)
            self.actual_batches += 1
            yield RowBatch.from_rows(chunk, width)

    def label(self) -> str:
        body = ", ".join(f"#{position}{'' if asc else ' DESC'}"
                         for position, asc in self.ordering)
        return f"Sort({body})"


class _AggState:
    """Accumulator for one aggregate call within one group."""

    __slots__ = ("name", "distinct", "count", "total", "extreme", "seen")

    def __init__(self, name: str, distinct: bool) -> None:
        self.name = name
        self.distinct = distinct
        self.count = 0
        self.total: Any = None
        self.extreme: Any = None
        self.seen: set | None = set() if distinct else None

    def add(self, value: Any) -> None:
        if value is None:
            return
        if self.seen is not None:
            if value in self.seen:
                return
            self.seen.add(value)
        self.count += 1
        if self.name in ("sum", "avg"):
            self.total = value if self.total is None else self.total + value
        elif self.name == "min":
            if self.extreme is None or value < self.extreme:
                self.extreme = value
        elif self.name == "max":
            if self.extreme is None or value > self.extreme:
                self.extreme = value

    def result(self) -> Any:
        if self.name == "count":
            return self.count
        if self.name == "sum":
            return self.total
        if self.name == "avg":
            if self.count == 0:
                return None
            return self.total / self.count
        return self.extreme


class AggregateOp(PhysicalNode):
    """Hash aggregation: group keys followed by aggregate results.

    Aggregate specs are ``(name, bound_argument_or_None, distinct)``;
    ``count(*)`` passes a None argument and counts every row. The batch
    path extracts group-key and argument columns per chunk before the
    row-wise accumulation loop.
    """

    __slots__ = ('child', '_group_keys', '_aggregate_specs',
                 '_batch_group_keys', '_batch_arguments')

    def __init__(self, child: PhysicalNode, schema: PlanSchema,
                 group_keys: Sequence[Callable[[tuple], Any]],
                 aggregate_specs: Sequence[
                     tuple[str, Callable[[tuple], Any] | None, bool]],
                 group_exprs: Sequence[Expr] | None = None,
                 argument_exprs: Sequence[Expr | None] | None = None,
                 ) -> None:
        super().__init__()
        self.child = child
        self.schema = schema
        self._group_keys = list(group_keys)
        self._aggregate_specs = list(aggregate_specs)
        self._batch_group_keys: list[BatchBound] | None = None
        self._batch_arguments: list[BatchBound | None] | None = None
        if group_exprs is not None:
            resolver = child.schema.resolver()
            self._batch_group_keys = [expr.bind_batch(resolver)
                                      for expr in group_exprs]
        if argument_exprs is not None:
            resolver = child.schema.resolver()
            self._batch_arguments = [
                expr.bind_batch(resolver) if expr is not None else None
                for expr in argument_exprs]

    def inputs(self) -> Sequence[PhysicalNode]:
        return (self.child,)

    def scalar_rows(self) -> Iterator[tuple]:
        groups: dict[tuple, list[_AggState]] = {}
        group_keys = self._group_keys
        specs = self._aggregate_specs
        for row in self.child.rows():
            key = tuple(key(row) for key in group_keys)
            states = groups.get(key)
            if states is None:
                states = [_AggState(name, distinct)
                          for name, _, distinct in specs]
                groups[key] = states
            for state, (name, argument, _) in zip(states, specs):
                if argument is None:  # count(*)
                    state.count += 1
                else:
                    state.add(argument(row))
        if not groups and not group_keys:
            # Global aggregate over an empty input yields one row.
            states = [_AggState(name, distinct) for name, _, distinct in specs]
            groups[()] = states
        for key, states in groups.items():
            self.actual_rows += 1
            yield key + tuple(state.result() for state in states)

    def batches(self, size: int | None = None) -> Iterator[RowBatch]:
        size = _resolve_batch_size(size)
        groups: dict[tuple, list[_AggState]] = {}
        specs = self._aggregate_specs
        spec_count = len(specs)
        for batch in self.child.batches(size):
            if self._batch_group_keys is not None:
                key_columns = [key(batch)
                               for key in self._batch_group_keys]
            else:
                in_rows = batch.rows()
                key_columns = [[key(row) for row in in_rows]
                               for key in self._group_keys]
            argument_columns: list[list | None] = []
            for index, (name, argument, _) in enumerate(specs):
                if argument is None:
                    argument_columns.append(None)
                elif self._batch_arguments is not None \
                        and self._batch_arguments[index] is not None:
                    argument_columns.append(
                        self._batch_arguments[index](batch))
                else:
                    in_rows = batch.rows()
                    argument_columns.append(
                        [argument(row) for row in in_rows])
            for i in range(batch.length):
                key = tuple(column[i] for column in key_columns)
                states = groups.get(key)
                if states is None:
                    states = [_AggState(name, distinct)
                              for name, _, distinct in specs]
                    groups[key] = states
                for s in range(spec_count):
                    column = argument_columns[s]
                    if column is None:  # count(*)
                        states[s].count += 1
                    else:
                        states[s].add(column[i])
        if not groups and not self._group_keys:
            states = [_AggState(name, distinct)
                      for name, _, distinct in specs]
            groups[()] = states
        out: list[tuple] = []
        width = len(self.schema)
        for key, states in groups.items():
            out.append(key + tuple(state.result() for state in states))
            if len(out) >= size:
                self.actual_rows += len(out)
                self.actual_batches += 1
                yield RowBatch.from_rows(out, width)
                out = []
        if out:
            self.actual_rows += len(out)
            self.actual_batches += 1
            yield RowBatch.from_rows(out, width)

    def label(self) -> str:
        return (f"Aggregate(groups={len(self._group_keys)}, "
                f"aggs={len(self._aggregate_specs)})")


class DistinctOp(PhysicalNode):
    """Whole-row duplicate elimination preserving first occurrence."""

    __slots__ = ('child',)

    def __init__(self, child: PhysicalNode) -> None:
        super().__init__()
        self.child = child
        self.schema = child.schema
        self.ordering = child.ordering

    def inputs(self) -> Sequence[PhysicalNode]:
        return (self.child,)

    def scalar_rows(self) -> Iterator[tuple]:
        seen: set[tuple] = set()
        for row in self.child.rows():
            if row in seen:
                continue
            seen.add(row)
            self.actual_rows += 1
            yield row

    def batches(self, size: int | None = None) -> Iterator[RowBatch]:
        seen: set[tuple] = set()
        for batch in self.child.batches(size):
            keep: list[int] = []
            for i, row in enumerate(batch.rows()):
                if row in seen:
                    continue
                seen.add(row)
                keep.append(i)
            if not keep:
                continue
            out = batch if len(keep) == batch.length else batch.take(keep)
            self.actual_rows += out.length
            self.actual_batches += 1
            yield out

    def label(self) -> str:
        return "Distinct"


class UnionAllOp(PhysicalNode):
    """Concatenation of two inputs."""

    __slots__ = ('left', 'right')

    def __init__(self, left: PhysicalNode, right: PhysicalNode) -> None:
        super().__init__()
        if len(left.schema) != len(right.schema):
            raise ExecutionError("UNION arity mismatch")
        self.left = left
        self.right = right
        self.schema = left.schema

    def inputs(self) -> Sequence[PhysicalNode]:
        return (self.left, self.right)

    def scalar_rows(self) -> Iterator[tuple]:
        for row in self.left.rows():
            self.actual_rows += 1
            yield row
        for row in self.right.rows():
            self.actual_rows += 1
            yield row

    def batches(self, size: int | None = None) -> Iterator[RowBatch]:
        for side in (self.left, self.right):
            for batch in side.batches(size):
                self.actual_rows += batch.length
                self.actual_batches += 1
                yield batch

    def label(self) -> str:
        return "UnionAll"


class PassThroughOp(PhysicalNode):
    """Re-labels a child's output schema without touching rows.

    Used for derived-table / CTE aliasing (LogicalRequalify): positions
    and values are unchanged, only qualifiers differ.
    """

    __slots__ = ('child', 'name')

    def __init__(self, child: PhysicalNode, schema: PlanSchema,
                 name: str) -> None:
        super().__init__()
        self.child = child
        self.schema = schema
        self.name = name
        self.ordering = child.ordering

    def inputs(self) -> Sequence[PhysicalNode]:
        return (self.child,)

    def scalar_rows(self) -> Iterator[tuple]:
        return self.child.rows()

    def batches(self, size: int | None = None) -> Iterator[RowBatch]:
        return self.child.batches(size)

    def label(self) -> str:
        return f"As({self.name})"


class LimitOp(PhysicalNode):
    """Stops after *count* rows."""

    __slots__ = ('child', 'count')

    def __init__(self, child: PhysicalNode, count: int) -> None:
        super().__init__()
        self.child = child
        self.count = count
        self.schema = child.schema
        self.ordering = child.ordering

    def scalar_rows(self) -> Iterator[tuple]:
        if self.count <= 0:
            return
        emitted = 0
        for row in self.child.rows():
            self.actual_rows += 1
            yield row
            emitted += 1
            if emitted >= self.count:
                return

    def batches(self, size: int | None = None) -> Iterator[RowBatch]:
        if self.count <= 0:
            return
        remaining = self.count
        for batch in self.child.batches(size):
            if batch.length == 0:
                continue
            out = batch if batch.length <= remaining \
                else batch.head(remaining)
            remaining -= out.length
            self.actual_rows += out.length
            self.actual_batches += 1
            yield out
            if remaining == 0:
                return

    def inputs(self) -> Sequence[PhysicalNode]:
        return (self.child,)

    def label(self) -> str:
        return f"Limit({self.count})"
