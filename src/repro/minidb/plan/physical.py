"""Physical (executable) plan operators.

Operators are pull-based: ``rows()`` yields output tuples. Each operator
carries:

* ``schema`` — its output :class:`PlanSchema`;
* ``estimated_rows`` / ``estimated_cost`` — filled in by the planner's
  cost model and surfaced through EXPLAIN (the rewrite engine compares
  root costs of candidate rewrites, as the paper does with DB2's
  estimates);
* ``ordering`` — the output order the operator *guarantees*, as a tuple
  of ``(column position, ascending)`` pairs. The planner uses it to skip
  redundant sorts (the paper's "order sharing" between cleansing windows
  and query windows);
* ``actual_rows`` — incremented during execution, for EXPLAIN-ANALYZE
  style inspection and for the benchmark harness's work metrics.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Sequence

from repro.errors import ExecutionError
from repro.minidb.expressions import Expr
from repro.minidb.index import IndexRange, SortedIndex
from repro.minidb.plan.planschema import PlanSchema
from repro.minidb.table import Table
from repro.minidb.types import sort_key

__all__ = [
    "PhysicalNode",
    "SeqScan",
    "IndexRangeScan",
    "FilterOp",
    "ProjectOp",
    "HashJoinOp",
    "NestedLoopJoinOp",
    "SemiJoinOp",
    "SortOp",
    "AggregateOp",
    "DistinctOp",
    "UnionAllOp",
    "LimitOp",
    "Ordering",
]

#: A guaranteed output order: ((column position, ascending), ...).
Ordering = tuple[tuple[int, bool], ...]


class PhysicalNode:
    """Base class for executable operators.

    The hierarchy is slotted: plans for large queries allocate thousands
    of nodes, and per-row inner loops read operator attributes, so the
    fixed layout saves both memory and a dict lookup per access.
    """

    __slots__ = ("schema", "ordering", "estimated_rows", "estimated_cost",
                 "actual_rows")

    schema: PlanSchema
    ordering: Ordering
    estimated_rows: float
    estimated_cost: float

    def __init__(self) -> None:
        self.ordering = ()
        self.estimated_rows = 0.0
        self.estimated_cost = 0.0
        self.actual_rows = 0

    def inputs(self) -> Sequence["PhysicalNode"]:
        return ()

    def rows(self) -> Iterator[tuple]:
        raise NotImplementedError

    def label(self) -> str:
        return type(self).__name__

    def explain(self, depth: int = 0, analyze: bool = False) -> str:
        """Render this subtree as indented EXPLAIN text.

        With ``analyze=True`` (after executing the plan) each line also
        reports the rows the operator actually produced, EXPLAIN ANALYZE
        style.
        """
        line = (f"{'  ' * depth}{self.label()}  "
                f"[rows={self.estimated_rows:.0f} "
                f"cost={self.estimated_cost:.0f}]")
        if analyze:
            line += f" (actual rows={self.actual_rows})"
        parts = [line]
        parts.extend(child.explain(depth + 1, analyze)
                     for child in self.inputs())
        return "\n".join(parts)

    def walk(self) -> Iterator["PhysicalNode"]:
        yield self
        for child in self.inputs():
            yield from child.walk()

    def reset_metrics(self) -> None:
        """Zero the per-execution counters across the whole subtree.

        Prepared plans are re-executed; without a reset, ``actual_rows``
        and ``sorted_rows`` would accumulate across runs and corrupt
        :class:`ExecutionMetrics`.
        """
        for node in self.walk():
            node.actual_rows = 0
            if hasattr(node, "sorted_rows"):
                node.sorted_rows = 0


class SeqScan(PhysicalNode):
    """Full scan of a stored table in insertion order."""

    __slots__ = ('table',)

    def __init__(self, table: Table, schema: PlanSchema) -> None:
        super().__init__()
        self.table = table
        self.schema = schema

    def rows(self) -> Iterator[tuple]:
        for row in self.table.rows:
            self.actual_rows += 1
            yield row

    def label(self) -> str:
        return f"SeqScan({self.table.name})"


class IndexRangeScan(PhysicalNode):
    """Range scan through a sorted index; output is ordered by the key."""

    __slots__ = ('table', 'index', 'key_range')

    def __init__(self, table: Table, schema: PlanSchema,
                 index: SortedIndex, key_range: IndexRange) -> None:
        super().__init__()
        self.table = table
        self.schema = schema
        self.index = index
        self.key_range = key_range
        key_position = table.schema.position_of(index.column)
        self.ordering = ((key_position, True),)

    def rows(self) -> Iterator[tuple]:
        table_rows = self.table.rows
        for position in self.index.scan(self.key_range):
            self.actual_rows += 1
            yield table_rows[position]

    def label(self) -> str:
        return (f"IndexRangeScan({self.table.name}.{self.index.column} "
                f"{self.key_range!r})")


class FilterOp(PhysicalNode):
    """Keeps rows where the bound predicate evaluates to TRUE."""

    __slots__ = ('child', 'predicate', '_bound')

    def __init__(self, child: PhysicalNode, predicate: Expr,
                 bound: Callable[[tuple], Any]) -> None:
        super().__init__()
        self.child = child
        self.predicate = predicate
        self._bound = bound
        self.schema = child.schema
        self.ordering = child.ordering

    def inputs(self) -> Sequence[PhysicalNode]:
        return (self.child,)

    def rows(self) -> Iterator[tuple]:
        bound = self._bound
        for row in self.child.rows():
            if bound(row) is True:
                self.actual_rows += 1
                yield row

    def label(self) -> str:
        return f"Filter({self.predicate.to_sql()})"


class ProjectOp(PhysicalNode):
    """Computes the output row from bound expressions.

    ``passthrough`` maps output positions to input positions for items
    that are plain column references; it is used to translate the input's
    ordering property through the projection.
    """

    __slots__ = ('child', '_bound_items')

    def __init__(self, child: PhysicalNode, schema: PlanSchema,
                 bound_items: Sequence[Callable[[tuple], Any]],
                 passthrough: dict[int, int]) -> None:
        super().__init__()
        self.child = child
        self.schema = schema
        self._bound_items = list(bound_items)
        ordering: list[tuple[int, bool]] = []
        inverse = {inp: out for out, inp in passthrough.items()}
        for position, ascending in child.ordering:
            if position not in inverse:
                break
            ordering.append((inverse[position], ascending))
        self.ordering = tuple(ordering)

    def inputs(self) -> Sequence[PhysicalNode]:
        return (self.child,)

    def rows(self) -> Iterator[tuple]:
        bound_items = self._bound_items
        for row in self.child.rows():
            self.actual_rows += 1
            yield tuple(item(row) for item in bound_items)

    def label(self) -> str:
        return f"Project({', '.join(f.display() for f in self.schema)})"


class HashJoinOp(PhysicalNode):
    """Equi-join: builds a hash table on the right input.

    ``residual`` (if any) is applied to joined rows for non-equi
    conjuncts. Left join emits left rows with NULL padding when no match
    survives the residual.
    """

    __slots__ = ('left', 'right', '_left_keys', '_right_keys', 'kind', '_residual', 'residual_expr')

    def __init__(self, left: PhysicalNode, right: PhysicalNode,
                 schema: PlanSchema,
                 left_keys: Sequence[Callable[[tuple], Any]],
                 right_keys: Sequence[Callable[[tuple], Any]],
                 kind: str,
                 residual: Callable[[tuple], Any] | None,
                 residual_expr: Expr | None) -> None:
        super().__init__()
        self.left = left
        self.right = right
        self.schema = schema
        self._left_keys = list(left_keys)
        self._right_keys = list(right_keys)
        self.kind = kind
        self._residual = residual
        self.residual_expr = residual_expr
        self.ordering = left.ordering  # probe side preserves its order

    def inputs(self) -> Sequence[PhysicalNode]:
        return (self.left, self.right)

    def rows(self) -> Iterator[tuple]:
        table: dict[tuple, list[tuple]] = {}
        right_keys = self._right_keys
        for row in self.right.rows():
            key = tuple(key(row) for key in right_keys)
            if any(part is None for part in key):
                continue
            table.setdefault(key, []).append(row)
        left_keys = self._left_keys
        residual = self._residual
        null_pad = (None,) * len(self.right.schema)
        for left_row in self.left.rows():
            key = tuple(key(left_row) for key in left_keys)
            matched = False
            if not any(part is None for part in key):
                for right_row in table.get(key, ()):
                    joined = left_row + right_row
                    if residual is not None and residual(joined) is not True:
                        continue
                    matched = True
                    self.actual_rows += 1
                    yield joined
            if not matched and self.kind == "left":
                self.actual_rows += 1
                yield left_row + null_pad

    def label(self) -> str:
        return f"HashJoin[{self.kind}]"


class NestedLoopJoinOp(PhysicalNode):
    """Fallback join for non-equi or cross joins (right side buffered)."""

    __slots__ = ('left', 'right', '_condition', 'condition_expr', 'kind')

    def __init__(self, left: PhysicalNode, right: PhysicalNode,
                 schema: PlanSchema,
                 condition: Callable[[tuple], Any] | None,
                 condition_expr: Expr | None,
                 kind: str) -> None:
        super().__init__()
        self.left = left
        self.right = right
        self.schema = schema
        self._condition = condition
        self.condition_expr = condition_expr
        self.kind = kind
        self.ordering = left.ordering

    def inputs(self) -> Sequence[PhysicalNode]:
        return (self.left, self.right)

    def rows(self) -> Iterator[tuple]:
        right_rows = list(self.right.rows())
        condition = self._condition
        null_pad = (None,) * len(self.right.schema)
        for left_row in self.left.rows():
            matched = False
            for right_row in right_rows:
                joined = left_row + right_row
                if condition is not None and condition(joined) is not True:
                    continue
                matched = True
                self.actual_rows += 1
                yield joined
            if not matched and self.kind == "left":
                self.actual_rows += 1
                yield left_row + null_pad

    def label(self) -> str:
        condition = (self.condition_expr.to_sql()
                     if self.condition_expr is not None else "TRUE")
        return f"NestedLoopJoin[{self.kind}]({condition})"


class SemiJoinOp(PhysicalNode):
    """Filters left rows by membership of a key in the right input.

    NOT IN follows SQL semantics: if the right side contains any NULL,
    no row qualifies; left keys that are NULL never qualify.
    """

    __slots__ = ('left', 'right', 'left_expr', '_bound_left', 'negated')

    def __init__(self, left: PhysicalNode, right: PhysicalNode,
                 left_expr: Expr,
                 bound_left: Callable[[tuple], Any],
                 negated: bool) -> None:
        super().__init__()
        self.left = left
        self.right = right
        self.left_expr = left_expr
        self._bound_left = bound_left
        self.negated = negated
        self.schema = left.schema
        self.ordering = left.ordering

    def inputs(self) -> Sequence[PhysicalNode]:
        return (self.left, self.right)

    def rows(self) -> Iterator[tuple]:
        members: set = set()
        saw_null = False
        for row in self.right.rows():
            value = row[0]
            if value is None:
                saw_null = True
            else:
                members.add(value)
        if self.negated and saw_null:
            return
        bound_left = self._bound_left
        negated = self.negated
        for row in self.left.rows():
            value = bound_left(row)
            if value is None:
                continue
            if (value in members) != negated:
                self.actual_rows += 1
                yield row

    def label(self) -> str:
        keyword = "NOT IN" if self.negated else "IN"
        return f"SemiJoin({self.left_expr.to_sql()} {keyword} ...)"


class SortOp(PhysicalNode):
    """Full sort; NULLs order first on every key."""

    __slots__ = ('child', '_keys', 'sorted_rows')

    def __init__(self, child: PhysicalNode,
                 keys: Sequence[tuple[Callable[[tuple], Any], bool]],
                 ordering: Ordering) -> None:
        super().__init__()
        self.child = child
        self._keys = list(keys)
        self.schema = child.schema
        self.ordering = ordering
        self.sorted_rows = 0

    def inputs(self) -> Sequence[PhysicalNode]:
        return (self.child,)

    def rows(self) -> Iterator[tuple]:
        buffered = list(self.child.rows())
        self.sorted_rows = len(buffered)
        # Stable multi-key sort: apply keys from last to first.
        for key, ascending in reversed(self._keys):
            buffered.sort(key=lambda row: sort_key(key(row)),
                          reverse=not ascending)
        for row in buffered:
            self.actual_rows += 1
            yield row

    def label(self) -> str:
        body = ", ".join(f"#{position}{'' if asc else ' DESC'}"
                         for position, asc in self.ordering)
        return f"Sort({body})"


class _AggState:
    """Accumulator for one aggregate call within one group."""

    __slots__ = ("name", "distinct", "count", "total", "extreme", "seen")

    def __init__(self, name: str, distinct: bool) -> None:
        self.name = name
        self.distinct = distinct
        self.count = 0
        self.total: Any = None
        self.extreme: Any = None
        self.seen: set | None = set() if distinct else None

    def add(self, value: Any) -> None:
        if value is None:
            return
        if self.seen is not None:
            if value in self.seen:
                return
            self.seen.add(value)
        self.count += 1
        if self.name in ("sum", "avg"):
            self.total = value if self.total is None else self.total + value
        elif self.name == "min":
            if self.extreme is None or value < self.extreme:
                self.extreme = value
        elif self.name == "max":
            if self.extreme is None or value > self.extreme:
                self.extreme = value

    def result(self) -> Any:
        if self.name == "count":
            return self.count
        if self.name == "sum":
            return self.total
        if self.name == "avg":
            if self.count == 0:
                return None
            return self.total / self.count
        return self.extreme


class AggregateOp(PhysicalNode):
    """Hash aggregation: group keys followed by aggregate results.

    Aggregate specs are ``(name, bound_argument_or_None, distinct)``;
    ``count(*)`` passes a None argument and counts every row.
    """

    __slots__ = ('child', '_group_keys', '_aggregate_specs')

    def __init__(self, child: PhysicalNode, schema: PlanSchema,
                 group_keys: Sequence[Callable[[tuple], Any]],
                 aggregate_specs: Sequence[
                     tuple[str, Callable[[tuple], Any] | None, bool]],
                 ) -> None:
        super().__init__()
        self.child = child
        self.schema = schema
        self._group_keys = list(group_keys)
        self._aggregate_specs = list(aggregate_specs)

    def inputs(self) -> Sequence[PhysicalNode]:
        return (self.child,)

    def rows(self) -> Iterator[tuple]:
        groups: dict[tuple, list[_AggState]] = {}
        group_keys = self._group_keys
        specs = self._aggregate_specs
        for row in self.child.rows():
            key = tuple(key(row) for key in group_keys)
            states = groups.get(key)
            if states is None:
                states = [_AggState(name, distinct)
                          for name, _, distinct in specs]
                groups[key] = states
            for state, (name, argument, _) in zip(states, specs):
                if argument is None:  # count(*)
                    state.count += 1
                else:
                    state.add(argument(row))
        if not groups and not group_keys:
            # Global aggregate over an empty input yields one row.
            states = [_AggState(name, distinct) for name, _, distinct in specs]
            groups[()] = states
        for key, states in groups.items():
            self.actual_rows += 1
            yield key + tuple(state.result() for state in states)

    def label(self) -> str:
        return (f"Aggregate(groups={len(self._group_keys)}, "
                f"aggs={len(self._aggregate_specs)})")


class DistinctOp(PhysicalNode):
    """Whole-row duplicate elimination preserving first occurrence."""

    __slots__ = ('child',)

    def __init__(self, child: PhysicalNode) -> None:
        super().__init__()
        self.child = child
        self.schema = child.schema
        self.ordering = child.ordering

    def inputs(self) -> Sequence[PhysicalNode]:
        return (self.child,)

    def rows(self) -> Iterator[tuple]:
        seen: set[tuple] = set()
        for row in self.child.rows():
            if row in seen:
                continue
            seen.add(row)
            self.actual_rows += 1
            yield row

    def label(self) -> str:
        return "Distinct"


class UnionAllOp(PhysicalNode):
    """Concatenation of two inputs."""

    __slots__ = ('left', 'right')

    def __init__(self, left: PhysicalNode, right: PhysicalNode) -> None:
        super().__init__()
        if len(left.schema) != len(right.schema):
            raise ExecutionError("UNION arity mismatch")
        self.left = left
        self.right = right
        self.schema = left.schema

    def inputs(self) -> Sequence[PhysicalNode]:
        return (self.left, self.right)

    def rows(self) -> Iterator[tuple]:
        for row in self.left.rows():
            self.actual_rows += 1
            yield row
        for row in self.right.rows():
            self.actual_rows += 1
            yield row

    def label(self) -> str:
        return "UnionAll"


class PassThroughOp(PhysicalNode):
    """Re-labels a child's output schema without touching rows.

    Used for derived-table / CTE aliasing (LogicalRequalify): positions
    and values are unchanged, only qualifiers differ.
    """

    __slots__ = ('child', 'name')

    def __init__(self, child: PhysicalNode, schema: PlanSchema,
                 name: str) -> None:
        super().__init__()
        self.child = child
        self.schema = schema
        self.name = name
        self.ordering = child.ordering

    def inputs(self) -> Sequence[PhysicalNode]:
        return (self.child,)

    def rows(self) -> Iterator[tuple]:
        return self.child.rows()

    def label(self) -> str:
        return f"As({self.name})"


class LimitOp(PhysicalNode):
    """Stops after *count* rows."""

    __slots__ = ('child', 'count')

    def __init__(self, child: PhysicalNode, count: int) -> None:
        super().__init__()
        self.child = child
        self.count = count
        self.schema = child.schema
        self.ordering = child.ordering

    def inputs(self) -> Sequence[PhysicalNode]:
        return (self.child,)

    def rows(self) -> Iterator[tuple]:
        if self.count <= 0:
            return
        emitted = 0
        for row in self.child.rows():
            self.actual_rows += 1
            yield row
            emitted += 1
            if emitted >= self.count:
                return

    def label(self) -> str:
        return f"Limit({self.count})"
