"""Qualified output schemas for plan nodes.

Unlike a stored :class:`~repro.minidb.schema.TableSchema`, a plan node's
output schema carries a *qualifier* per field (the table binding the
field came from) so that expressions like ``c.rtime`` can be resolved
against join outputs where two inputs may both have an ``rtime`` field.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import PlanningError
from repro.minidb.schema import Column, TableSchema
from repro.minidb.types import SqlType

__all__ = ["Field", "PlanSchema"]


@dataclass(frozen=True)
class Field:
    """One output field: an optional qualifier, a name, and a type.

    ``origin`` traces the field back to a stored ``(table, column)`` when
    the field is a pass-through of a base-table column; the optimizer
    uses it to look up statistics and candidate indexes. Computed fields
    have ``origin=None``.
    """

    name: str
    sql_type: SqlType
    qualifier: str | None = None
    origin: tuple[str, str] | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "name", self.name.lower())
        if self.qualifier is not None:
            object.__setattr__(self, "qualifier", self.qualifier.lower())

    def display(self) -> str:
        if self.qualifier:
            return f"{self.qualifier}.{self.name}"
        return self.name

    def with_name(self, name: str) -> "Field":
        return Field(name, self.sql_type, self.qualifier, self.origin)


class PlanSchema:
    """An ordered list of :class:`Field` with qualified-name resolution."""

    __slots__ = ("fields",)

    def __init__(self, fields: Iterable[Field]) -> None:
        self.fields: tuple[Field, ...] = tuple(fields)

    @classmethod
    def from_table(cls, schema: TableSchema, binding: str,
                   table_name: str | None = None) -> "PlanSchema":
        """Qualify every column of a stored table with its binding name."""
        return cls(Field(column.name, column.sql_type, binding,
                         origin=(table_name or binding, column.name))
                   for column in schema)

    def __len__(self) -> int:
        return len(self.fields)

    def __iter__(self) -> Iterator[Field]:
        return iter(self.fields)

    def __repr__(self) -> str:
        return f"PlanSchema({', '.join(f.display() for f in self.fields)})"

    def resolve(self, qualifier: str | None, name: str) -> int:
        """Position of the field ``qualifier.name``.

        Unqualified lookups must match exactly one field name across the
        whole schema; ambiguity is a planning error, as in SQL.
        """
        name = name.lower()
        if qualifier is not None:
            qualifier = qualifier.lower()
            for position, field in enumerate(self.fields):
                if field.qualifier == qualifier and field.name == name:
                    return position
            raise PlanningError(
                f"no column {qualifier}.{name}; available: "
                f"{', '.join(f.display() for f in self.fields)}")
        matches = [position for position, field in enumerate(self.fields)
                   if field.name == name]
        if not matches:
            raise PlanningError(
                f"no column {name}; available: "
                f"{', '.join(f.display() for f in self.fields)}")
        if len(matches) > 1:
            raise PlanningError(f"ambiguous column reference {name!r}")
        return matches[0]

    def resolver(self):
        """An expression-binding resolver closure over this schema."""
        return self.resolve

    def has(self, qualifier: str | None, name: str) -> bool:
        try:
            self.resolve(qualifier, name)
        except PlanningError:
            return False
        return True

    def concat(self, other: "PlanSchema") -> "PlanSchema":
        return PlanSchema((*self.fields, *other.fields))

    def requalify(self, binding: str) -> "PlanSchema":
        """All fields re-qualified under one binding (derived tables)."""
        return PlanSchema(Field(field.name, field.sql_type, binding,
                                field.origin)
                          for field in self.fields)

    def append(self, field: Field) -> "PlanSchema":
        return PlanSchema((*self.fields, field))

    def to_table_schema(self) -> TableSchema:
        """Strip qualifiers; requires unique field names."""
        return TableSchema(Column(field.name, field.sql_type)
                           for field in self.fields)
