"""The SQL/OLAP window-function executor.

This operator implements the construct the paper's cleansing rules
compile into: scalar aggregates over ROWS/RANGE frames within
``PARTITION BY epc ORDER BY rtime`` sequences, evaluated in a single
pass over sorted data.

Execution outline:

1. buffer the input; sort by (partition keys, order keys) unless the
   planner proved the input already carries that order (``presorted`` —
   the paper's "order sharing" optimization);
2. split into partitions;
3. for each function, compute frame bounds per row with two monotone
   pointers and aggregate incrementally (running counters for
   count/sum/avg, a monotonic deque for min/max), so a partition costs
   O(n) per function rather than O(n * frame);
4. emit each input row extended with one value per function.

A ``naive`` mode re-scans the frame for every row; it exists only for
the ablation benchmark contrasting the two strategies.

Partitions are independent, so the whole operator parallelizes per
sequence. That no longer happens here: the planner's shard pass
(``plan.shard``) wraps eligible window pipelines in an Exchange, which
runs this operator per cluster-key morsel inside the database's
persistent worker pool — replacing the fork-per-query pool this module
used to spawn. ``parallel_workers`` is kept as the per-execution
metric: the Exchange sets it to the pool size it used, and serial
executions zero it.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Iterator, Sequence

from repro.errors import ExecutionError
from repro.minidb.expressions import UNBOUNDED, BatchBound, Expr, WindowFrame
from repro.minidb.plan.physical import (Ordering, PhysicalNode,
                                        _resolve_batch_size)
from repro.minidb.plan.planschema import PlanSchema
from repro.minidb.types import sort_key, sort_key_column
from repro.minidb.vector import RowBatch

__all__ = ["WindowOp", "WindowFuncSpec"]


class WindowFuncSpec:
    """One window function, bound and ready to execute."""

    __slots__ = ("name", "argument", "frame", "has_order", "count_star",
                 "offset")

    def __init__(self, name: str, argument: Callable[[tuple], Any] | None,
                 frame: WindowFrame | None, has_order: bool,
                 offset: int = 1) -> None:
        self.name = name
        self.argument = argument
        self.frame = frame
        self.has_order = has_order
        self.count_star = name == "count" and argument is None
        self.offset = offset


class _SumState:
    """Incremental count/sum/avg over a sliding frame."""

    __slots__ = ("values", "lo", "count", "total")

    def __init__(self) -> None:
        self.values: list[Any] = []
        self.lo = 0
        self.count = 0
        self.total: Any = 0

    def add(self, value: Any) -> None:
        self.values.append(value)
        if value is not None:
            self.count += 1
            self.total += value

    def advance_lo(self, lo: int) -> None:
        while self.lo < lo:
            value = self.values[self.lo]
            if value is not None:
                self.count -= 1
                self.total -= value
            self.lo += 1


class _ExtremeState:
    """Incremental min/max via a monotonic deque of (index, value).

    The frame only ever advances (adds on the right, evicts on the
    left), so the deque front always holds the current extreme.
    """

    __slots__ = ("entries", "is_min")

    def __init__(self, is_min: bool) -> None:
        self.entries: deque[tuple[int, Any]] = deque()
        self.is_min = is_min

    def add(self, index: int, value: Any) -> None:
        if value is None:
            return
        if self.is_min:
            while self.entries and self.entries[-1][1] >= value:
                self.entries.pop()
        else:
            while self.entries and self.entries[-1][1] <= value:
                self.entries.pop()
        self.entries.append((index, value))

    def advance_lo(self, lo: int) -> None:
        while self.entries and self.entries[0][0] < lo:
            self.entries.popleft()

    def result(self) -> Any:
        return self.entries[0][1] if self.entries else None


class WindowOp(PhysicalNode):
    """Physical window operator; see module docstring."""

    __slots__ = ("child", "_partition_keys", "_order_keys", "functions",
                 "presorted", "naive", "parallel", "sorted_rows",
                 "parallel_workers", "_batch_partition", "_batch_order",
                 "_batch_arguments")

    def __init__(self, child: PhysicalNode, schema: PlanSchema,
                 partition_keys: Sequence[Callable[[tuple], Any]],
                 order_keys: Sequence[tuple[Callable[[tuple], Any], bool]],
                 functions: Sequence[WindowFuncSpec],
                 presorted: bool,
                 ordering: Ordering,
                 naive: bool = False,
                 parallel: bool = False,
                 partition_exprs: Sequence[Expr] | None = None,
                 order_exprs: Sequence[Expr] | None = None,
                 argument_exprs: Sequence[Expr | None] | None = None,
                 ) -> None:
        super().__init__()
        self.child = child
        self.schema = schema
        self._partition_keys = list(partition_keys)
        self._order_keys = list(order_keys)
        self.functions = list(functions)
        self._batch_partition: list[BatchBound] | None = None
        self._batch_order: list[BatchBound] | None = None
        self._batch_arguments: list[BatchBound | None] | None = None
        if partition_exprs is not None or order_exprs is not None \
                or argument_exprs is not None:
            resolver = child.schema.resolver()
            if partition_exprs is not None:
                self._batch_partition = [expr.bind_batch(resolver)
                                         for expr in partition_exprs]
            if order_exprs is not None:
                self._batch_order = [expr.bind_batch(resolver)
                                     for expr in order_exprs]
            if argument_exprs is not None:
                self._batch_arguments = [
                    expr.bind_batch(resolver) if expr is not None else None
                    for expr in argument_exprs]
        self.presorted = presorted
        self.ordering = ordering
        self.naive = naive
        self.parallel = parallel
        self.sorted_rows = 0
        #: Pool size actually used by the last execution (0 = serial);
        #: surfaced through ``ExecutionMetrics`` so tests and the fuzz
        #: oracle can assert the parallel path really ran.
        self.parallel_workers = 0
        for spec in self.functions:
            if spec.frame is not None and spec.frame.mode == "range" \
                    and len(self._order_keys) != 1:
                raise ExecutionError(
                    "RANGE frames require exactly one ORDER BY key")

    def inputs(self) -> Sequence[PhysicalNode]:
        return (self.child,)

    def label(self) -> str:
        flags = []
        if self.presorted:
            flags.append("presorted")
        if self.naive:
            flags.append("naive")
        suffix = f" [{', '.join(flags)}]" if flags else ""
        return f"Window({len(self.functions)} fns){suffix}"

    # ------------------------------------------------------------------

    def scalar_rows(self) -> Iterator[tuple]:
        self.parallel_workers = 0
        buffered = list(self.child.rows())
        if not self.presorted:
            self.sorted_rows = len(buffered)
            for key, ascending in reversed(self._order_keys):
                buffered.sort(key=lambda row: sort_key(key(row)),
                              reverse=not ascending)
            if self._partition_keys:
                buffered.sort(key=lambda row: tuple(
                    sort_key(key(row)) for key in self._partition_keys))
        partitions = list(self._partitions(buffered))
        for partition in partitions:
            computed = [self._evaluate(spec, partition)
                        for spec in self.functions]
            for row_index, row in enumerate(partition):
                self.actual_rows += 1
                yield row + tuple(column[row_index] for column in computed)

    # -- vectorized path ----------------------------------------------

    def _eval_columns(self, big: RowBatch,
                      batch_bounds: list[BatchBound] | None,
                      row_bounds: Sequence[Callable[[tuple], Any]],
                      ) -> list[list]:
        if batch_bounds is not None:
            return [bound(big) for bound in batch_bounds]
        in_rows = big.rows()
        return [[bound(row) for row in in_rows] for bound in row_bounds]

    def _normalized_order(self, order_columns: list[list],
                          start: int, end: int) -> list[Any] | None:
        """Slice of the first order-key column, ascending-normalized."""
        if not self._order_keys:
            return None
        _, ascending = self._order_keys[0]
        column = order_columns[0][start:end]
        if ascending:
            return column
        return [None if value is None else -value for value in column]

    def _partition_spans(self, total: int,
                         partition_columns: list[list],
                         ) -> list[tuple[int, int]]:
        """Contiguous (start, end) spans of equal partition keys."""
        if not partition_columns:
            return [(0, total)]
        spans: list[tuple[int, int]] = []
        start = 0
        current = tuple(column[0] for column in partition_columns)
        for index in range(1, total):
            candidate = tuple(column[index]
                              for column in partition_columns)
            if candidate != current:
                spans.append((start, index))
                start = index
                current = candidate
        spans.append((start, total))
        return spans

    def batches(self, size: int | None = None) -> Iterator[RowBatch]:
        self.parallel_workers = 0
        size = _resolve_batch_size(size)
        buffered: list[tuple] = []
        for batch in self.child.batches(size):
            buffered.extend(batch.rows())
        if not self.presorted:
            self.sorted_rows = len(buffered)
        if not buffered:
            return
        width_in = len(self.child.schema)
        big = RowBatch.from_rows(buffered, width_in)
        partition_columns = self._eval_columns(
            big, self._batch_partition, self._partition_keys)
        order_columns = self._eval_columns(
            big, self._batch_order, [key for key, _ in self._order_keys])
        argument_columns: list[list | None] = []
        for index, spec in enumerate(self.functions):
            if spec.argument is None:
                argument_columns.append(None)
            elif self._batch_arguments is not None \
                    and self._batch_arguments[index] is not None:
                argument_columns.append(self._batch_arguments[index](big))
            else:
                argument_columns.append(
                    [spec.argument(row) for row in buffered])
        if not self.presorted:
            # Stable multi-pass index sort over precomputed key arrays:
            # order keys last-to-first, then the composite partition key,
            # matching the scalar path's per-pass row sorts.
            order = list(range(len(buffered)))
            for column, (_, ascending) in zip(reversed(order_columns),
                                              reversed(self._order_keys)):
                keyed = sort_key_column(column)
                order.sort(key=keyed.__getitem__, reverse=not ascending)
            if partition_columns:
                composite = list(zip(*[sort_key_column(column)
                                       for column in partition_columns]))
                order.sort(key=composite.__getitem__)
            buffered = [buffered[i] for i in order]
            partition_columns = [[column[i] for i in order]
                                 for column in partition_columns]
            order_columns = [[column[i] for i in order]
                             for column in order_columns]
            argument_columns = [
                None if column is None else [column[i] for i in order]
                for column in argument_columns]
            big = RowBatch.from_rows(buffered, width_in)
        sorted_columns = big.columns
        spans = self._partition_spans(len(buffered), partition_columns)
        partitions = [buffered[start:end] for start, end in spans]
        func_count = len(self.functions)
        out_columns: list[list] = [[] for _ in range(width_in + func_count)]
        pending = 0
        for span_index, (start, end) in enumerate(spans):
            order_slice = self._normalized_order(order_columns,
                                                 start, end)
            computed = []
            for index, spec in enumerate(self.functions):
                arguments = (None if argument_columns[index] is None
                             else argument_columns[index][start:end])
                computed.append(self._evaluate(
                    spec, partitions[span_index],
                    order_values=order_slice, arguments=arguments))
            for position in range(width_in):
                out_columns[position].extend(
                    sorted_columns[position][start:end])
            for position, column in enumerate(computed):
                out_columns[width_in + position].extend(column)
            pending += end - start
            if pending >= size:
                self.actual_rows += pending
                self.actual_batches += 1
                yield RowBatch(out_columns, pending)
                out_columns = [[] for _ in range(width_in + func_count)]
                pending = 0
        if pending:
            self.actual_rows += pending
            self.actual_batches += 1
            yield RowBatch(out_columns, pending)

    def _partitions(self, rows: list[tuple]) -> Iterator[list[tuple]]:
        if not rows:
            return
        if not self._partition_keys:
            yield rows
            return
        keys = self._partition_keys
        start = 0
        current = tuple(key(rows[0]) for key in keys)
        for index in range(1, len(rows)):
            candidate = tuple(key(rows[index]) for key in keys)
            if candidate != current:
                yield rows[start:index]
                start = index
                current = candidate
        yield rows[start:]

    # ------------------------------------------------------------------

    def _order_values(self, partition: list[tuple]) -> list[Any]:
        """Order-key values normalized so the sequence is ascending."""
        key, ascending = self._order_keys[0]
        if ascending:
            return [key(row) for row in partition]
        return [None if key(row) is None else -key(row) for row in partition]

    def _frame_bounds(self, spec: WindowFuncSpec, size: int,
                      order_values: list[Any] | None,
                      ) -> Iterator[tuple[int, int]]:
        """Yield inclusive (lo, hi) frame indices for each row in order.

        Both bounds are monotonically nondecreasing across rows, which the
        incremental aggregation relies on. An empty frame is signalled by
        lo > hi.
        """
        frame = spec.frame
        if frame is None:
            if not spec.has_order:
                for _ in range(size):
                    yield 0, size - 1
                return
            # Default frame: RANGE UNBOUNDED PRECEDING .. CURRENT ROW,
            # which includes the full peer group of the current row.
            values = order_values if order_values is not None else []
            hi = 0
            for index in range(size):
                if hi < index:
                    hi = index
                while hi + 1 < size and values[hi + 1] == values[index]:
                    hi += 1
                yield 0, hi
            return
        if frame.mode == "rows":
            for index in range(size):
                lo = 0 if frame.start == UNBOUNDED \
                    else max(0, index + int(frame.start))
                hi = size - 1 if frame.end == UNBOUNDED \
                    else min(size - 1, index + int(frame.end))
                yield lo, hi
            return
        # RANGE mode with value offsets on a single numeric order key.
        # Order values ascend (NULLs first); rows with a NULL key form
        # their own peer group, and value-bounded frames of non-NULL rows
        # never include NULL-key rows.
        values = order_values
        assert values is not None
        first_value = 0
        while first_value < size and values[first_value] is None:
            first_value += 1
        lo = first_value
        hi = first_value - 1
        for index in range(size):
            center = values[index]
            if center is None:
                yield 0, first_value - 1
                continue
            if frame.start == UNBOUNDED:
                target_lo = 0
            else:
                low_value = center + frame.start
                while lo < size and values[lo] < low_value:
                    lo += 1
                target_lo = lo
            if frame.end == UNBOUNDED:
                target_hi = size - 1
            else:
                high_value = center + frame.end
                while hi + 1 < size and values[hi + 1] <= high_value:
                    hi += 1
                target_hi = hi
            yield target_lo, target_hi

    # ------------------------------------------------------------------

    def _evaluate(self, spec: WindowFuncSpec,
                  partition: list[tuple],
                  order_values: list[Any] | None = None,
                  arguments: list[Any] | None = None) -> list[Any]:
        """Window column for one partition.

        ``order_values`` / ``arguments`` may be supplied precomputed (the
        batch path slices them out of whole-input columns); otherwise
        they are derived from the partition rows here.
        """
        size = len(partition)
        if spec.name == "row_number":
            return list(range(1, size + 1))
        if spec.name in ("lag", "lead"):
            if arguments is None:
                argument = spec.argument
                if argument is None:
                    raise ExecutionError(
                        f"{spec.name}() requires an argument")
                arguments = [argument(row) for row in partition]
            values = arguments
            offset = spec.offset
            if offset == 0:
                return values
            padding = [None] * min(offset, size)
            if spec.name == "lag":
                return padding + values[:size - offset]
            return values[offset:] + padding
        if order_values is None and self._order_keys:
            order_values = self._order_values(partition)
        if arguments is None and not spec.count_star:
            arguments = [spec.argument(row) for row in partition]
        if self.naive:
            return self._evaluate_naive(spec, size, order_values, arguments)
        return self._evaluate_sliding(spec, size, order_values, arguments)

    def _evaluate_sliding(self, spec: WindowFuncSpec, size: int,
                          order_values: list[Any] | None,
                          arguments: list[Any] | None) -> list[Any]:
        results: list[Any] = []
        bounds = self._frame_bounds(spec, size, order_values)
        if spec.name in ("min", "max"):
            state = _ExtremeState(is_min=spec.name == "min")
            added = -1
            for lo, hi in bounds:
                while added < hi:
                    added += 1
                    state.add(added, arguments[added])
                state.advance_lo(min(lo, added + 1))
                if lo > hi:
                    results.append(None)
                else:
                    results.append(state.result())
            return results
        state = _SumState()
        added = -1
        for lo, hi in bounds:
            while added < hi:
                added += 1
                if spec.count_star:
                    state.add(1)
                else:
                    state.add(arguments[added])
            state.advance_lo(min(lo, added + 1))
            if lo > hi:
                results.append(0 if spec.name == "count" else None)
                continue
            if spec.name == "count":
                results.append((hi - lo + 1) if spec.count_star
                               else state.count)
            elif spec.name == "sum":
                results.append(state.total if state.count else None)
            else:  # avg
                results.append(state.total / state.count
                               if state.count else None)
        return results

    def _evaluate_naive(self, spec: WindowFuncSpec, size: int,
                        order_values: list[Any] | None,
                        arguments: list[Any] | None) -> list[Any]:
        """Reference implementation: rescan the frame for every row."""
        results: list[Any] = []
        for lo, hi in self._frame_bounds(spec, size, order_values):
            if lo > hi:
                results.append(0 if spec.name == "count" else None)
                continue
            if spec.count_star:
                results.append(hi - lo + 1)
                continue
            window = [value for value in arguments[lo:hi + 1]
                      if value is not None]
            if spec.name == "count":
                results.append(len(window))
            elif not window:
                results.append(None)
            elif spec.name == "sum":
                results.append(sum(window))
            elif spec.name == "avg":
                results.append(sum(window) / len(window))
            elif spec.name == "min":
                results.append(min(window))
            else:
                results.append(max(window))
        return results
