"""Shard-parallel segment planning and the Exchange operator.

The cleansing template Φ_C evaluates every rule per *sequence*
(``PARTITION BY <cluster key> ORDER BY <sequence key>``), so the whole
pipeline below a query's blocking points is embarrassingly parallel
across cluster-key partitions. This module finds those pipeline
*segments*, wraps each in an :class:`ExchangeOp`, and at execution time
fans the segment out over the database's persistent worker pool
(:mod:`repro.minidb.parallel`) as *morsels* — shard specs applied to the
segment's base :class:`SeqScan`.

Segment anatomy
===============

A segment is a maximal subtree whose **spine** — the chain of
pipeline-side children from the segment root down — ends in a
``SeqScan``. Spine operators are the ones whose output for a subset of
scan rows equals the restriction of their full output (filter, project,
pass-through, the probe side of joins, and — under the key-mode rules
below — sort and window). Everything hanging off the spine (join build
sides, semi-join right inputs) is a **broadcast** subtree: each worker
executes it in full, deterministically, exactly as the serial plan
would.

Two morsel shapes:

* **block mode** — no sort/window on the spine: morsels are contiguous
  row ranges of the base table. Every spine operator is
  order-preserving and streaming, so concatenating morsel outputs in
  range order reproduces the serial row order byte for byte.
* **key mode** — the spine contains sorts and/or windows: all of them
  must lead with one ascending base-table column (the cluster key).
  Morsels are then disjoint sets of key values, chunked in ascending
  key order and balanced by row count. A stable sort of a key-range
  subset is the restriction of the full stable sort, and windows
  partitioned by the key never see a partition split across morsels,
  so chunk-order concatenation again equals serial output exactly.

Plans are wrapped only when the spine scan's *estimated* rows reach
:data:`SHARD_ROW_THRESHOLD` (patchable in tests); the Exchange declines
at run time for the same reason, and whenever the pool is unavailable,
falling back to plain serial pass-through.
"""

from __future__ import annotations

from typing import Any, Iterator, Sequence

from repro.minidb.plan.physical import (
    FilterOp,
    HashJoinOp,
    NestedLoopJoinOp,
    PassThroughOp,
    PhysicalNode,
    ProjectOp,
    SemiJoinOp,
    SeqScan,
    SortOp,
    _resolve_batch_size,
)
from repro.minidb.plan.window import WindowOp
from repro.minidb.types import sort_key
from repro.minidb.vector import RowBatch, configured_batch_size

__all__ = [
    "SHARD_ROW_THRESHOLD",
    "MORSELS_PER_WORKER",
    "ExchangeOp",
    "apply_sharding",
    "build_morsels",
    "segment_scan",
    "spine_flags",
]

#: Minimum (estimated at plan time, actual at run time) base-scan rows
#: before a segment is worth fanning out; below this the dispatch and
#: result-transfer overhead dominates. Tests patch this down to force
#: sharding on tiny tables.
SHARD_ROW_THRESHOLD = 4096

#: Morsels created per pool worker. More than one lets the shared task
#: queue balance skew (work stealing); too many wastes per-morsel
#: dispatch overhead.
MORSELS_PER_WORKER = 2

#: The pipeline-side child attribute per spine-eligible operator type.
_SPINE_CHILD: dict[type, str] = {
    FilterOp: "child",
    ProjectOp: "child",
    PassThroughOp: "child",
    SortOp: "child",
    WindowOp: "child",
    HashJoinOp: "left",
    NestedLoopJoinOp: "left",
    SemiJoinOp: "left",
}

#: Child attributes rewritten when recursing past a non-shardable node.
_CHILD_SLOTS = ("child", "left", "right")


def _spine_path(node: PhysicalNode) -> list[PhysicalNode] | None:
    """The spine from *node* down to a ``SeqScan``, or None."""
    path: list[PhysicalNode] = []
    current = node
    while True:
        path.append(current)
        if isinstance(current, SeqScan):
            return path
        attribute = _SPINE_CHILD.get(type(current))
        if attribute is None:
            return None
        current = getattr(current, attribute)


def segment_scan(segment: PhysicalNode) -> SeqScan:
    """The base scan a segment's morsels shard over."""
    path = _spine_path(segment)
    if path is None:
        raise ValueError("node is not a shardable segment")
    return path[-1]


def spine_flags(segment: PhysicalNode) -> list[bool]:
    """For each node in ``segment.walk()`` order: is it on the spine?

    Used when merging worker metrics — spine counters sum across
    morsels (each morsel saw a disjoint row subset), while broadcast
    counters are taken from a single morsel (every morsel re-executed
    the same broadcast work the serial plan runs once).
    """
    spine = {id(node) for node in _spine_path(segment) or ()}
    return [id(node) in spine for node in segment.walk()]


def _shard_key(path: list[PhysicalNode]) -> tuple[str, int | None] | None:
    """Classify a spine: ``("block", None)``, ``("key", position)``, or
    None when the spine cannot be sharded safely.

    Key mode demands that every spine sort and window leads with the
    same ascending base-table column; see the module docstring for why
    that makes chunk-order merge exact.
    """
    scan = path[-1]
    table_name = scan.table.name
    key_column: str | None = None
    for operator in path[:-1]:
        if not isinstance(operator, (SortOp, WindowOp)):
            continue
        if isinstance(operator, WindowOp) and not operator._partition_keys:
            return None  # a single global partition cannot be split
        if not operator.ordering:
            return None
        position, ascending = operator.ordering[0]
        if not ascending:
            return None
        origin = operator.schema.fields[position].origin
        if origin is None or origin[0] != table_name:
            return None
        if key_column is None:
            key_column = origin[1]
        elif key_column != origin[1]:
            return None
    if key_column is None:
        return ("block", None)
    return ("key", scan.table.schema.position_of(key_column))


def build_morsels(table: Any, mode: str, key_position: int | None,
                  workers: int, bound: int | None = None) -> list[tuple]:
    """Shard specs covering *table* exactly once, in merge order.

    Block mode yields ``("block", lo, hi)`` row ranges; key mode yields
    ``("key", position, value_set)`` chunks of ascending distinct key
    values balanced by row count. *bound* restricts the morsels to the
    first *bound* rows — the snapshot-visible prefix — so dispatched
    work covers exactly what a serial bounded scan would read and the
    merged output (and per-morsel counters) match frozen-copy execution.
    """
    total = len(table.rows)
    if bound is not None:
        total = min(total, bound)
    if total == 0:
        return []
    target_count = max(1, workers * MORSELS_PER_WORKER)
    if mode == "block":
        chunk = -(-total // target_count)  # ceil
        return [("block", lo, min(lo + chunk, total))
                for lo in range(0, total, chunk)]
    column = table.columnar()[key_position]
    if len(column) > total:
        column = column[:total]
    counts: dict[Any, int] = {}
    for value in column:
        counts[value] = counts.get(value, 0) + 1
    ordered = sorted(counts, key=sort_key)
    target_rows = total / min(target_count, len(ordered))
    morsels: list[tuple] = []
    bucket: set = set()
    accumulated = 0
    for value in ordered:
        bucket.add(value)
        accumulated += counts[value]
        if accumulated >= target_rows and len(morsels) < target_count - 1:
            morsels.append(("key", key_position, bucket))
            bucket = set()
            accumulated = 0
    if bucket:
        morsels.append(("key", key_position, bucket))
    return morsels


class ExchangeOp(PhysicalNode):
    """Fans its child segment out over the shard pool and merges.

    The operator is *armed* by :meth:`Database.plan`, which attaches the
    pickled logical plan (the dispatch payload) plus the owning
    database. Unarmed — or whenever dispatch is declined (pool disabled,
    table below threshold) or fails — it is a transparent pass-through
    around the serial child, so plans containing an Exchange never
    require a pool to run.
    """

    __slots__ = ("child", "mode", "key_position", "segment_index",
                 "workers_used", "morsel_count", "steal_count",
                 "per_shard_rows", "database", "payload")

    def __init__(self, child: PhysicalNode, mode: str,
                 key_position: int | None, segment_index: int) -> None:
        super().__init__()
        self.child = child
        self.mode = mode
        self.key_position = key_position
        self.segment_index = segment_index
        self.schema = child.schema
        self.ordering = child.ordering
        self.workers_used = 0
        self.morsel_count = 0
        self.steal_count = 0
        self.per_shard_rows: list[int] = []
        self.database: Any = None
        self.payload: bytes | None = None

    def inputs(self) -> Sequence[PhysicalNode]:
        return (self.child,)

    def label(self) -> str:
        return f"Exchange[{self.mode}]"

    def attach(self, database: Any, payload: bytes) -> None:
        self.database = database
        self.payload = payload

    # ------------------------------------------------------------------

    def _try_dispatch(self) -> list[tuple] | None:
        """Parallel merged rows, or None to run the child serially."""
        database = self.database
        if database is None or self.payload is None:
            return None
        scan = segment_scan(self.child)
        if scan.visible_rows is not None:
            # Detached snapshot: the frozen row prefix exists only in
            # this process; forked workers read the (rewritten) live
            # store, so parallel dispatch would be wrong. Run serially.
            return None
        table = scan.table
        bound = scan.visible_count
        visible = len(table.rows) if bound is None else bound
        if visible < SHARD_ROW_THRESHOLD:
            return None
        pool = database.shard_pool()
        if pool is None:
            return None
        morsels = build_morsels(table, self.mode, self.key_position,
                                pool.workers, bound)
        if not morsels:
            return None
        batch_size = configured_batch_size()
        tasks = [(index, self.payload, self.segment_index, morsel,
                  batch_size, bound)
                 for index, morsel in enumerate(morsels)]
        try:
            results = pool.dispatch(tasks)
        except Exception:
            # A wedged or crashed pool must not poison later queries:
            # drop it (a fresh one is forked on the next dispatch) and
            # let this query run serially.
            database.discard_shard_pool()
            return None
        nodes = list(self.child.walk())
        flags = spine_flags(self.child)
        self.child.reset_metrics()
        merged: list[tuple] = []
        self.per_shard_rows = []
        steals = 0
        for index, (worker_id, rows, stats) in enumerate(results):
            if worker_id != index % pool.workers:
                steals += 1
            merged.extend(rows)
            self.per_shard_rows.append(len(rows))
            for node, on_spine, counters in zip(nodes, flags, stats):
                if not on_spine and index > 0:
                    continue  # broadcasts: one morsel equals one serial run
                actual_rows, actual_batches, input_rows, sorted_rows = counters
                node.actual_rows += actual_rows
                node.actual_batches += actual_batches
                if hasattr(node, "input_rows"):
                    node.input_rows += input_rows
                if hasattr(node, "sorted_rows"):
                    node.sorted_rows += sorted_rows
        self.workers_used = min(pool.workers, len(morsels))
        self.morsel_count = len(morsels)
        self.steal_count = steals
        for node, on_spine in zip(nodes, flags):
            if on_spine and isinstance(node, WindowOp):
                node.parallel_workers = self.workers_used
        return merged

    def scalar_rows(self) -> Iterator[tuple]:
        merged = self._try_dispatch()
        if merged is None:
            for row in self.child.rows():
                self.actual_rows += 1
                yield row
            return
        for row in merged:
            self.actual_rows += 1
            yield row

    def batches(self, size: int | None = None) -> Iterator[RowBatch]:
        merged = self._try_dispatch()
        if merged is None:
            for batch in self.child.batches(size):
                self.actual_rows += batch.length
                self.actual_batches += 1
                yield batch
            return
        size = _resolve_batch_size(size)
        width = len(self.schema)
        for lo in range(0, len(merged), size):
            chunk = merged[lo:lo + size]
            self.actual_rows += len(chunk)
            self.actual_batches += 1
            yield RowBatch.from_rows(chunk, width)


def apply_sharding(root: PhysicalNode, workers: int,
                   cost_model: Any) -> PhysicalNode:
    """Wrap every maximal shardable segment of *root* in an Exchange.

    Each Exchange records its segment's walk index in the *pre-wrap*
    plan: workers re-plan the same logical query serially, so that
    index locates the identical subtree on their side. Ancestor cost
    estimates are adjusted by the Exchange's cost delta so the rewrite
    chooser keeps comparing candidates on honest parallel costs.
    """
    index_of = {id(node): index
                for index, node in enumerate(root.walk())}

    def rewrite(node: PhysicalNode) -> tuple[PhysicalNode, float]:
        path = _spine_path(node)
        if path is not None and len(path) >= 2:
            scan = path[-1]
            classified = _shard_key(path)
            if classified is not None \
                    and scan.estimated_rows >= SHARD_ROW_THRESHOLD:
                mode, key_position = classified
                exchange = ExchangeOp(node, mode, key_position,
                                      index_of[id(node)])
                exchange.estimated_rows = node.estimated_rows
                exchange.estimated_cost = cost_model.exchange(
                    node.estimated_cost, node.estimated_rows, workers)
                return exchange, exchange.estimated_cost - node.estimated_cost
        delta = 0.0
        for attribute in _CHILD_SLOTS:
            child = getattr(node, attribute, None)
            if isinstance(child, PhysicalNode):
                replacement, child_delta = rewrite(child)
                setattr(node, attribute, replacement)
                delta += child_delta
        if delta:
            node.estimated_cost += delta
        return node, delta

    rewritten, _ = rewrite(root)
    return rewritten
