"""Logical and physical query plans."""
