"""SQL value types and three-valued logic for the minidb engine.

minidb stores every value as a plain Python object:

=============  ==========================  ===========================
SQL type       Python representation       Notes
=============  ==========================  ===========================
INTEGER        ``int``
DOUBLE         ``float``
VARCHAR        ``str``
BOOLEAN        ``bool``
TIMESTAMP      ``int`` (epoch seconds)     arithmetic yields INTERVAL
INTERVAL       ``int``/``float`` seconds   duration in seconds
NULL           ``None``                    any type may be NULL
=============  ==========================  ===========================

Timestamps are integers so that ``rtime - prev_rtime`` is exact and
cheap; :func:`format_timestamp` renders them for display. SQL NULL is
Python ``None`` everywhere, with Kleene three-valued logic provided by
:func:`sql_and`, :func:`sql_or` and :func:`sql_not`.
"""

from __future__ import annotations

import datetime as _dt
import enum
from typing import Any

from repro.errors import TypeMismatchError

__all__ = [
    "SqlType",
    "MINUTE",
    "HOUR",
    "DAY",
    "coerce_value",
    "is_comparable",
    "sql_and",
    "sql_or",
    "sql_not",
    "compare_values",
    "sort_key",
    "sort_key_column",
    "format_timestamp",
    "parse_timestamp",
    "minutes",
    "hours",
    "days",
]

#: Seconds in a minute; intervals are plain second counts.
MINUTE = 60
#: Seconds in an hour.
HOUR = 3600
#: Seconds in a day.
DAY = 86400


class SqlType(enum.Enum):
    """The SQL types supported by minidb."""

    INTEGER = "integer"
    DOUBLE = "double"
    VARCHAR = "varchar"
    BOOLEAN = "boolean"
    TIMESTAMP = "timestamp"
    INTERVAL = "interval"

    @property
    def is_numeric(self) -> bool:
        """Whether values of this type participate in arithmetic."""
        return self in _NUMERIC_TYPES

    def accepts(self, value: Any) -> bool:
        """Return True when *value* is a valid Python value of this type.

        NULL (``None``) is accepted by every type.
        """
        if value is None:
            return True
        if self is SqlType.INTEGER:
            return isinstance(value, int) and not isinstance(value, bool)
        if self is SqlType.DOUBLE:
            return isinstance(value, (int, float)) and not isinstance(value, bool)
        if self is SqlType.VARCHAR:
            return isinstance(value, str)
        if self is SqlType.BOOLEAN:
            return isinstance(value, bool)
        if self is SqlType.TIMESTAMP:
            return isinstance(value, int) and not isinstance(value, bool)
        if self is SqlType.INTERVAL:
            return isinstance(value, (int, float)) and not isinstance(value, bool)
        raise AssertionError(f"unhandled type {self}")


_NUMERIC_TYPES = {
    SqlType.INTEGER,
    SqlType.DOUBLE,
    SqlType.TIMESTAMP,
    SqlType.INTERVAL,
}


def coerce_value(value: Any, sql_type: SqlType) -> Any:
    """Coerce *value* to *sql_type*, raising on incompatible input.

    Used at insert/load time so that stored rows are always clean; the
    executor never re-validates. Numeric widening (int -> float for
    DOUBLE) is the only silent conversion performed.
    """
    if value is None:
        return None
    if sql_type is SqlType.DOUBLE and isinstance(value, int) \
            and not isinstance(value, bool):
        return float(value)
    if sql_type.accepts(value):
        return value
    raise TypeMismatchError(
        f"value {value!r} of Python type {type(value).__name__} is not "
        f"valid for SQL type {sql_type.value}")


def is_comparable(left: SqlType, right: SqlType) -> bool:
    """Whether values of the two types may be compared with <, =, etc."""
    if left is right:
        return True
    return left.is_numeric and right.is_numeric


def sql_and(left: bool | None, right: bool | None) -> bool | None:
    """Kleene three-valued AND."""
    if left is False or right is False:
        return False
    if left is None or right is None:
        return None
    return True


def sql_or(left: bool | None, right: bool | None) -> bool | None:
    """Kleene three-valued OR."""
    if left is True or right is True:
        return True
    if left is None or right is None:
        return None
    return False


def sql_not(value: bool | None) -> bool | None:
    """Kleene three-valued NOT."""
    if value is None:
        return None
    return not value


def compare_values(left: Any, right: Any) -> int | None:
    """Three-valued comparison: -1, 0, 1, or None when either side is NULL."""
    if left is None or right is None:
        return None
    if left < right:
        return -1
    if left > right:
        return 1
    return 0


class _NullFirst:
    """Sort key wrapper ordering NULL before every non-NULL value."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def __lt__(self, other: "_NullFirst") -> bool:
        if self.value is None:
            return other.value is not None
        if other.value is None:
            return False
        return self.value < other.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _NullFirst) and self.value == other.value


def sort_key(value: Any) -> _NullFirst:
    """Total-order sort key for a possibly-NULL SQL value (NULLs first)."""
    return _NullFirst(value)


def sort_key_column(values: list) -> list:
    """Sort keys for a whole column of same-typed SQL values.

    Ordering is identical to ``[sort_key(v) for v in values]`` — but when
    the column holds no NULLs the wrapper is an identity ordering, so the
    raw values are returned and comparisons run at C speed instead of
    through ``_NullFirst.__lt__``.

    Encoded columns offer ``sort_codes()`` (duck-typed so this module
    never depends on the vector layer): a sorted dictionary's integer
    codes reproduce the NULLS-FIRST-ascending order exactly — NULL is
    code 0, non-null codes follow value order — so the sort compares
    small ints instead of wrapped values. Unsortable encodings decode.
    """
    codes_hook = getattr(values, "sort_codes", None)
    if codes_hook is not None:
        codes = codes_hook()
        if codes is not None:
            return codes
        values = list(values)
    if any(value is None for value in values):
        return [_NullFirst(value) for value in values]
    return values


_EPOCH = _dt.datetime(1970, 1, 1, tzinfo=_dt.timezone.utc)


def format_timestamp(seconds: int | None) -> str | None:
    """Render an epoch-second TIMESTAMP as ``YYYY-MM-DD HH:MM:SS``."""
    if seconds is None:
        return None
    moment = _EPOCH + _dt.timedelta(seconds=seconds)
    return moment.strftime("%Y-%m-%d %H:%M:%S")


def parse_timestamp(text: str) -> int:
    """Parse ``YYYY-MM-DD[ HH:MM:SS]`` into epoch seconds."""
    text = text.strip()
    for pattern in ("%Y-%m-%d %H:%M:%S", "%Y-%m-%d"):
        try:
            moment = _dt.datetime.strptime(text, pattern)
        except ValueError:
            continue
        moment = moment.replace(tzinfo=_dt.timezone.utc)
        return int((moment - _EPOCH).total_seconds())
    raise TypeMismatchError(f"cannot parse timestamp literal {text!r}")


def minutes(count: float) -> int:
    """An INTERVAL of *count* minutes, in seconds."""
    return int(count * MINUTE)


def hours(count: float) -> int:
    """An INTERVAL of *count* hours, in seconds."""
    return int(count * HOUR)


def days(count: float) -> int:
    """An INTERVAL of *count* days, in seconds."""
    return int(count * DAY)
