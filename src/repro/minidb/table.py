"""In-memory row storage for minidb tables.

A :class:`Table` owns a list of row tuples in insertion order plus any
number of single-column :class:`SortedIndex` objects. Rows are validated
and coerced against the schema at insert time so downstream operators
never re-check types.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping, Sequence

from repro.errors import CatalogError, SchemaError
from repro.minidb.index import SortedIndex
from repro.minidb.schema import TableSchema
from repro.minidb.types import coerce_value

__all__ = ["Table"]


class Table:
    """A named, schema-validated collection of row tuples.

    ``version`` is a monotonically increasing counter bumped by every
    mutating operation (insert, bulk load, index creation). Consumers
    that memoize anything derived from the table's contents — statistics,
    prepared plans, materialized cleansing regions — record the version
    they saw and treat a mismatch as staleness.
    """

    def __init__(self, name: str, schema: TableSchema) -> None:
        self.name = name.lower()
        self.schema = schema
        self.rows: list[tuple] = []
        self.indexes: dict[str, SortedIndex] = {}
        self.version = 0
        self._columns: list[list] | None = None
        self._columns_version = -1

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:
        return f"Table({self.name!r}, rows={len(self.rows)})"

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------

    def _coerce_row(self, values: Sequence[Any]) -> tuple:
        if len(values) != len(self.schema):
            raise SchemaError(
                f"table {self.name!r} expects {len(self.schema)} values, "
                f"got {len(values)}")
        return tuple(
            coerce_value(value, column.sql_type)
            for value, column in zip(values, self.schema))

    def insert(self, values: Sequence[Any] | Mapping[str, Any]) -> None:
        """Insert one row (positional sequence or name -> value mapping)."""
        if isinstance(values, Mapping):
            values = [values.get(name) for name in self.schema.names]
        row = self._coerce_row(values)
        position = len(self.rows)
        self.rows.append(row)
        self.version += 1
        self._invalidate_columnar()
        for index in self.indexes.values():
            key_position = self.schema.position_of(index.column)
            index.insert(row[key_position], position)

    def bulk_load(self, rows: Iterable[Sequence[Any]]) -> int:
        """Append many rows; indexes are rebuilt once at the end.

        Returns the number of rows loaded.
        """
        loaded = 0
        append = self.rows.append
        coerce = self._coerce_row
        for values in rows:
            append(coerce(values))
            loaded += 1
        if loaded:
            self.version += 1
            self._invalidate_columnar()
        for index in self.indexes.values():
            self._rebuild_index(index)
        return loaded

    def replace_rows(self, rows: Iterable[Sequence[Any]]) -> int:
        """Atomically swap the table contents for *rows*.

        One call performs the whole consistency dance — coerce, swap,
        bump ``version``, rebuild every index, drop the columnar cache —
        so callers iterating toward a fixpoint (or otherwise rewriting a
        table in place) cannot end up with rows that disagree with the
        indexes or with version-keyed caches. Returns the new row count.
        """
        coerce = self._coerce_row
        new_rows = [coerce(values) for values in rows]
        self.rows = new_rows
        self.version += 1
        self._invalidate_columnar()
        for index in self.indexes.values():
            self._rebuild_index(index)
        return len(new_rows)

    # ------------------------------------------------------------------
    # Indexing
    # ------------------------------------------------------------------

    def create_index(self, column: str, name: str | None = None) -> SortedIndex:
        """Create (and build) a sorted index on *column*."""
        column = column.lower()
        self.schema.position_of(column)  # validates the column exists
        index_name = (name or f"idx_{self.name}_{column}").lower()
        if index_name in self.indexes:
            raise CatalogError(f"index {index_name!r} already exists")
        index = SortedIndex(index_name, column)
        self._rebuild_index(index)
        self.indexes[index_name] = index
        self.version += 1
        return index

    def _rebuild_index(self, index: SortedIndex) -> None:
        key_position = self.schema.position_of(index.column)
        index.build(
            (row[key_position], position)
            for position, row in enumerate(self.rows))

    def index_on(self, column: str) -> SortedIndex | None:
        """The first index whose key is *column*, or None."""
        column = column.lower()
        for index in self.indexes.values():
            if index.column == column:
                return index
        return None

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    def scan(self) -> Iterator[tuple]:
        """Yield all rows in insertion order."""
        return iter(self.rows)

    def _invalidate_columnar(self) -> None:
        """Drop the cached transpose the moment the rows change.

        Mutators call this eagerly so a stale copy (one full duplicate
        of the table) is never retained until the next ``columnar()``
        call — under fixpoint/update workloads those copies used to
        accumulate for the lifetime of each superseded version.
        """
        self._columns = None
        self._columns_version = -1

    def columnar(self) -> list[list]:
        """The table contents as one list per column (insertion order).

        The transpose is cached and keyed on ``version``, so repeated
        vectorized scans of an unchanged table pay for it once; any
        mutation evicts it eagerly (``_invalidate_columnar``). Callers
        must not mutate the returned lists (batch columns are shared,
        never written in place).
        """
        if self._columns is None or self._columns_version != self.version:
            if self.rows:
                self._columns = [list(column) for column in zip(*self.rows)]
            else:
                self._columns = [[] for _ in self.schema]
            self._columns_version = self.version
        return self._columns

    def column_values(self, name: str) -> Iterator[Any]:
        """Yield the values of one column across all rows."""
        position = self.schema.position_of(name)
        for row in self.rows:
            yield row[position]
