"""In-memory row storage for minidb tables.

A :class:`Table` owns a list of row tuples in insertion order plus any
number of single-column :class:`SortedIndex` objects. Rows are validated
and coerced against the schema at insert time so downstream operators
never re-check types.
"""

from __future__ import annotations

import threading
from typing import Any, Iterable, Iterator, Mapping, Sequence

from repro.errors import CatalogError, SchemaError
from repro.minidb import vector
from repro.minidb.index import SortedIndex
from repro.minidb.schema import TableSchema
from repro.minidb.storage.btree import BTreeBackedIndex, DiskBTree
from repro.minidb.storage.heap import DiskRowStore
from repro.minidb.types import coerce_value

__all__ = ["Table", "TableVersion"]

# Bounded delta history: once more appends than this have happened since
# the oldest un-truncated epoch, the log's floor rises and older readers
# fall back to full invalidation. 256 epochs comfortably covers any
# realistic trickle between two queries while bounding memory to a few KB.
_DELTA_LOG_LIMIT = 256


class TableVersion:
    """A refcounted, immutable view of one table at one data epoch.

    MVCC for an append-mostly store: appends only ever *extend* the row
    sequence, so a version is usually just a bound — ``row_count`` rows
    of the live store, read by position. Positions below the bound are
    stable across any number of concurrent appends, which is what lets
    readers run without blocking ingest.

    A whole-table rewrite (``replace_rows``) breaks position stability;
    before applying one, the table *detaches* every live version by
    materializing its row prefix into ``frozen_rows``. Readers switch to
    the frozen copy transparently; the copy is released when the last
    pin drains (``Table.release_version``).
    """

    __slots__ = ("table", "schema_epoch", "data_epoch", "row_count",
                 "refcount", "frozen_rows")

    def __init__(self, table: "Table", schema_epoch: int, data_epoch: int,
                 row_count: int) -> None:
        self.table = table
        self.schema_epoch = schema_epoch
        self.data_epoch = data_epoch
        self.row_count = row_count
        self.refcount = 0
        #: Materialized row prefix, set only when the version had to be
        #: detached from the live store (see ``Table._detach_pinned``).
        #: May hold more than ``row_count`` rows (memory mode retains
        #: the superseded list object wholesale); readers always bound
        #: by ``row_count``.
        self.frozen_rows: Sequence[tuple] | None = None

    @property
    def detached(self) -> bool:
        """True when this version no longer reads the live row store."""
        return self.frozen_rows is not None

    def __repr__(self) -> str:
        state = "detached" if self.detached else "live"
        return (f"TableVersion({self.table.name!r}, "
                f"epoch={self.data_epoch}, rows={self.row_count}, "
                f"refs={self.refcount}, {state})")


class Table:
    """A named, schema-validated collection of row tuples.

    Staleness is tracked by two monotone epoch counters instead of one
    opaque version:

    * ``schema_epoch`` — bumped by structural changes (index creation).
    * ``data_epoch``   — bumped by every row mutation (insert, bulk load,
      append, replace).

    ``version`` (their sum) preserves the original contract: consumers
    that memoize anything derived from the table — statistics, prepared
    plans, materialized cleansing regions — record the version they saw
    and treat a mismatch as staleness. Append-aware consumers can do
    better: each append-only mutation is recorded in a bounded delta log,
    and :meth:`delta_since` tells them exactly which row ranges arrived
    after the epoch they captured, so they can patch instead of rebuild.
    """

    def __init__(self, name: str, schema: TableSchema,
                 storage=None) -> None:
        self.name = name.lower()
        self.schema = schema
        #: Disk-backed tables swap the row list for a page-backed view
        #: with the same sequence interface; *storage* is the owning
        #: :class:`~repro.minidb.storage.backend.DiskStorage` (or None).
        self.storage = storage
        if storage is not None:
            self.rows: list[tuple] | DiskRowStore = DiskRowStore(
                storage, self.name)
        else:
            self.rows = []
        self.indexes: dict[str, SortedIndex] = {}
        self.schema_epoch = 0
        self.data_epoch = 0
        # Delta log: (data_epoch, start, count) per append-only mutation.
        # _delta_floor is the oldest epoch delta_since() can still answer
        # for; anything older must be treated as a full rewrite.
        self._delta_log: list[tuple[int, int, int]] = []
        self._delta_floor = 0
        self._columns: list[list] | None = None
        self._columns_rows = 0
        # Encoded twin of the columnar cache (DictColumn/RLEColumn per
        # column where the encoder judged it worthwhile, the *same*
        # plain list object otherwise). Extended incrementally on
        # append, evicted together with the plain cache. ``encode``
        # is the per-Database override: None defers to REPRO_ENCODE.
        self.encode: bool | None = None
        self._encoded: list | None = None
        self._encoded_rows = 0
        # Pinned snapshot versions by data epoch. Pinning the same epoch
        # twice shares one TableVersion (refcounted); the registry only
        # holds versions with live pins.
        self._pinned: dict[int, TableVersion] = {}
        # Guards the columnar cache's lazy build/extension: two readers
        # (or a reader racing ingest) must not extend the same column
        # lists concurrently.
        self._columnar_lock = threading.Lock()

    @property
    def version(self) -> int:
        """Combined staleness counter (schema + data epochs).

        Strictly monotone because both addends are; kept as a property so
        every pre-delta consumer keeps working unchanged.
        """
        return self.schema_epoch + self.data_epoch

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:
        return f"Table({self.name!r}, rows={len(self.rows)})"

    # ------------------------------------------------------------------
    # Delta log
    # ------------------------------------------------------------------

    def _log_append(self, start: int, count: int) -> None:
        self.data_epoch += 1
        self._delta_log.append((self.data_epoch, start, count))
        if len(self._delta_log) > _DELTA_LOG_LIMIT:
            dropped_epoch, _, _ = self._delta_log.pop(0)
            self._delta_floor = dropped_epoch

    def _rebase_deltas(self) -> None:
        """Forget append history after a non-append rewrite.

        ``replace_rows`` invalidates every row position, so pre-existing
        delta ranges are meaningless; only epochs captured from this
        point on can be patched.
        """
        self.data_epoch += 1
        self._delta_log.clear()
        self._delta_floor = self.data_epoch

    # ------------------------------------------------------------------
    # MVCC snapshot versions
    # ------------------------------------------------------------------

    def pin_version(self) -> TableVersion:
        """Pin the current data epoch as an immutable read view.

        Cheap: no rows are copied. Concurrent appends extend the store
        past the pinned ``row_count`` without disturbing it; a
        ``replace_rows`` rewrite detaches the version onto a frozen copy
        first. Must be balanced by :meth:`release_version`.
        """
        version = self._pinned.get(self.data_epoch)
        if version is None:
            version = TableVersion(self, self.schema_epoch,
                                   self.data_epoch, len(self.rows))
            self._pinned[self.data_epoch] = version
        version.refcount += 1
        return version

    def release_version(self, version: TableVersion) -> None:
        """Drop one pin; the version retires when its refcount drains."""
        version.refcount -= 1
        if version.refcount > 0:
            return
        current = self._pinned.get(version.data_epoch)
        if current is version:
            del self._pinned[version.data_epoch]
        # Retire: release any frozen copy a rewrite forced us to keep.
        version.frozen_rows = None

    def pinned_versions(self) -> list[TableVersion]:
        """Currently pinned versions (observability / tests)."""
        return list(self._pinned.values())

    def _detach_pinned(self) -> None:
        """Freeze live pinned versions before a position-breaking rewrite.

        Memory mode retains the superseded row-list object itself (zero
        copy — ``replace_rows`` swaps in a brand-new list, so the old one
        is never mutated again). Disk mode must materialize rows out of
        the heap pages before ``DiskRowStore.replace`` frees them; the
        longest prefix is copied once and shared.
        """
        live = [version for version in self._pinned.values()
                if version.frozen_rows is None]
        if not live:
            return
        if isinstance(self.rows, DiskRowStore):
            longest = max(version.row_count for version in live)
            prefix = self.rows[0:longest]
            for version in live:
                version.frozen_rows = prefix
        else:
            rows = self.rows
            for version in live:
                version.frozen_rows = rows

    def delta_since(self, data_epoch: int) -> list[tuple[int, int]] | None:
        """Row ranges appended after *data_epoch*, or None if unknowable.

        Returns ``[]`` when the caller is already current, a list of
        ``(start, count)`` ranges (epoch order) when every intervening
        mutation was an append, and ``None`` when history has been
        truncated or rewritten — the caller must fall back to a full
        rebuild in that case.
        """
        if data_epoch >= self.data_epoch:
            return []
        if data_epoch < self._delta_floor:
            return None
        return [(start, count)
                for epoch, start, count in self._delta_log
                if epoch > data_epoch]

    # ------------------------------------------------------------------
    # Storage hooks
    # ------------------------------------------------------------------

    def _mutation_complete(self) -> None:
        """Tell disk storage a mutation fully applied (rows + indexes).

        This is the only point a checkpoint may trigger from: rows and
        index entries are consistent here, so the manifest can never
        capture a half-applied batch.
        """
        if self.storage is not None:
            self.storage.mutation_complete()

    def release_storage(self) -> None:
        """Free every page this table owns (called on DROP TABLE)."""
        # Pinned snapshot readers survive the drop on frozen copies.
        self._detach_pinned()
        if isinstance(self.rows, DiskRowStore):
            self.rows.free_all()
        for index in self.indexes.values():
            if isinstance(index, BTreeBackedIndex):
                for page_id in list(index.tree.pages):
                    index.tree.pages.discard(page_id)
                    self.storage.free_page(page_id)

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------

    def _coerce_row(self, values: Sequence[Any]) -> tuple:
        if len(values) != len(self.schema):
            raise SchemaError(
                f"table {self.name!r} expects {len(self.schema)} values, "
                f"got {len(values)}")
        return tuple(
            coerce_value(value, column.sql_type)
            for value, column in zip(values, self.schema))

    def insert(self, values: Sequence[Any] | Mapping[str, Any]) -> None:
        """Insert one row (positional sequence or name -> value mapping)."""
        if isinstance(values, Mapping):
            values = [values.get(name) for name in self.schema.names]
        row = self._coerce_row(values)
        position = len(self.rows)
        self.rows.append(row)
        self._log_append(position, 1)
        for index in self.indexes.values():
            key_position = self.schema.position_of(index.column)
            index.insert(row[key_position], position)
        self._mutation_complete()

    def append_rows(self, rows: Iterable[Sequence[Any]]) -> int:
        """Append many rows as one delta epoch; indexes patched in place.

        The streaming ingestion primitive: unlike :meth:`bulk_load` it
        never rebuilds indexes (entries for the new rows are merged in),
        and the whole batch lands as a single entry in the delta log so
        append-aware caches can re-derive exactly what changed. Returns
        the number of rows appended.
        """
        coerce = self._coerce_row
        fresh = [coerce(values) for values in rows]
        if not fresh:
            return 0
        start = len(self.rows)
        self.rows.extend(fresh)
        self._log_append(start, len(fresh))
        for index in self.indexes.values():
            key_position = self.schema.position_of(index.column)
            index.insert_many(
                (row[key_position], start + offset)
                for offset, row in enumerate(fresh))
        self._mutation_complete()
        return len(fresh)

    def bulk_load(self, rows: Iterable[Sequence[Any]]) -> int:
        """Append many rows; indexes are rebuilt once at the end.

        Returns the number of rows loaded.
        """
        coerce = self._coerce_row
        fresh = [coerce(values) for values in rows]
        start = len(self.rows)
        if fresh:
            # One extend call = one WAL transaction on a disk table.
            self.rows.extend(fresh)
            self._log_append(start, len(fresh))
        for index in self.indexes.values():
            self._rebuild_index(index)
        self._mutation_complete()
        return len(fresh)

    def replace_rows(self, rows: Iterable[Sequence[Any]], *,
                     coerced: bool = False) -> int:
        """Atomically swap the table contents for *rows*.

        One call performs the whole consistency dance — coerce, swap,
        bump the data epoch, rebuild every index, drop the columnar cache
        and rebase the delta log — so callers iterating toward a fixpoint
        (or otherwise rewriting a table in place) cannot end up with rows
        that disagree with the indexes or with version-keyed caches.
        Returns the new row count.

        ``coerced=True`` skips per-value coercion: the caller asserts
        every row is already a schema-coerced tuple (it was read from
        this table or materialized by a plan over coerced tables). The
        fast path for splice-style rewrites that shuffle existing rows.
        """
        if coerced:
            new_rows = rows if isinstance(rows, list) else list(rows)
        else:
            coerce = self._coerce_row
            new_rows = [coerce(values) for values in rows]
        # Rewrites break position stability; pinned snapshot versions
        # must be frozen onto copies before the store is touched.
        self._detach_pinned()
        if isinstance(self.rows, DiskRowStore):
            self.rows.replace(new_rows)
        else:
            self.rows = new_rows
        self._rebase_deltas()
        self._invalidate_columnar()
        for index in self.indexes.values():
            self._rebuild_index(index)
        self._mutation_complete()
        return len(new_rows)

    # ------------------------------------------------------------------
    # Indexing
    # ------------------------------------------------------------------

    def create_index(self, column: str, name: str | None = None) -> SortedIndex:
        """Create (and build) a sorted index on *column*."""
        column = column.lower()
        self.schema.position_of(column)  # validates the column exists
        index_name = (name or f"idx_{self.name}_{column}").lower()
        if index_name in self.indexes:
            raise CatalogError(f"index {index_name!r} already exists")
        if self.storage is not None:
            self.storage.log_create_index(self.name, column, index_name)
            index: SortedIndex = BTreeBackedIndex(
                index_name, column, DiskBTree(self.storage))
        else:
            index = SortedIndex(index_name, column)
        self._rebuild_index(index)
        self.indexes[index_name] = index
        self.schema_epoch += 1
        self._mutation_complete()
        return index

    def _rebuild_index(self, index: SortedIndex) -> None:
        key_position = self.schema.position_of(index.column)
        index.build(
            (row[key_position], position)
            for position, row in enumerate(self.rows))

    def index_on(self, column: str) -> SortedIndex | None:
        """The first index whose key is *column*, or None."""
        column = column.lower()
        for index in self.indexes.values():
            if index.column == column:
                return index
        return None

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    def scan(self) -> Iterator[tuple]:
        """Yield all rows in insertion order."""
        return iter(self.rows)

    def _invalidate_columnar(self) -> None:
        """Drop the cached transpose after a non-append rewrite.

        ``replace_rows`` calls this eagerly so a stale copy (one full
        duplicate of the table) is never retained until the next
        ``columnar()`` call — under fixpoint/update workloads those
        copies used to accumulate for the lifetime of each superseded
        version. Appends do NOT invalidate: the cache records how many
        rows it has transposed and extends itself lazily.
        """
        self._columns = None
        self._columns_rows = 0
        self._encoded = None
        self._encoded_rows = 0

    def columnar(self) -> list[list]:
        """The table contents as one list per column (insertion order).

        The transpose is cached; appends extend it in place (only the
        tail rows are transposed), and only full rewrites
        (``replace_rows``) evict it. Callers must not mutate the returned
        lists (batch columns are shared, never written in place).

        Build/extension happens under a lock: concurrent snapshot
        readers (or a reader racing ingest) must not double-extend the
        shared column lists. Columns only ever *grow* between rewrites,
        so a reader that bounds its slices by a pinned row count sees a
        stable prefix regardless of concurrent extension.
        """
        with self._columnar_lock:
            return self._columnar_locked()

    def _columnar_locked(self) -> list[list]:
        if self._columns is None:
            if self.rows:
                self._columns = [list(column)
                                 for column in zip(*self.rows)]
            else:
                self._columns = [[] for _ in self.schema]
            self._columns_rows = len(self.rows)
        elif self._columns_rows < len(self.rows):
            tail = self.rows[self._columns_rows:]
            for position, column in enumerate(self._columns):
                column.extend(row[position] for row in tail)
            self._columns_rows = len(self.rows)
        return self._columns

    def encode_resolved(self) -> bool:
        """Whether this table serves encoded columns (knob or override)."""
        if self.encode is None:
            return vector.encode_enabled()
        return bool(self.encode)

    def encoded_columnar(self) -> list:
        """The columnar cache with per-column encodings applied.

        Same contract as :meth:`columnar` — cached, extended in place on
        append (new dictionary values get fresh codes; history is never
        re-encoded), evicted on rewrite — but each column is whatever
        the encoder chose: a :class:`~repro.minidb.vector.DictColumn`,
        an :class:`~repro.minidb.vector.RLEColumn`, or the *identical*
        plain list object from the plain cache (so undecodable columns
        cost nothing twice). Falls back to :meth:`columnar` entirely
        when encoding is off for this table.
        """
        if not self.encode_resolved():
            return self.columnar()
        with self._columnar_lock:
            plain = self._columnar_locked()
            if self._encoded is None:
                self._encoded = [vector.encode_column(column)
                                 for column in plain]
                self._encoded_rows = self._columns_rows
            elif self._encoded_rows < self._columns_rows:
                start = self._encoded_rows
                for position, column in enumerate(self._encoded):
                    if column is plain[position]:
                        continue  # plain choice: shares the live list
                    vector.extend_column(column, plain[position], start)
                self._encoded_rows = self._columns_rows
            return self._encoded

    def encoded_ndv(self, position: int) -> int | None:
        """Exact distinct non-null count from a warm dictionary, or None.

        Deliberately read-only with respect to the cache: ingest paths
        (stats patching on append) must not pay for an encode build, so
        the answer is only available once a query has already warmed the
        encoded cache for this table.
        """
        if self._encoded is None or not self.encode_resolved():
            return None
        column = self.encoded_columnar()[position]
        if isinstance(column, vector.DictColumn):
            return column.distinct_count()
        return None

    def column_values(self, name: str) -> Iterator[Any]:
        """Yield the values of one column across all rows."""
        position = self.schema.position_of(name)
        for row in self.rows:
            yield row[position]
