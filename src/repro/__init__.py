"""repro — a reproduction of "A Deferred Cleansing Method for RFID Data
Analytics" (Rao, Doraiswamy, Thakkar, Colby — VLDB 2006).

Public entry points:

* :mod:`repro.minidb` — the relational engine (SQL/OLAP substrate);
* :mod:`repro.sqlts` — the extended SQL-TS cleansing-rule language;
* :mod:`repro.rewrite` — the deferred-cleansing rewrite engine;
* :mod:`repro.datagen` — RFIDGen, the supply-chain data generator;
* :mod:`repro.workloads` — the paper's benchmark queries and rules;
* :mod:`repro.experiments` — regeneration of every table and figure.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
