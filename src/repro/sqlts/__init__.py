"""Extended SQL-TS cleansing-rule language (Section 4 of the paper).

Rules are written in the paper's grammar::

    DEFINE      rule_name
    ON          table_name
    FROM        table_name
    CLUSTER BY  cluster_key
    SEQUENCE BY sequence_key
    AS          (A, B, *C)
    WHERE       condition
    ACTION      DELETE ref | KEEP ref | MODIFY ref.col = expr [, ...]

and compiled to SQL/OLAP window-function templates for efficient
single-pass evaluation inside minidb.
"""

from repro.sqlts.model import Action, ActionKind, CleansingRule, PatternRef
from repro.sqlts.parser import parse_rule
from repro.sqlts.compiler import CompiledRule, compile_rule
from repro.sqlts.fixpoint import FixpointResult, apply_to_fixpoint
from repro.sqlts.registry import RuleRegistry

__all__ = [
    "Action",
    "ActionKind",
    "CleansingRule",
    "PatternRef",
    "parse_rule",
    "CompiledRule",
    "compile_rule",
    "RuleRegistry",
    "FixpointResult",
    "apply_to_fixpoint",
]
