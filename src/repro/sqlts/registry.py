"""The rule registry — the system's persisted "rules table".

Architecture steps 1–2 of the paper (Figure 1): the rule engine accepts
extended SQL-TS rules, compiles each into a SQL/OLAP template, and
persists pattern/condition/action plus the template in a rules table for
the rewrite engine to use at query time.

The registry also holds named *rule input views*: a rule may be defined
``ON R`` but take its input ``FROM`` a derived table whose definition
includes R plus compensation data (the missing-read rule's union of case
reads and expected pallet reads, §4.3 Example 5). Views are stored as
SQL text and instantiated at rewrite time with the cleansed-so-far
stream substituted for R.
"""

from __future__ import annotations

from repro.errors import RuleError
from repro.minidb.engine import Database
from repro.minidb.schema import TableSchema
from repro.minidb.sqlparse import parse_select
from repro.minidb.sqlparse.ast import SelectStmt
from repro.minidb.types import SqlType
from repro.sqlts.compiler import CompiledRule, compile_rule
from repro.sqlts.model import CleansingRule
from repro.sqlts.parser import parse_rule

__all__ = ["RuleRegistry", "RULES_TABLE", "RULES_TABLE_SCHEMA"]

#: Name of the persisted rules table inside the host database.
RULES_TABLE = "_cleansing_rules"

RULES_TABLE_SCHEMA = TableSchema.of(
    ("rule_name", SqlType.VARCHAR),
    ("on_table", SqlType.VARCHAR),
    ("from_table", SqlType.VARCHAR),
    ("cluster_key", SqlType.VARCHAR),
    ("sequence_key", SqlType.VARCHAR),
    ("rule_text", SqlType.VARCHAR),
    ("sql_template", SqlType.VARCHAR),
    ("created_at", SqlType.INTEGER),
)


class RuleRegistry:
    """Compiles, orders, and persists cleansing rules per application."""

    def __init__(self, database: Database | None = None) -> None:
        self._database = database
        self._rules: list[CompiledRule] = []
        self._views: dict[str, SelectStmt] = {}
        self._view_sql: dict[str, str] = {}
        self._counter = 0
        if database is not None and RULES_TABLE not in database.catalog:
            database.create_table(RULES_TABLE, RULES_TABLE_SCHEMA)

    # ------------------------------------------------------------------

    def define(self, rule: str | CleansingRule) -> CompiledRule:
        """Parse (if text), compile, order, and persist one rule."""
        if isinstance(rule, str):
            rule_text = rule
            parsed = parse_rule(rule)
        else:
            rule_text = ""
            parsed = rule
        if any(existing.name == parsed.name for existing in self._rules):
            raise RuleError(f"rule {parsed.name!r} is already defined")
        self._counter += 1
        parsed.created_at = self._counter
        compiled = compile_rule(parsed)
        self._rules.append(compiled)
        self._persist(parsed, rule_text, compiled)
        return compiled

    def define_view(self, name: str, sql: str) -> None:
        """Register a named rule-input view (derived FROM table)."""
        name = name.lower()
        statement = parse_select(sql)
        self._views[name] = statement
        self._view_sql[name] = sql

    def _persist(self, rule: CleansingRule, rule_text: str,
                 compiled: CompiledRule) -> None:
        if self._database is None:
            return
        template_columns = sorted(compiled.required_columns())
        self._database.table(RULES_TABLE).insert({
            "rule_name": rule.name,
            "on_table": rule.on_table,
            "from_table": rule.from_table,
            "cluster_key": rule.cluster_key,
            "sequence_key": rule.sequence_key,
            "rule_text": rule_text,
            "sql_template": compiled.sql_template(template_columns),
            "created_at": rule.created_at,
        })

    # ------------------------------------------------------------------

    def drop(self, name: str) -> None:
        name = name.lower()
        before = len(self._rules)
        self._rules = [rule for rule in self._rules if rule.name != name]
        if len(self._rules) == before:
            raise RuleError(f"no rule named {name!r}")

    def clear(self) -> None:
        self._rules.clear()

    def __len__(self) -> int:
        return len(self._rules)

    def rule(self, name: str) -> CompiledRule:
        name = name.lower()
        for compiled in self._rules:
            if compiled.name == name:
                return compiled
        raise RuleError(f"no rule named {name!r}")

    def rules_for(self, table_name: str) -> list[CompiledRule]:
        """Rules defined ON *table_name*, in creation order (§4.4)."""
        table_name = table_name.lower()
        ordered = [compiled for compiled in self._rules
                   if compiled.rule.on_table == table_name]
        ordered.sort(key=lambda compiled: compiled.rule.created_at)
        return ordered

    def view(self, name: str) -> SelectStmt | None:
        return self._views.get(name.lower())

    def view_sql(self, name: str) -> str | None:
        return self._view_sql.get(name.lower())

    def tables_with_rules(self) -> set[str]:
        return {compiled.rule.on_table for compiled in self._rules}
