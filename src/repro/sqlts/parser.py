"""Parser for the extended SQL-TS rule grammar.

Reuses the minidb SQL tokenizer/expression parser, so rule conditions
support the full minidb expression dialect (including ``5 mins``
interval shorthand, as the paper's rule tables use).
"""

from __future__ import annotations

from repro.errors import RuleSyntaxError, SqlSyntaxError
from repro.minidb.expressions import Expr
from repro.minidb.sqlparse.lexer import TokenKind
from repro.minidb.sqlparse.parser import Parser
from repro.sqlts.model import Action, ActionKind, CleansingRule, PatternRef

__all__ = ["parse_rule"]


class _RuleParser(Parser):
    """Recursive-descent productions for the rule grammar."""

    def parse_rule(self) -> CleansingRule:
        try:
            return self._parse_rule_body()
        except SqlSyntaxError as error:
            raise RuleSyntaxError(str(error)) from error

    def _parse_rule_body(self) -> CleansingRule:
        self._expect_keyword("define")
        name = self._expect_ident("rule name").lower
        self._expect_keyword("on")
        on_table = self._expect_ident("table name").lower
        from_table = on_table
        if self._match_keyword("from"):
            from_table = self._expect_ident("table name").lower
        self._expect_keyword("cluster")
        self._expect_keyword("by")
        cluster_key = self._expect_ident("cluster key").lower
        self._expect_keyword("sequence")
        self._expect_keyword("by")
        sequence_key = self._expect_ident("sequence key").lower
        self._expect_keyword("as")
        pattern = self._parse_pattern()
        self._expect_keyword("where")
        condition = self.parse_expr()
        self._expect_keyword("action")
        action = self._parse_action()
        token = self._peek()
        if token.kind != TokenKind.END:
            raise SqlSyntaxError(f"trailing input {token.text!r}",
                                 token.line, token.column)
        return CleansingRule(
            name=name, on_table=on_table, from_table=from_table,
            cluster_key=cluster_key, sequence_key=sequence_key,
            pattern=pattern, condition=condition, action=action)

    def _parse_pattern(self) -> list[PatternRef]:
        self._expect_punct("(")
        refs: list[PatternRef] = []
        while True:
            is_set = bool(self._match_punct("*"))
            name = self._expect_ident("pattern reference").lower
            min_matches = 1
            if self._match_punct("{"):
                token = self._advance()
                if token.kind != TokenKind.NUMBER or "." in token.text:
                    raise SqlSyntaxError(
                        "match-count qualifier expects an integer",
                        token.line, token.column)
                min_matches = int(token.text)
                self._expect_punct("}")
            refs.append(PatternRef(name, is_set=is_set, position=len(refs),
                                   min_matches=min_matches))
            if not self._match_punct(","):
                break
        self._expect_punct(")")
        return refs

    def _parse_action(self) -> Action:
        if self._match_keyword("delete"):
            target = self._expect_ident("target reference").lower
            return Action(ActionKind.DELETE, target)
        if self._match_keyword("keep"):
            target = self._expect_ident("target reference").lower
            return Action(ActionKind.KEEP, target)
        self._expect_keyword("modify")
        assignments: dict[str, Expr] = {}
        target: str | None = None
        while True:
            ref_name = self._expect_ident("target reference").lower
            self._expect_punct(".")
            column = self._expect_ident("column name").lower
            self._expect_punct("=")
            value = self.parse_expr()
            if target is None:
                target = ref_name
            elif target != ref_name:
                raise SqlSyntaxError(
                    "MODIFY assignments must all target the same reference")
            assignments[column] = value
            if not self._match_punct(","):
                break
        assert target is not None
        return Action(ActionKind.MODIFY, target, assignments)


def parse_rule(text: str) -> CleansingRule:
    """Parse one extended SQL-TS rule definition."""
    return _RuleParser(text).parse_rule()
