"""Fixpoint rule application — the paper's arbitrary-length-cycle
extension (§4.3: "A rule that removes cycles of arbitrary length is also
possible, but more involved").

One application of the cycle rule collapses each read flanked by two
equal-location neighbours; nested or long cycles like ``[X Y Z Y X]``
need repeated application until no row changes. This module evaluates a
rule (or rule list) to fixpoint by materializing intermediate results
into temporary tables, with a configurable iteration bound.

Fixpoint evaluation is an *eager-style* tool: it cannot be folded into
the single-pass deferred rewrites (each iteration changes the sequence
positions the next one sees), which is precisely why the paper calls the
general rule "more involved" and sticks to single-pass rules for
deferred cleansing.
"""

from __future__ import annotations

from repro.errors import RuleError
from repro.minidb.engine import Database
from repro.minidb.plan.logical import LogicalScan
from repro.minidb.result import ResultSet
from repro.sqlts.compiler import CompiledRule

__all__ = ["apply_to_fixpoint", "FixpointResult"]


class FixpointResult:
    """Outcome of a fixpoint evaluation."""

    def __init__(self, rows: list[tuple], columns: list[str],
                 iterations: int, converged: bool) -> None:
        self.result = ResultSet(columns, rows)
        self.iterations = iterations
        self.converged = converged


def apply_to_fixpoint(database: Database, rules: list[CompiledRule],
                      table_name: str, *, max_iterations: int = 32,
                      ) -> FixpointResult:
    """Apply *rules* repeatedly over *table_name* until stable.

    Each iteration applies the full rule list once (in order) to the
    previous iteration's output. Iteration stops when an application
    leaves the rows unchanged, or after *max_iterations* (``converged``
    is False then — possible for rules whose MODIFY actions oscillate).
    """
    if not rules:
        raise RuleError("fixpoint evaluation needs at least one rule")
    source = database.table(table_name)
    scratch_name = f"_fixpoint_{table_name}"
    if scratch_name in database.catalog:
        database.drop_table(scratch_name)
    scratch = database.create_table(scratch_name, source.schema)
    scratch.bulk_load(source.rows)
    database.analyze(scratch_name)
    try:
        previous = list(scratch.rows)
        iterations = 0
        converged = False
        columns = list(source.schema.names)
        while iterations < max_iterations:
            plan = LogicalScan(scratch)
            for compiled in rules:
                plan = compiled.apply(plan)
            current = database.execute(plan).rows
            current = [row[:len(columns)] for row in current]
            iterations += 1
            if current == previous:
                converged = True
                break
            scratch.replace_rows(current)
            database.analyze(scratch_name)
            previous = current
        return FixpointResult(previous, columns, iterations, converged)
    finally:
        database.drop_table(scratch_name)
