"""Object model for extended SQL-TS cleansing rules.

Terminology follows the paper:

* a **pattern** is an ordered list of references; a reference without a
  ``*`` binds one row (*singleton*), a ``*`` reference binds the set of
  rows before/after the adjacent singleton and may only appear at the
  pattern's ends;
* the **target** reference is the one named in the ACTION clause;
  all other references are **context** references (Definition 1);
* context references without a ``*`` are **position-based**: their
  pattern position implies a sequence-position correlation with the
  target (the ``spos`` conjunct of Section 5.2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import RuleValidationError
from repro.minidb.expressions import Expr

__all__ = ["PatternRef", "ActionKind", "Action", "CleansingRule"]


@dataclass(frozen=True)
class PatternRef:
    """One reference in a rule pattern.

    ``min_matches`` (set references only) is the §4.3 extension the
    paper sketches with count(): the existential condition holds only
    when at least that many rows of the set satisfy it. Written
    ``*B{3}`` in the pattern.
    """

    name: str
    is_set: bool = False
    position: int = 0  # index within the pattern
    min_matches: int = 1

    def __post_init__(self) -> None:
        object.__setattr__(self, "name", self.name.lower())
        if self.min_matches < 1:
            raise RuleValidationError(
                f"pattern reference {self.name}: min_matches must be >= 1")


class ActionKind(enum.Enum):
    DELETE = "delete"
    KEEP = "keep"
    MODIFY = "modify"


@dataclass
class Action:
    """The rule's ACTION clause.

    For MODIFY, ``assignments`` maps column names to value expressions
    (which may reference any pattern reference's columns).
    """

    kind: ActionKind
    target: str
    assignments: dict[str, Expr] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.target = self.target.lower()
        self.assignments = {name.lower(): expr
                            for name, expr in self.assignments.items()}


@dataclass
class CleansingRule:
    """A parsed, validated cleansing rule."""

    name: str
    on_table: str
    from_table: str
    cluster_key: str
    sequence_key: str
    pattern: list[PatternRef]
    condition: Expr
    action: Action
    #: Creation sequence number; rules apply in creation order (§4.4).
    created_at: int = 0

    def __post_init__(self) -> None:
        self.name = self.name.lower()
        self.on_table = self.on_table.lower()
        self.from_table = self.from_table.lower()
        self.cluster_key = self.cluster_key.lower()
        self.sequence_key = self.sequence_key.lower()
        self.validate()

    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Check the structural constraints of the extended SQL-TS grammar."""
        if not self.pattern:
            raise RuleValidationError(f"rule {self.name}: empty pattern")
        names = [ref.name for ref in self.pattern]
        if len(set(names)) != len(names):
            raise RuleValidationError(
                f"rule {self.name}: duplicate pattern reference names")
        for index, ref in enumerate(self.pattern):
            if ref.is_set and index not in (0, len(self.pattern) - 1):
                raise RuleValidationError(
                    f"rule {self.name}: set reference *{ref.name} must be "
                    "first or last in the pattern")
            if not ref.is_set and ref.min_matches != 1:
                raise RuleValidationError(
                    f"rule {self.name}: only set references may carry a "
                    "match-count qualifier")
        target = self.reference(self.action.target)
        if target is None:
            raise RuleValidationError(
                f"rule {self.name}: action target {self.action.target!r} is "
                "not a pattern reference")
        if target.is_set:
            raise RuleValidationError(
                f"rule {self.name}: actions must target a singleton "
                "reference")
        known = set(names)
        for ref in self.condition.referenced_columns():
            if ref.qualifier is not None and ref.qualifier not in known:
                raise RuleValidationError(
                    f"rule {self.name}: condition references unknown pattern "
                    f"reference {ref.qualifier!r}")

    # ------------------------------------------------------------------

    def reference(self, name: str) -> PatternRef | None:
        name = name.lower()
        for ref in self.pattern:
            if ref.name == name:
                return ref
        return None

    @property
    def target(self) -> PatternRef:
        """The target reference (Definition 1)."""
        ref = self.reference(self.action.target)
        assert ref is not None
        return ref

    @property
    def context_references(self) -> list[PatternRef]:
        """All non-target references, in pattern order (Definition 1)."""
        return [ref for ref in self.pattern if ref.name != self.action.target]

    def offset_of(self, ref: PatternRef) -> int:
        """Pattern-position offset of *ref* relative to the target.

        Negative offsets are before the target. Only meaningful for
        position-based (non-set) references.
        """
        return ref.position - self.target.position

    def columns_of(self, ref_name: str) -> set[str]:
        """Column names the condition reads from reference *ref_name*."""
        ref_name = ref_name.lower()
        columns = {
            column.name
            for column in self.condition.referenced_columns()
            if column.qualifier == ref_name}
        for expr in self.action.assignments.values():
            columns.update(
                column.name for column in expr.referenced_columns()
                if column.qualifier == ref_name)
        return columns

    def condition_atoms(self) -> list[Expr]:
        """The condition's leaf predicates (non-AND/OR subtrees)."""
        atoms: list[Expr] = []

        def visit(node: Expr) -> None:
            from repro.minidb.expressions import BinaryOp
            if isinstance(node, BinaryOp) and node.op in ("and", "or"):
                visit(node.left)
                visit(node.right)
            else:
                atoms.append(node)

        visit(self.condition)
        return atoms

    def references_in(self, expr: Expr) -> set[str]:
        """Pattern-reference names mentioned by *expr*."""
        names = {ref.name for ref in self.pattern}
        found = set()
        for column in expr.referenced_columns():
            if column.qualifier in names:
                found.add(column.qualifier)
        return found

    def describe(self) -> str:
        """Human-readable one-line summary."""
        body = ", ".join(("*" if ref.is_set else "") + ref.name.upper()
                         for ref in self.pattern)
        action = self.action.kind.value.upper()
        if self.action.kind is ActionKind.MODIFY:
            sets = ", ".join(
                f"{self.action.target.upper()}.{column}={expr.to_sql()}"
                for column, expr in self.action.assignments.items())
            action = f"MODIFY {sets}"
        else:
            action = f"{action} {self.action.target.upper()}"
        return (f"{self.name}: ({body}) WHERE {self.condition.to_sql()} "
                f"ACTION {action}")
