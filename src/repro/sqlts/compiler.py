"""Compilation of SQL-TS rules to SQL/OLAP templates (paper §4.2).

A rule compiles into:

* one window-function column per (singleton context reference, column)
  pair — a scalar aggregate over a one-row ROWS frame at the reference's
  pattern offset from the target;
* one window-function column per set (``*``) reference — an existential
  flag computed as ``max(CASE WHEN <X-only condition> THEN 1 ELSE 0 END)``
  over a RANGE frame derived from the rule's sequence-key constraints
  (e.g. ``B.rtime - A.rtime < 5 mins`` becomes
  ``RANGE BETWEEN 1 FOLLOWING AND 299 FOLLOWING`` at one-second
  timestamp resolution);
* a residual condition over the target row's columns and those computed
  columns;
* the action, rendered as a filter (DELETE/KEEP, with SQL's NULL
  semantics handled: DELETE drops only rows whose condition is TRUE) or
  as CASE projections (MODIFY, creating flag columns on the fly with a
  0 default when absent from the input).

The compiled form is exposed both as a logical-plan transformer
(:meth:`CompiledRule.apply`, the paper's Φ_C) and as a SQL text template
with an ``{input}`` placeholder (persisted in the rules table).
"""

from __future__ import annotations

import math

from repro.analysis.conjunction import find_conjoined_group
from repro.analysis.linear import normalize_comparison
from repro.errors import RuleValidationError
from repro.minidb.expressions import (
    UNBOUNDED,
    BinaryOp,
    Case,
    ColumnRef,
    Expr,
    Literal,
    SortSpec,
    WindowFrame,
    WindowFunction,
    and_all,
)
from repro.minidb.plan.logical import (
    LogicalFilter,
    LogicalNode,
    LogicalProject,
    LogicalWindow,
)
from repro.sqlts.model import ActionKind, CleansingRule, PatternRef

__all__ = ["CompiledRule", "compile_rule"]


def _strict_upper(bound: float) -> int:
    """Largest integer strictly below *bound* (integer sequence keys)."""
    ceiling = math.ceil(bound)
    return int(ceiling) - 1 if ceiling == bound else int(math.floor(bound))


def _strict_lower(bound: float) -> int:
    """Smallest integer strictly above *bound*."""
    floor = math.floor(bound)
    return int(floor) + 1 if floor == bound else int(math.ceil(bound))


def _replace_node(tree: Expr, target: Expr, replacement: Expr) -> Expr:
    """Replace one node (by identity) within an expression tree."""
    if tree is target:
        return replacement
    children = tree.children()
    if not children:
        return tree
    rebuilt = tuple(_replace_node(child, target, replacement)
                    for child in children)
    if all(new is old for new, old in zip(rebuilt, children)):
        return tree
    return tree._rebuild(rebuilt)


def _atoms_by_identity(tree: Expr) -> list[Expr]:
    atoms: list[Expr] = []

    def visit(node: Expr) -> None:
        if isinstance(node, BinaryOp) and node.op in ("and", "or"):
            visit(node.left)
            visit(node.right)
        else:
            atoms.append(node)

    visit(tree)
    return atoms


class CompiledRule:
    """The executable form of one cleansing rule (the paper's Φ_C)."""

    def __init__(self, rule: CleansingRule,
                 window_columns: list[tuple[str, WindowFunction]],
                 condition: Expr,
                 assignments: dict[str, Expr]) -> None:
        self.rule = rule
        #: (column name, window function) pairs computed before filtering.
        self.window_columns = window_columns
        #: Residual condition over input + window columns.
        self.condition = condition
        #: MODIFY assignments with references already substituted.
        self.assignments = assignments

    # ------------------------------------------------------------------

    @property
    def name(self) -> str:
        return self.rule.name

    def required_columns(self) -> set[str]:
        """Input column names this compiled rule reads."""
        needed = {self.rule.cluster_key, self.rule.sequence_key}
        for _, function in self.window_columns:
            if function.argument is not None:
                needed.update(ref.name for ref
                              in function.argument.referenced_columns())
        window_names = {name for name, _ in self.window_columns}
        for ref in self.condition.referenced_columns():
            if ref.name not in window_names:
                needed.add(ref.name)
        for expr in self.assignments.values():
            for ref in expr.referenced_columns():
                if ref.name not in window_names:
                    needed.add(ref.name)
        return needed

    # ------------------------------------------------------------------

    def apply(self, plan: LogicalNode) -> LogicalNode:
        """Φ_C as a plan transform: cleanse the rows produced by *plan*.

        The output schema is the input's columns (unqualified), plus any
        columns created by MODIFY, in input order.
        """
        input_names = [field.name for field in plan.schema]
        for name, _ in self.window_columns:
            if name in input_names:
                raise RuleValidationError(
                    f"rule {self.name}: auxiliary column {name!r} collides "
                    "with an input column")
        cleansed: LogicalNode = plan
        if self.window_columns:
            cleansed = LogicalWindow(
                cleansed,
                [(call, name) for name, call in self.window_columns])
        kind = self.rule.action.kind
        if kind is ActionKind.KEEP:
            cleansed = LogicalFilter(cleansed, self.condition)
        elif kind is ActionKind.DELETE:
            keep_predicate = Case(((self.condition, Literal(False)),),
                                  Literal(True))
            cleansed = LogicalFilter(cleansed, keep_predicate)
        items: list[tuple[Expr, str]] = []
        for name in input_names:
            if kind is ActionKind.MODIFY and name in self.assignments:
                items.append((Case(((self.condition,
                                     self.assignments[name]),),
                                   ColumnRef(name)), name))
            else:
                items.append((ColumnRef(name), name))
        if kind is ActionKind.MODIFY:
            for name, value in self.assignments.items():
                if name in input_names:
                    continue
                default = self._created_default(value)
                items.append((Case(((self.condition, value),), default),
                              name))
        return LogicalProject(cleansed, items)

    @staticmethod
    def _created_default(value: Expr) -> Literal:
        """Default for a column created on the fly by MODIFY.

        Numeric flags (the paper's ``has_case_nearby``) default to 0 so
        later rules can test them with plain equality; anything else
        defaults to NULL.
        """
        if isinstance(value, Literal) and isinstance(value.value, (int, float)) \
                and not isinstance(value.value, bool):
            return Literal(0)
        return Literal(None)

    # ------------------------------------------------------------------

    def sql_template(self, input_columns: list[str]) -> str:
        """SQL text with an ``{input}`` placeholder for the input relation.

        The generated text round-trips through the minidb parser; the
        rules table persists it (system architecture step 2).
        """
        inner_items = ["_in.*"]
        inner_items.extend(f"{function.to_sql()} AS {name}"
                           for name, function in self.window_columns)
        inner = (f"SELECT {', '.join(inner_items)} "
                 f"FROM {{input}} _in")
        kind = self.rule.action.kind
        outer_items: list[str] = []
        for name in input_columns:
            if kind is ActionKind.MODIFY and name in self.assignments:
                case = Case(((self.condition, self.assignments[name]),),
                            ColumnRef(name))
                outer_items.append(f"{case.to_sql()} AS {name}")
            else:
                outer_items.append(name)
        if kind is ActionKind.MODIFY:
            for name, value in self.assignments.items():
                if name in input_columns:
                    continue
                case = Case(((self.condition, value),),
                            self._created_default(value))
                outer_items.append(f"{case.to_sql()} AS {name}")
        sql = (f"SELECT {', '.join(outer_items)} "
               f"FROM ({inner}) _cl_{self.name}")
        if kind is ActionKind.KEEP:
            sql += f" WHERE {self.condition.to_sql()}"
        elif kind is ActionKind.DELETE:
            keep = Case(((self.condition, Literal(False)),), Literal(True))
            sql += f" WHERE {keep.to_sql()}"
        return sql

    def describe(self) -> str:
        lines = [self.rule.describe()]
        for name, function in self.window_columns:
            lines.append(f"  {name} := {function.to_sql()}")
        lines.append(f"  residual condition: {self.condition.to_sql()}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Compilation
# ----------------------------------------------------------------------


class _Compiler:
    def __init__(self, rule: CleansingRule) -> None:
        self.rule = rule
        self.partition = (ColumnRef(rule.cluster_key),)
        self.order = (SortSpec(ColumnRef(rule.sequence_key)),)
        self.window_columns: list[tuple[str, WindowFunction]] = []

    # -- helpers ---------------------------------------------------------

    def _window(self, name: str, function: str, argument: Expr | None,
                frame: WindowFrame | None) -> ColumnRef:
        call = WindowFunction(function, argument, self.partition,
                              self.order, frame)
        self.window_columns.append((name, call))
        return ColumnRef(name)

    def _error(self, message: str) -> RuleValidationError:
        return RuleValidationError(f"rule {self.rule.name}: {message}")

    # -- set references ----------------------------------------------------

    def _sequence_key_bound(self, atom: Expr, set_ref: PatternRef
                            ) -> tuple[str, float] | None:
        """Recognize an atom bounding ``X.skey - T.skey``.

        Returns ``(op, c)`` meaning ``(X.skey - T.skey) op c``, or None.
        """
        normalized = normalize_comparison(atom)
        if normalized is None:
            return None
        form, op = normalized
        skey = self.rule.sequence_key
        x_key = ColumnRef(skey, set_ref.name)
        t_key = ColumnRef(skey, self.rule.target.name)
        coeffs = form.coeffs
        if set(coeffs) != {x_key, t_key}:
            return None
        if coeffs[x_key] == 1 and coeffs[t_key] == -1:
            pass
        elif coeffs[x_key] == -1 and coeffs[t_key] == 1:
            flip = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}
            if op not in flip:
                return None
            op = flip[op]
            form = form.negate()
        else:
            return None
        if op in ("=", "!="):
            return None
        return op, -form.constant

    def _compile_set_reference(self, condition: Expr,
                               set_ref: PatternRef) -> Expr:
        """Replace the sub-condition over *set_ref* with a flag test.

        The atoms mentioning the set reference must be jointly conjoined
        (AND-reachable from their least common ancestor) because the
        existential applies to all of them at once: one row of the set
        must satisfy the whole group.
        """
        atoms = [atom for atom in _atoms_by_identity(condition)
                 if set_ref.name in self.rule.references_in(atom)]
        if not atoms:
            return condition
        if find_conjoined_group(condition, {id(a) for a in atoms}) is None:
            raise self._error(
                f"the atoms mentioning *{set_ref.name} are split across OR "
                "branches; the existential semantics requires them to form "
                "one conjunction")
        is_after = set_ref.position > self.rule.target.position
        if is_after:
            start: float | str = 1
            end: float | str = UNBOUNDED
        else:
            start = UNBOUNDED
            end = -1
        phi_parts: list[Expr] = []
        for atom in atoms:
            bound = self._sequence_key_bound(atom, set_ref)
            if bound is not None:
                op, constant = bound
                if op == "<":
                    value: float = _strict_upper(constant)
                    end = value if end == UNBOUNDED else min(end, value)
                elif op == "<=":
                    value = int(constant) if constant == int(constant) \
                        else _strict_upper(constant + 1)
                    end = value if end == UNBOUNDED else min(end, value)
                elif op == ">":
                    value = _strict_lower(constant)
                    start = value if start == UNBOUNDED else max(start, value)
                else:  # ">="
                    value = int(constant) if constant == int(constant) \
                        else _strict_lower(constant - 1)
                    start = value if start == UNBOUNDED else max(start, value)
                continue
            mentioned = self.rule.references_in(atom)
            if mentioned != {set_ref.name}:
                raise self._error(
                    f"atom {atom.to_sql()} correlates set reference "
                    f"*{set_ref.name} with other references on non-sequence "
                    "columns; only sequence-key bounds may correlate a set "
                    "reference")
            phi_parts.append(self._strip_qualifier(atom, set_ref.name))
        frame = WindowFrame("range", start, end)
        flag_name = f"_{self.rule.name}_has_{set_ref.name}"
        phi = and_all(phi_parts)
        threshold = set_ref.min_matches
        if phi is None:
            flag = self._window(flag_name, "count", None, frame)
            test: Expr = BinaryOp(">=", flag, Literal(threshold))
        elif threshold > 1:
            # The §4.3 count() extension: at least k set rows must match.
            argument = Case(((phi, Literal(1)),), Literal(0))
            flag = self._window(flag_name, "sum", argument, frame)
            test = BinaryOp(">=", flag, Literal(threshold))
        else:
            argument = Case(((phi, Literal(1)),), Literal(0))
            flag = self._window(flag_name, "max", argument, frame)
            test = BinaryOp("=", flag, Literal(1))
        # Replace the first set-reference atom with the flag test and
        # the remaining ones with TRUE: they are all conjoined, so the
        # single flag (computed over their conjunction) carries the whole
        # group's existential semantics.
        rewritten = _replace_node(condition, atoms[0], test)
        for atom in atoms[1:]:
            rewritten = _replace_node(rewritten, atom, Literal(True))
        return rewritten

    # -- singleton references ----------------------------------------------

    @staticmethod
    def _strip_qualifier(expr: Expr, qualifier: str) -> Expr:
        mapping = {
            ref: ColumnRef(ref.name)
            for ref in expr.referenced_columns()
            if ref.qualifier == qualifier}
        return expr.substitute(mapping)

    def _singleton_substitution(self) -> dict[Expr, Expr]:
        """Window columns + substitutions for singleton references."""
        mapping: dict[Expr, Expr] = {}
        target = self.rule.target
        for ref in self.rule.pattern:
            if ref.is_set:
                continue
            columns = self.rule.columns_of(ref.name)
            if ref.name == target.name:
                for column in columns:
                    mapping[ColumnRef(column, ref.name)] = ColumnRef(column)
                continue
            offset = self.rule.offset_of(ref)
            frame = WindowFrame("rows", offset, offset)
            for column in sorted(columns):
                aux_name = f"_{self.rule.name}_{ref.name}_{column}"
                aux_ref = self._window(aux_name, "max", ColumnRef(column),
                                       frame)
                mapping[ColumnRef(column, ref.name)] = aux_ref
        return mapping

    # -- main -------------------------------------------------------------

    def compile(self) -> CompiledRule:
        condition = self.rule.condition
        for ref in self.rule.pattern:
            if ref.is_set:
                condition = self._compile_set_reference(condition, ref)
        mapping = self._singleton_substitution()
        condition = condition.substitute(mapping)
        assignments: dict[str, Expr] = {}
        for column, value in self.rule.action.assignments.items():
            for value_ref in value.referenced_columns():
                referenced = self.rule.reference(value_ref.qualifier or "")
                if referenced is not None and referenced.is_set:
                    raise self._error(
                        "MODIFY values may not read from set references")
            assignments[column] = value.substitute(mapping)
        return CompiledRule(self.rule, self.window_columns, condition,
                            assignments)


def compile_rule(rule: CleansingRule) -> CompiledRule:
    """Compile *rule* into its SQL/OLAP form."""
    return _Compiler(rule).compile()
