"""Shared expression-analysis utilities (linear forms, conjunctions)."""

from repro.analysis.conjunction import atoms_of, find_conjoined_group
from repro.analysis.linear import LinearForm, linearize, normalize_comparison

__all__ = ["LinearForm", "linearize", "normalize_comparison",
           "atoms_of", "find_conjoined_group"]
