"""Linear forms over column references.

Both the rule compiler and the rewrite engine need to recognize
predicates of the shape ``B.rtime - A.rtime < 5 mins`` — i.e. *linear
comparisons* over column references — to derive window frames and to run
transitivity analysis over difference constraints. This module
normalizes scalar expressions into::

    sum(coefficient_i * column_i) + constant

and comparisons into ``LinearForm <op> 0``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.minidb.expressions import BinaryOp, ColumnRef, Expr, Literal, UnaryOp

__all__ = ["LinearForm", "linearize", "normalize_comparison"]


@dataclass
class LinearForm:
    """``sum(coeffs[ref] * ref) + constant`` with exact rational-ish math.

    Coefficients are Python ints/floats; column references are compared
    structurally (qualifier + name).
    """

    coeffs: dict[ColumnRef, float] = field(default_factory=dict)
    constant: float = 0.0

    def add(self, other: "LinearForm", sign: float = 1.0) -> "LinearForm":
        merged = dict(self.coeffs)
        for ref, coeff in other.coeffs.items():
            merged[ref] = merged.get(ref, 0.0) + sign * coeff
        result = LinearForm(
            {ref: coeff for ref, coeff in merged.items() if coeff != 0},
            self.constant + sign * other.constant)
        return result

    def scale(self, factor: float) -> "LinearForm":
        return LinearForm(
            {ref: coeff * factor for ref, coeff in self.coeffs.items()},
            self.constant * factor)

    def negate(self) -> "LinearForm":
        return self.scale(-1.0)

    @property
    def is_constant(self) -> bool:
        return not self.coeffs

    def references(self) -> set[ColumnRef]:
        return set(self.coeffs)

    def single_reference(self) -> ColumnRef | None:
        """The sole referenced column if the form is ``1*ref + c``."""
        if len(self.coeffs) != 1:
            return None
        ref, coeff = next(iter(self.coeffs.items()))
        return ref if coeff == 1 else None


def linearize(expr: Expr) -> LinearForm | None:
    """Normalize *expr* to a :class:`LinearForm`, or None if non-linear."""
    if isinstance(expr, Literal):
        if isinstance(expr.value, (int, float)) \
                and not isinstance(expr.value, bool):
            return LinearForm(constant=expr.value)
        return None
    if isinstance(expr, ColumnRef):
        return LinearForm(coeffs={expr: 1.0})
    if isinstance(expr, UnaryOp) and expr.op == "-":
        inner = linearize(expr.operand)
        return inner.negate() if inner is not None else None
    if isinstance(expr, BinaryOp):
        if expr.op == "+":
            left = linearize(expr.left)
            right = linearize(expr.right)
            if left is None or right is None:
                return None
            return left.add(right)
        if expr.op == "-":
            left = linearize(expr.left)
            right = linearize(expr.right)
            if left is None or right is None:
                return None
            return left.add(right, sign=-1.0)
        if expr.op == "*":
            left = linearize(expr.left)
            right = linearize(expr.right)
            if left is None or right is None:
                return None
            if left.is_constant:
                return right.scale(left.constant)
            if right.is_constant:
                return left.scale(right.constant)
            return None
        if expr.op == "/":
            left = linearize(expr.left)
            right = linearize(expr.right)
            if left is None or right is None or not right.is_constant \
                    or right.constant == 0:
                return None
            return left.scale(1.0 / right.constant)
    return None


_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "!=": "!="}


def normalize_comparison(atom: Expr) -> tuple[LinearForm, str] | None:
    """Normalize a comparison atom to ``form <op> 0``.

    Returns ``(form, op)`` such that the atom is equivalent to
    ``form op 0``, or None when the atom is not a linear comparison.
    """
    if not isinstance(atom, BinaryOp) \
            or atom.op not in ("<", "<=", ">", ">=", "=", "!="):
        return None
    left = linearize(atom.left)
    right = linearize(atom.right)
    if left is None or right is None:
        return None
    return left.add(right, sign=-1.0), atom.op
