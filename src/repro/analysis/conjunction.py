"""Conjunction-structure analysis of Boolean expression trees.

Both the rule compiler (set-reference flags) and the rewrite engine
(correlation-conjunct extraction) need to know whether a set of atoms
acts as one conjunction inside a larger condition: their lowest common
ancestor must reach each of them through AND nodes only. The group may
sit inside one OR branch — rows can only influence the condition through
that branch — but must not be split across OR branches.
"""

from __future__ import annotations

from repro.minidb.expressions import BinaryOp, Expr

__all__ = ["atoms_of", "find_conjoined_group"]


def atoms_of(tree: Expr) -> list[Expr]:
    """The leaf predicates of *tree* (subtrees that are not AND/OR)."""
    out: list[Expr] = []

    def visit(node: Expr) -> None:
        if isinstance(node, BinaryOp) and node.op in ("and", "or"):
            visit(node.left)
            visit(node.right)
        else:
            out.append(node)

    visit(tree)
    return out


def find_conjoined_group(condition: Expr, atom_ids: set[int]) -> Expr | None:
    """The LCA of *atom_ids* if every atom is AND-reachable from it.

    Atoms are identified by ``id()`` so duplicated structure inside the
    condition cannot be conflated. Returns the LCA node, or None when
    any atom sits below an OR within the LCA's subtree.
    """

    def count(node: Expr) -> int:
        if id(node) in atom_ids:
            return 1
        if isinstance(node, BinaryOp) and node.op in ("and", "or"):
            return count(node.left) + count(node.right)
        return 0

    total = count(condition)
    if total == 0:
        return None
    node: Expr = condition
    while isinstance(node, BinaryOp) and node.op in ("and", "or") \
            and id(node) not in atom_ids:
        if count(node.left) == total:
            node = node.left
        elif count(node.right) == total:
            node = node.right
        else:
            break

    def and_reachable(candidate: Expr) -> bool:
        if id(candidate) in atom_ids:
            return True
        if isinstance(candidate, BinaryOp):
            if candidate.op == "and":
                return and_reachable(candidate.left) \
                    and and_reachable(candidate.right)
            if candidate.op == "or":
                return count(candidate) == 0
        return True

    if not and_reachable(node):
        return None
    return node
