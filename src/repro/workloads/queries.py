"""The benchmark queries of Figure 6.

``q1`` performs "dwell" analysis — average time between consecutive
locations — using SQL/OLAP to pair adjacent reads of each EPC (we add
the ``PARTITION BY epc ORDER BY rtime`` the paper's listing elides but
clearly intends). ``q2`` is a star-style analytical query joining the
reads table with four dimensions. ``q2'`` swaps the correlated site
predicate for an EPC-uncorrelated business-step-type predicate (§6.2's
extreme test).
"""

from __future__ import annotations

__all__ = ["q1_sql", "q2_sql", "q2_prime_sql"]


def q1_sql(t1: int) -> str:
    """Dwell analysis over reads at or before *t1* (epoch seconds)."""
    return f"""
with v1 as (
  select epc, biz_loc as current_loc, rtime,
         max(rtime) over (partition by epc order by rtime asc
                          rows between 1 preceding and 1 preceding)
             as prev_time,
         max(biz_loc) over (partition by epc order by rtime asc
                            rows between 1 preceding and 1 preceding)
             as prev_loc
  from caser where rtime <= {t1})
select l1.loc_desc as from_loc, l2.loc_desc as to_loc,
       avg(rtime - prev_time) as avg_dwell
from v1, locs l1, locs l2
where v1.prev_loc = l1.gln and v1.current_loc = l2.gln
group by l1.loc_desc, l2.loc_desc
"""


def q2_sql(t2: int, site: str = "distribution center 2") -> str:
    """Site analysis: reader utilization and steps per manufacturer."""
    return f"""
select p.manufacturer, count(distinct s.type) as step_types,
       count(distinct c.reader) as readers_used
from caser c, steps s, locs l, epc_info i, product p
where c.biz_step = s.biz_step and c.biz_loc = l.gln
  and c.epc = i.epc and i.product = p.product
  and c.rtime >= {t2}
  and l.site = '{site}'
group by p.manufacturer
"""


def q2_prime_sql(t2: int, step_type: str = "type_03") -> str:
    """q2 with the site predicate swapped for an EPC-uncorrelated one."""
    return f"""
select p.manufacturer, count(distinct l.site) as sites_used,
       count(distinct c.reader) as readers_used
from caser c, steps s, locs l, epc_info i, product p
where c.biz_step = s.biz_step and c.biz_loc = l.gln
  and c.epc = i.epc and i.product = p.product
  and c.rtime >= {t2}
  and s.type = '{step_type}'
group by p.manufacturer
"""
