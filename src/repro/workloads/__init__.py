"""The paper's benchmark workload: queries q1/q2/q2', the five standard
cleansing rules, selectivity-targeted timestamp pickers, and a
Workbench bundling a generated database with a rule registry and the
rewrite engine.
"""

from repro.workloads.queries import q1_sql, q2_sql, q2_prime_sql
from repro.workloads.rules import STANDARD_RULE_ORDER, make_registry, rule_texts
from repro.workloads.selectivity import (
    timestamp_for_fraction_above,
    timestamp_for_fraction_below,
)
from repro.workloads.workbench import Workbench

__all__ = [
    "q1_sql",
    "q2_sql",
    "q2_prime_sql",
    "STANDARD_RULE_ORDER",
    "make_registry",
    "rule_texts",
    "timestamp_for_fraction_below",
    "timestamp_for_fraction_above",
    "Workbench",
]
