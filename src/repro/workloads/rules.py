"""The five standard cleansing rules of §4.3, parameterized with the
generated dataset's constants (readerX, the replacing-rule locations,
and the pallet/case read gap).

The missing rule is expressed, as in the paper, as two sub-rules r1/r2
whose input is the derived ``case_with_pallet`` view: the union of case
reads (``is_pallet=0``) and "expected" case reads copied from the
pallet's reads through the parent table (``is_pallet=1``).
"""

from __future__ import annotations

from repro.datagen.generator import GeneratedData
from repro.minidb.engine import Database
from repro.sqlts.registry import RuleRegistry

__all__ = ["STANDARD_RULE_ORDER", "rule_texts", "case_with_pallet_view",
           "make_registry"]

#: The order rules are added in the experiments (Table 1).
STANDARD_RULE_ORDER = ("reader", "duplicate", "replacing", "cycle",
                       "missing")

#: Name of the derived rule-input view for the missing rule.
MISSING_VIEW = "case_with_pallet"


def case_with_pallet_view() -> str:
    """SQL for the missing rule's derived input (§6.3)."""
    return """
select epc, rtime, reader, biz_loc, biz_step, 0 as is_pallet
from caser
union all
select parent.child_epc as epc, palletr.rtime, palletr.reader,
       palletr.biz_loc, palletr.biz_step, 1 as is_pallet
from palletr, parent
where palletr.epc = parent.parent_epc
"""


def rule_texts(data: GeneratedData) -> dict[str, list[str]]:
    """Rule name -> extended SQL-TS definitions (missing has two)."""
    config = data.config
    t1 = config.t1_duplicate
    t2 = config.t2_reader
    t3 = config.t3_replacing
    gap = config.pallet_case_gap
    return {
        "reader": [f"""
DEFINE reader_rule ON caser CLUSTER BY epc SEQUENCE BY rtime
AS (A, *B)
WHERE B.reader = '{data.reader_x}' AND B.rtime - A.rtime < {t2} seconds
ACTION DELETE A
"""],
        "duplicate": [f"""
DEFINE duplicate_rule ON caser CLUSTER BY epc SEQUENCE BY rtime
AS (A, B)
WHERE A.biz_loc = B.biz_loc AND B.rtime - A.rtime < {t1} seconds
ACTION DELETE B
"""],
        "replacing": [f"""
DEFINE replacing_rule ON caser CLUSTER BY epc SEQUENCE BY rtime
AS (A, B)
WHERE A.biz_loc = '{data.loc2}' AND B.biz_loc = '{data.loc_a}'
  AND B.rtime - A.rtime < {t3} seconds
ACTION MODIFY A.biz_loc = '{data.loc1}'
"""],
        "cycle": ["""
DEFINE cycle_rule ON caser CLUSTER BY epc SEQUENCE BY rtime
AS (A, B, C)
WHERE A.biz_loc = C.biz_loc AND A.biz_loc != B.biz_loc
ACTION DELETE B
"""],
        "missing": [f"""
DEFINE missing_rule_r1 ON caser FROM {MISSING_VIEW}
CLUSTER BY epc SEQUENCE BY rtime
AS (X, A, Y)
WHERE A.is_pallet = 1 AND
      ((X.is_pallet = 0 AND A.biz_loc = X.biz_loc
        AND A.rtime - X.rtime < {gap} seconds)
       OR
       (Y.is_pallet = 0 AND A.biz_loc = Y.biz_loc
        AND Y.rtime - A.rtime < {gap} seconds))
ACTION MODIFY A.has_case_nearby = 1
""", """
DEFINE missing_rule_r2 ON caser CLUSTER BY epc SEQUENCE BY rtime
AS (A, *B)
WHERE A.is_pallet = 0 OR
      (A.has_case_nearby = 0 AND B.has_case_nearby = 1)
ACTION KEEP A
"""],
    }


def make_registry(database: Database | None, data: GeneratedData,
                  rule_names: list[str] | tuple[str, ...] = STANDARD_RULE_ORDER,
                  ) -> RuleRegistry:
    """A registry with the named rules defined in the given order."""
    registry = RuleRegistry(database)
    registry.define_view(MISSING_VIEW, case_with_pallet_view())
    texts = rule_texts(data)
    for name in rule_names:
        for rule_text in texts[name]:
            registry.define(rule_text)
    return registry
