"""Workbench: one generated database wired to rules and the rewrite
engine — the unit every experiment and example builds on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datagen.config import GeneratorConfig
from repro.datagen.generator import GeneratedData, RFIDGen
from repro.datagen.loader import load_into_database
from repro.minidb.engine import Database
from repro.rewrite.engine import DeferredCleansingEngine
from repro.sqlts.registry import RuleRegistry
from repro.workloads.queries import q1_sql, q2_sql, q2_prime_sql
from repro.workloads.rules import STANDARD_RULE_ORDER, make_registry
from repro.workloads.selectivity import (
    timestamp_for_fraction_above,
    timestamp_for_fraction_below,
)

__all__ = ["Workbench"]


@dataclass
class Workbench:
    """A generated RFID database plus rules and rewrite engine."""

    config: GeneratorConfig
    data: GeneratedData
    database: Database
    registry: RuleRegistry
    engine: DeferredCleansingEngine

    @classmethod
    def create(cls, config: GeneratorConfig | None = None,
               rule_names: tuple[str, ...] = STANDARD_RULE_ORDER,
               ) -> "Workbench":
        """Generate data, load it, and define the named rules."""
        config = config or GeneratorConfig()
        data = RFIDGen(config).generate()
        database = load_into_database(data)
        registry = make_registry(database, data, rule_names)
        engine = DeferredCleansingEngine(database, registry)
        return cls(config=config, data=data, database=database,
                   registry=registry, engine=engine)

    def with_rules(self, rule_names: tuple[str, ...]) -> "Workbench":
        """The same database with a different rule set (cheap: data and
        indexes are shared; only the registry is rebuilt).

        The registry is kept in memory only, so the shared database's
        persisted ``_cleansing_rules`` table is not touched.
        """
        registry = make_registry(None, self.data, rule_names)
        engine = DeferredCleansingEngine(self.database, registry)
        return Workbench(config=self.config, data=self.data,
                         database=self.database, registry=registry,
                         engine=engine)

    # -- query builders ---------------------------------------------------

    def case_rtimes(self) -> list[int]:
        return [row[1] for row in self.data.case_reads]

    def q1(self, selectivity: float) -> str:
        t1 = timestamp_for_fraction_below(self.case_rtimes(), selectivity)
        return q1_sql(t1)

    def default_site(self) -> str:
        """The paper's 'distribution center 2' when it exists, else the
        last configured DC (small test topologies have fewer than 3)."""
        ordinal = min(2, self.config.distribution_centers - 1)
        return f"distribution center {ordinal}"

    def q2(self, selectivity: float, site: str | None = None) -> str:
        t2 = timestamp_for_fraction_above(self.case_rtimes(), selectivity)
        return q2_sql(t2, site or self.default_site())

    def q2_prime(self, selectivity: float,
                 step_type: str = "type_03") -> str:
        t2 = timestamp_for_fraction_above(self.case_rtimes(), selectivity)
        return q2_prime_sql(t2, step_type)
