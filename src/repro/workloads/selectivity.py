"""Timestamp pickers hitting target rtime-predicate selectivities.

The paper varies the selectivity of the ``rtime`` predicate in q1/q2
from 1% to 40% "by adjusting T1 and T2 accordingly"; these helpers
compute the timestamps from the generated rtime distribution.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import DataGenError

__all__ = ["timestamp_for_fraction_below", "timestamp_for_fraction_above"]


def _sorted_times(rtimes: Sequence[int]) -> list[int]:
    if not rtimes:
        raise DataGenError("cannot pick a timestamp from an empty dataset")
    return sorted(rtimes)


def timestamp_for_fraction_below(rtimes: Sequence[int],
                                 fraction: float) -> int:
    """T such that ``rtime <= T`` selects ~``fraction`` of the reads (q1)."""
    if not 0.0 < fraction <= 1.0:
        raise DataGenError(f"fraction {fraction} out of (0, 1]")
    ordered = _sorted_times(rtimes)
    index = min(len(ordered) - 1, max(0, round(fraction * len(ordered)) - 1))
    return ordered[index]


def timestamp_for_fraction_above(rtimes: Sequence[int],
                                 fraction: float) -> int:
    """T such that ``rtime >= T`` selects ~``fraction`` of the reads (q2)."""
    if not 0.0 < fraction <= 1.0:
        raise DataGenError(f"fraction {fraction} out of (0, 1]")
    ordered = _sorted_times(rtimes)
    index = max(0, len(ordered) - max(1, round(fraction * len(ordered))))
    return ordered[index]
