"""Registry of every ``REPRO_*`` environment knob the library reads.

Knobs are plain environment variables scattered across subsystems
(vectorization, codegen, storage, the shard pool, the server, the bench
harness). A typo — ``REPRO_WORKER=2`` instead of ``REPRO_WORKERS=2`` —
used to silently configure nothing; :func:`validate_environment` makes
it fail loudly instead: any ``REPRO_``-prefixed variable not in
:data:`KNOWN_KNOBS` triggers a one-shot :class:`UnknownKnobWarning`.

The check runs automatically on the first ``Database`` construction and
at server startup. Tests promote the warning to an error via pytest's
``filterwarnings``, so a typo'd knob in CI or a test environment is a
hard failure, not a silently-default run.
"""

from __future__ import annotations

import os
import warnings

__all__ = ["KNOWN_KNOBS", "UnknownKnobWarning", "validate_environment"]


class UnknownKnobWarning(UserWarning):
    """An environment variable looks like a repro knob but is not one."""


#: Every recognised knob, with a one-line summary (kept in sync with the
#: README's configuration table; the README test-ability of this dict is
#: why it is data, not a comment).
KNOWN_KNOBS: dict[str, str] = {
    "REPRO_SCALE": "experiments CLI dataset scale factor",
    "REPRO_BATCH_SIZE": "vectorized batch size (0 = tuple-at-a-time)",
    "REPRO_VECTOR_FALLBACK": "count batch-kernel scalar fallbacks",
    "REPRO_ENCODE": "encoded columnar execution (default on)",
    "REPRO_CODEGEN": "enable fused-kernel query compilation",
    "REPRO_CODEGEN_DUMP": "directory to dump generated kernel source",
    "REPRO_WORKERS": "shard-pool worker count (0 disables)",
    "REPRO_PARALLEL": "deprecated alias for REPRO_WORKERS",
    "REPRO_STORAGE": "default storage mode: memory or disk",
    "REPRO_BUFFER_PAGES": "buffer-pool capacity in pages",
    "REPRO_PAGE_SIZE": "on-disk page size in bytes",
    "REPRO_WAL_LIMIT": "WAL bytes before an auto-checkpoint",
    "REPRO_GROUP_COMMIT": "WAL group-commit window (0/off disables)",
    "REPRO_READAHEAD": "buffer-pool readahead depth in pages",
    "REPRO_ZONE_PRUNE": "zone-map scan pruning (default on)",
    "REPRO_STORAGE_CRASH": "crash-injection fault point name",
    "REPRO_FUZZ_INJECT_BUG": "fuzz-oracle self-test fault name",
    "REPRO_BENCH_SCALE": "benchmark dataset scale factor",
    "REPRO_BENCH_SMOKE": "shrink benchmarks to CI smoke size",
    "REPRO_SERVE_WORKERS": "server executor workers (0 = threads only)",
    "REPRO_SERVE_INFLIGHT": "server max in-flight queries before shed",
    "REPRO_SERVE_SESSION_DEPTH": "per-session outstanding-request limit",
}

#: One-shot latch: the environment is validated once per process (knob
#: sets do not change mid-run; repeated Database construction must not
#: spam warnings).
_validated = False


def validate_environment(*, force: bool = False) -> list[str]:
    """Warn once about unrecognised ``REPRO_*`` environment variables.

    Returns the (sorted) list of unknown names found, whether or not
    the warning fired — callers that want a hard error can raise on a
    non-empty return. *force* re-runs the scan even if it already ran
    (tests use this; production callers never need it).
    """
    global _validated
    unknown = sorted(
        name for name in os.environ
        if name.startswith("REPRO_") and name not in KNOWN_KNOBS)
    if _validated and not force:
        return unknown
    _validated = True
    if unknown:
        suggestions = []
        for name in unknown:
            closest = _closest_knob(name)
            hint = f" (did you mean {closest}?)" if closest else ""
            suggestions.append(f"{name}{hint}")
        warnings.warn(
            "unknown REPRO_* environment knob(s): "
            + ", ".join(suggestions)
            + " — see repro.knobs.KNOWN_KNOBS for the recognised set",
            UnknownKnobWarning, stacklevel=2)
    return unknown


def _closest_knob(name: str) -> str | None:
    """The known knob most similar to *name*, if any is close enough."""
    import difflib

    matches = difflib.get_close_matches(name, KNOWN_KNOBS, n=1,
                                        cutoff=0.8)
    return matches[0] if matches else None
