"""Figure 7 (a) and (d): q1 and q2 elapsed time vs rtime selectivity.

Setup follows §6.2: only the reader rule is enabled, 10% anomalies, and
the selectivity of the rtime predicate sweeps 1%..40%. For each point
the four variants q / q_e / q_j / q_n are measured.

Expected shape: q_e and q_j grow with selectivity and stay far below
q_n; q1_e beats q1_j (order sharing makes cleansing almost free on q1's
plan), while for q2 join-back wins at higher selectivities because the
site predicate correlates with EPC and prunes whole sequences.
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentSettings,
    QueryTimings,
    print_header,
    run_variants,
    workbench_for,
)

__all__ = ["run", "main"]

SELECTIVITIES = (0.01, 0.05, 0.10, 0.20, 0.40)


def run(settings: ExperimentSettings | None = None,
        selectivities=SELECTIVITIES,
        queries=("q1", "q2")) -> dict[str, list[QueryTimings]]:
    settings = settings or ExperimentSettings()
    bench = workbench_for(settings, rule_names=("reader",))
    results: dict[str, list[QueryTimings]] = {}
    for query_name in queries:
        series = []
        for selectivity in selectivities:
            sql = getattr(bench, query_name)(selectivity)
            series.append(run_variants(bench, sql,
                                       label=f"{int(selectivity*100)}%"))
        results[query_name] = series
    return results


def main() -> None:
    results = run()
    for query_name, series in results.items():
        part = "(a)" if query_name == "q1" else "(d)"
        print_header(f"Figure 7{part}: {query_name} vs selectivity "
                     "(reader rule, db-10)")
        for point in series:
            print(point.row() + f"   chosen={point.chosen}")


if __name__ == "__main__":
    main()
