"""Shared experiment infrastructure.

The paper compares, for each benchmark query q:

* ``q``    — the query run directly on dirty data (wrong answers;
  baseline only);
* ``q_e``  — the expanded rewrite;
* ``q_j``  — the join-back rewrite;
* ``q_n``  — the naive rewrite (cleanse everything first).

:func:`run_variants` measures all four on a workbench and also captures
work metrics (rows sorted, sort passes) that explain the shapes.
Workbenches are cached per (scale, anomaly%, rule set) within the
process, mirroring the paper's four pre-loaded databases db-10..db-40.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

from repro.datagen import GeneratorConfig
from repro.errors import RewriteError
from repro.workloads import STANDARD_RULE_ORDER, Workbench

__all__ = ["ExperimentSettings", "QueryTimings", "workbench_for",
           "run_variants", "VARIANTS"]

VARIANTS = ("q", "q_e", "q_j", "q_n")


@dataclass(frozen=True)
class ExperimentSettings:
    """Scale knobs; the default keeps a full sweep to a few minutes.

    The paper uses s ~ 6,700 (10M case reads) on DB2; the pure-Python
    engine is roughly three orders of magnitude slower per row, so the
    default scale keeps the same *fractions* (selectivity, anomaly %)
    over proportionally fewer rows. Override with REPRO_SCALE.
    """

    scale: int = int(os.environ.get("REPRO_SCALE", "24"))
    anomaly_percent: float = 10.0
    seed: int = 20060912

    def config(self) -> GeneratorConfig:
        return GeneratorConfig(scale=self.scale,
                               anomaly_percent=self.anomaly_percent,
                               seed=self.seed)


@dataclass
class QueryTimings:
    """One experiment point: elapsed seconds and work metrics."""

    label: str
    elapsed: dict[str, float] = field(default_factory=dict)
    rows_sorted: dict[str, int] = field(default_factory=dict)
    row_counts: dict[str, int] = field(default_factory=dict)
    chosen: str | None = None

    def row(self, variants=VARIANTS) -> str:
        cells = []
        for variant in variants:
            value = self.elapsed.get(variant)
            cells.append("   n/a " if value is None else f"{value:7.3f}")
        return f"{self.label:<18}" + "  ".join(cells)


_WORKBENCHES: dict[tuple, Workbench] = {}


def workbench_for(settings: ExperimentSettings,
                  rule_names: tuple[str, ...] = STANDARD_RULE_ORDER,
                  ) -> Workbench:
    """Cached workbench for the given settings and rule set.

    Setting ``REPRO_WORKERS`` (or the deprecated ``REPRO_PARALLEL``
    alias) to a worker count ≥ 2 lets the planner shard large segments
    across the persistent pool for every experiment run in this
    process; unset or ``0`` keeps the serial executor.
    """
    from repro.minidb.parallel import configured_worker_count

    base_key = (settings.scale, settings.anomaly_percent, settings.seed)
    base = _WORKBENCHES.get(base_key)
    if base is None:
        base = Workbench.create(settings.config(), rule_names)
        if configured_worker_count() >= 2:
            base.database.options.parallel_windows = True
        _WORKBENCHES[base_key] = base
        _WORKBENCHES[base_key + (tuple(rule_names),)] = base
        return base
    rules_key = base_key + (tuple(rule_names),)
    bench = _WORKBENCHES.get(rules_key)
    if bench is None:
        bench = base.with_rules(rule_names)
        _WORKBENCHES[rules_key] = bench
    return bench


def _timed(callable_) -> tuple[float, object]:
    start = time.perf_counter()
    result = callable_()
    return time.perf_counter() - start, result


def run_variants(bench: Workbench, sql: str, label: str,
                 variants=VARIANTS) -> QueryTimings:
    """Measure the requested variants of *sql* on *bench*."""
    timings = QueryTimings(label=label)
    strategy_of = {"q_e": "expanded", "q_j": "joinback", "q_n": "naive"}
    for variant in variants:
        if variant == "q":
            elapsed, result = _timed(lambda: bench.database.execute(sql))
            timings.elapsed[variant] = elapsed
            timings.row_counts[variant] = len(result)
            continue
        strategy = strategy_of[variant]
        try:
            def run():
                return bench.engine.execute_with_metrics(
                    sql, strategies={strategy})
            elapsed, (result, metrics, _) = _timed(run)
        except RewriteError:
            continue  # infeasible (e.g. expanded with the cycle rule)
        timings.elapsed[variant] = elapsed
        timings.rows_sorted[variant] = metrics.rows_sorted
        timings.row_counts[variant] = len(result)
    decision = bench.engine.rewrite(sql)
    timings.chosen = decision.chosen.label
    return timings


def print_header(title: str, variants=VARIANTS) -> None:
    print(f"\n=== {title} ===")
    print(f"{'point':<18}" + "  ".join(f"{v:>7}" for v in variants)
          + "   (seconds)")
