"""Table 1: expanded conditions computed for q1 and q2 per rule.

Prints, for each of the five standard rules and each benchmark query,
the derived context condition (or ``{}`` when the expanded rewrite is
infeasible for that rule), exactly the structure of the paper's Table 1.

Known paper discrepancies (documented in EXPERIMENTS.md): the paper's
Table 1 lists ``rtime<=T1+5 min`` for the reader rule although §6.1 sets
t2 = 10 minutes, and ``rtime>=T2+10min`` for the duplicate rule although
the derivation with t1 = 5 minutes yields ``rtime > T2 - 5 min``; we
print the conditions our settings actually imply.
"""

from __future__ import annotations

from repro.minidb.sqlparse import parse_expression
from repro.rewrite.expanded import analyze_rule
from repro.workloads import STANDARD_RULE_ORDER, Workbench

__all__ = ["table1_conditions", "main"]


def table1_conditions(bench: Workbench, t1: int, t2: int,
                      ) -> dict[str, dict[str, str]]:
    """rule name -> {"q1": condition or "{}", "q2": ...}."""
    reads_columns = set(bench.database.table("caser").schema.names)
    queries = {
        "q1": [parse_expression(f"rtime <= {t1}")],
        "q2": [parse_expression(f"rtime >= {t2}")],
    }
    out: dict[str, dict[str, str]] = {}
    grouped: dict[str, list] = {}
    for compiled in bench.registry.rules_for("caser"):
        base = compiled.name.split("_rule")[0]
        grouped.setdefault(base, []).append(compiled.rule)
    for name in STANDARD_RULE_ORDER:
        rules = grouped.get(name.split("_")[0], [])
        out[name] = {}
        for query_name, conjuncts in queries.items():
            rendered: list[str] = []
            feasible = True
            for rule in rules:
                analysis = analyze_rule(rule, conjuncts, reads_columns)
                if not analysis.feasible:
                    feasible = False
                    break
                for derived in analysis.context_conditions.values():
                    rendered.extend(c.to_sql() for c in derived)
            if not feasible:
                out[name][query_name] = "{}"
            else:
                unique = sorted(set(rendered))
                out[name][query_name] = " || ".join(unique) if unique \
                    else "(no context data needed)"
    return out


def main(bench: Workbench | None = None) -> dict[str, dict[str, str]]:
    from repro.experiments.common import ExperimentSettings, workbench_for

    bench = bench or workbench_for(ExperimentSettings())
    rtimes = bench.case_rtimes()
    from repro.workloads import (
        timestamp_for_fraction_above,
        timestamp_for_fraction_below,
    )
    t1 = timestamp_for_fraction_below(rtimes, 0.10)
    t2 = timestamp_for_fraction_above(rtimes, 0.10)
    table = table1_conditions(bench, t1, t2)
    print("\n=== Table 1: expanded conditions (T1/T2 at 10% selectivity) ===")
    print(f"{'rule':<12}| q1 (rtime <= T1)")
    print(f"{'':<12}| q2 (rtime >= T2)")
    print("-" * 72)
    for rule_name, conditions in table.items():
        q1_text = conditions["q1"].replace(str(t1), "T1")
        q2_text = conditions["q2"].replace(str(t2), "T2")
        for offset in (300, 600, 1200):
            q1_text = q1_text.replace(str(t1 + offset), f"T1+{offset}s")
            q2_text = q2_text.replace(str(t2 - offset), f"T2-{offset}s")
        print(f"{rule_name:<12}| {q1_text}")
        print(f"{'':<12}| {q2_text}")
        print("-" * 72)
    return table


if __name__ == "__main__":
    main()
