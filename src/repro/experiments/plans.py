"""Figure 7 (b), (c), (e), (f), (g): the execution plans the paper
analyzes.

Prints minidb EXPLAIN output for:

* q1 on dirty data — index scan on rtime, one sort for the OLAP windows;
* q1_e — the cleansing rule's window shares the query's sort
  ("presorted" on the upper Window operator);
* q2 on dirty data — caseR joined with locs first;
* q2_e — cleansing sits directly above the caseR access, before the
  locs join, and needs its own sort;
* q2_j — the sequence list from caseR ⋈ locs, joined back via epc.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentSettings, workbench_for

__all__ = ["collect_plans", "main"]


def collect_plans(settings: ExperimentSettings | None = None,
                  selectivity: float = 0.10) -> dict[str, str]:
    settings = settings or ExperimentSettings()
    bench = workbench_for(settings, rule_names=("reader",))
    q1 = bench.q1(selectivity)
    q2 = bench.q2(selectivity)
    plans = {
        "q1 (dirty, fig 7b)": bench.database.explain(q1).text,
        "q1_e (fig 7c)": bench.engine.rewrite(
            q1, strategies={"expanded"}).physical.explain(),
        "q2 (dirty, fig 7e)": bench.database.explain(q2).text,
        "q2_e (fig 7f)": bench.engine.rewrite(
            q2, strategies={"expanded"}).physical.explain(),
        "q2_j (fig 7g)": bench.engine.rewrite(
            q2, strategies={"joinback"}).physical.explain(),
    }
    return plans


def main() -> None:
    for label, text in collect_plans().items():
        print(f"\n=== {label} ===")
        print(text)


if __name__ == "__main__":
    main()
