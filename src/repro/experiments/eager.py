"""Eager vs deferred cleansing (the §6.1 remark).

The paper does not plot eager cleansing but notes "the cost of eager
cleansing should be comparable to that of q, since the anomaly
percentage is typically small" — i.e. querying a pre-cleansed copy costs
about what the dirty query costs, with the cleansing paid once up front
(and once per rule change, which is the whole argument for deferring).

This experiment measures, on db-10 with the first three rules:

* the one-time cost of materializing the cleansed copy;
* the per-query cost on that copy;
* the per-query cost of the best deferred rewrite;

and reports the break-even query count: how many queries an application
must run *unchanged* before eager materialization pays off.
"""

from __future__ import annotations

import time

from repro.experiments.common import ExperimentSettings, workbench_for
from repro.rewrite.eager import materialize_cleansed

__all__ = ["run", "main"]


def run(settings: ExperimentSettings | None = None,
        selectivity: float = 0.10) -> dict[str, float]:
    settings = settings or ExperimentSettings()
    bench = workbench_for(settings,
                          rule_names=("reader", "duplicate", "replacing"))
    db = bench.database
    sql = bench.q1(selectivity)

    if "caser_clean" in db.catalog:
        db.drop_table("caser_clean")
    start = time.perf_counter()
    materialize_cleansed(db, bench.registry, "caser", "caser_clean")
    materialize_seconds = time.perf_counter() - start

    start = time.perf_counter()
    db.execute(sql.replace("from caser", "from caser_clean"))
    eager_query_seconds = time.perf_counter() - start

    start = time.perf_counter()
    bench.engine.execute(sql)
    deferred_seconds = time.perf_counter() - start

    start = time.perf_counter()
    db.execute(sql)
    dirty_seconds = time.perf_counter() - start

    per_query_saving = max(deferred_seconds - eager_query_seconds, 1e-9)
    return {
        "materialize": materialize_seconds,
        "eager_query": eager_query_seconds,
        "deferred_query": deferred_seconds,
        "dirty_query": dirty_seconds,
        "break_even_queries": materialize_seconds / per_query_saving,
    }


def main() -> None:
    results = run()
    print("\n=== Eager vs deferred cleansing (q1, 3 rules, sel 10%) ===")
    print(f"one-time eager materialization : {results['materialize']:.3f}s")
    print(f"query on cleansed copy         : {results['eager_query']:.3f}s")
    print(f"deferred rewrite per query     : "
          f"{results['deferred_query']:.3f}s")
    print(f"dirty query (baseline)         : {results['dirty_query']:.3f}s")
    print(f"eager pays off after ~{results['break_even_queries']:.0f} "
          "identical-rule queries — and is re-paid on every rule change")


if __name__ == "__main__":
    main()
