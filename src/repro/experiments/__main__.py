"""CLI entry point: ``python -m repro.experiments [name ...]``.

Names: table1, fig7, fig8, fig9, plans, eager, summary, all (default).
Environment: REPRO_SCALE overrides the data scale factor.
"""

from __future__ import annotations

import sys

from repro.experiments import eager, fig7, fig8, fig9, plans, summary, table1


def main(argv: list[str]) -> int:
    names = [name.lower() for name in argv] or ["all"]
    known = {
        "table1": table1.main,
        "fig7": fig7.main,
        "fig8": fig8.main,
        "fig9": fig9.main,
        "plans": plans.main,
        "eager": eager.main,
        "summary": summary.main,
    }
    if "all" in names:
        names = list(known)
    unknown = [name for name in names if name not in known]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}; "
              f"choose from {', '.join(known)} or 'all'")
        return 2
    for name in names:
        known[name]()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
