"""Figure 9: scaling the number of rules (a, b) and the anomaly
percentage (c, d).

Rules part (§6.3): rtime selectivity fixed at 10%, db-10; rules added in
Table 1 order. The expanded rewrite is feasible only up to the first
three rules (the cycle rule's unbounded context kills it); join-back
works for all five. Rules sharing the ordering requirement add little
cost (one shared sort); the missing rule costs most because its derived
union input roughly doubles the data to sort.

Dirty part: first three rules, 10% selectivity, anomaly percentage 10..40
(the paper's db-10..db-40).
"""

from __future__ import annotations

from dataclasses import replace

from repro.experiments.common import (
    ExperimentSettings,
    QueryTimings,
    print_header,
    run_variants,
    workbench_for,
)
from repro.workloads import STANDARD_RULE_ORDER

__all__ = ["run_rules", "run_dirty", "main"]

SELECTIVITY = 0.10
DIRTY_LEVELS = (10.0, 20.0, 30.0, 40.0)


def run_rules(settings: ExperimentSettings | None = None,
              queries=("q1", "q2")) -> dict[str, list[QueryTimings]]:
    settings = settings or ExperimentSettings()
    results: dict[str, list[QueryTimings]] = {name: [] for name in queries}
    for count in range(1, len(STANDARD_RULE_ORDER) + 1):
        rule_names = STANDARD_RULE_ORDER[:count]
        bench = workbench_for(settings, rule_names=rule_names)
        for query_name in queries:
            sql = getattr(bench, query_name)(SELECTIVITY)
            timings = run_variants(bench, sql, label=f"{count} rules")
            results[query_name].append(timings)
    return results


def run_dirty(settings: ExperimentSettings | None = None,
              queries=("q1", "q2"),
              levels=DIRTY_LEVELS) -> dict[str, list[QueryTimings]]:
    settings = settings or ExperimentSettings()
    results: dict[str, list[QueryTimings]] = {name: [] for name in queries}
    for level in levels:
        leveled = replace(settings, anomaly_percent=level)
        bench = workbench_for(
            leveled, rule_names=("reader", "duplicate", "replacing"))
        for query_name in queries:
            sql = getattr(bench, query_name)(SELECTIVITY)
            timings = run_variants(bench, sql, label=f"db-{int(level)}")
            results[query_name].append(timings)
    return results


def main(part: str = "both") -> None:
    if part in ("rules", "both"):
        results = run_rules()
        for query_name, series in results.items():
            figure = "(a)" if query_name == "q1" else "(b)"
            print_header(f"Figure 9{figure}: {query_name} vs #rules "
                         f"(sel 10%, db-10)")
            for point in series:
                print(point.row() + f"   chosen={point.chosen}")
    if part in ("dirty", "both"):
        results = run_dirty()
        for query_name, series in results.items():
            figure = "(c)" if query_name == "q1" else "(d)"
            print_header(f"Figure 9{figure}: {query_name} vs anomaly %% "
                         f"(3 rules, sel 10%)")
            for point in series:
                print(point.row() + f"   chosen={point.chosen}")


if __name__ == "__main__":
    main()
