"""Experiment harness reproducing every table and figure of §6.

Each module regenerates one paper artifact and prints the same
rows/series the paper reports:

==========  ==========================================================
table1      expanded conditions per rule for q1 and q2 (Table 1)
fig7        q1/q2 elapsed time vs rtime selectivity (Figure 7 a, d)
plans       EXPLAIN plans for q1, q1_e, q2, q2_e, q2_j (Figure 7 b-g)
fig8        q2' with an EPC-uncorrelated predicate (Figure 8)
fig9        elapsed time vs #rules and vs anomaly %% (Figure 9 a-d)
==========  ==========================================================

Run ``python -m repro.experiments <name>`` or see ``benchmarks/`` for
the pytest-benchmark wrappers.
"""

from repro.experiments.common import (
    ExperimentSettings,
    QueryTimings,
    run_variants,
    workbench_for,
)

__all__ = ["ExperimentSettings", "QueryTimings", "run_variants",
           "workbench_for"]
