"""Figure 8: q2' — the site predicate swapped for an EPC-uncorrelated
business-step-type predicate.

Expected shape (§6.2's extreme test): join-back loses its edge because
the type predicate does not shrink the relevant EPC set, so q2'_j is no
longer much better than q2'_e.
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentSettings,
    QueryTimings,
    print_header,
    run_variants,
    workbench_for,
)

__all__ = ["run", "main"]

SELECTIVITIES = (0.01, 0.05, 0.10, 0.20, 0.40)


def run(settings: ExperimentSettings | None = None,
        selectivities=SELECTIVITIES) -> list[QueryTimings]:
    settings = settings or ExperimentSettings()
    bench = workbench_for(settings, rule_names=("reader",))
    series = []
    for selectivity in selectivities:
        sql = bench.q2_prime(selectivity)
        series.append(run_variants(bench, sql,
                                   label=f"{int(selectivity*100)}%"))
    return series


def main() -> None:
    print_header("Figure 8: q2' vs selectivity (uncorrelated type "
                 "predicate, reader rule, db-10)")
    for point in run():
        print(point.row() + f"   chosen={point.chosen}")


if __name__ == "__main__":
    main()
