"""Reproduction scorecard: one command that checks every qualitative
claim of the paper's evaluation and prints PASS/FAIL per claim.

Unlike the figure harnesses (which print raw series for eyeballing),
this runs a compact configuration and *asserts* the shapes:

  S1  dirty queries return different answers than cleansed ones
  S2  every rewrite strategy returns exactly the naive rewrite's rows
  S3  expanded and join-back beat naive on q1 and q2
  S4  Table 1 feasibility: cycle {} everywhere, missing {} for q1 only
  S5  expanded is feasible exactly for rule prefixes 1..3
  S6  q1's expanded plan shares the sort (one sort operator end to end)
  S7  q2' (uncorrelated predicate) erodes join-back's q2 advantage
  S8  anomaly growth 10% -> 40% raises rewrite cost by less than naive's
      cost ratio over the rewrites

Exit code is non-zero when any claim fails, so the scorecard can gate
CI. Run: ``python -m repro.experiments summary`` (REPRO_SCALE honored).
"""

from __future__ import annotations

import time
from dataclasses import replace

from repro.experiments.common import ExperimentSettings, workbench_for
from repro.workloads import STANDARD_RULE_ORDER

__all__ = ["run_scorecard", "main"]


def _measure(bench, sql: str, strategy: str) -> tuple[float, set]:
    start = time.perf_counter()
    result = bench.engine.execute(sql, strategies={strategy})
    return time.perf_counter() - start, result.as_set()


def run_scorecard(settings: ExperimentSettings | None = None) -> dict[str, bool]:
    settings = settings or ExperimentSettings()
    checks: dict[str, bool] = {}
    bench3 = workbench_for(settings,
                           rule_names=("reader", "duplicate", "replacing"))
    bench1 = workbench_for(settings, rule_names=("reader",))
    q1 = bench3.q1(0.10)
    q2 = bench3.q2(0.10)

    # S1: anomalies corrupt answers.
    dirty = bench3.database.execute(q1).as_set()
    clean = bench3.engine.execute(q1, strategies={"naive"}).as_set()
    checks["S1 dirty != cleansed"] = dirty != clean

    # S2: strategy equivalence.
    agree = True
    for sql in (q1, q2):
        baseline = bench3.engine.execute(sql, strategies={"naive"}).as_set()
        for strategy in ("expanded", "joinback"):
            got = bench3.engine.execute(sql,
                                        strategies={strategy}).as_set()
            agree = agree and got == baseline
    checks["S2 rewrites preserve semantics"] = agree

    # S3: rewrites beat naive.
    beats = True
    for sql in (q1, q2):
        naive_time, _ = _measure(bench3, sql, "naive")
        for strategy in ("expanded", "joinback"):
            elapsed, _ = _measure(bench3, sql, strategy)
            beats = beats and elapsed < naive_time
    checks["S3 rewrites beat naive"] = beats

    # S4: Table 1 feasibility pattern.
    from repro.experiments.table1 import table1_conditions
    from repro.workloads import (
        timestamp_for_fraction_above,
        timestamp_for_fraction_below,
    )
    bench5 = workbench_for(settings)
    rtimes = bench5.case_rtimes()
    table = table1_conditions(bench5,
                              timestamp_for_fraction_below(rtimes, 0.10),
                              timestamp_for_fraction_above(rtimes, 0.10))
    checks["S4 Table 1 feasibility"] = (
        table["cycle"] == {"q1": "{}", "q2": "{}"}
        and table["missing"]["q1"] == "{}"
        and table["missing"]["q2"] != "{}"
        and all(table[name]["q1"] != "{}" and table[name]["q2"] != "{}"
                for name in ("reader", "duplicate", "replacing")))

    # S5: expanded feasibility boundary at 3 rules.
    flags = []
    for count in range(1, 6):
        bench = workbench_for(settings,
                              rule_names=STANDARD_RULE_ORDER[:count])
        flags.append(bench.engine.rewrite(bench.q1(0.10)).analysis.feasible)
    checks["S5 expanded feasible for 1..3 rules"] = \
        flags == [True, True, True, False, False]

    # S6: order sharing — q1 expanded uses exactly one sort.
    _, metrics, _ = bench3.engine.execute_with_metrics(
        q1, strategies={"expanded"})
    checks["S6 shared sort in q1_e"] = metrics.sort_operators == 1

    # S7: the uncorrelated predicate erodes join-back's advantage.
    q2_hi = bench1.q2(0.40)
    q2p_hi = bench1.q2_prime(0.40)
    q2_ratio = _measure(bench1, q2_hi, "joinback")[0] \
        / max(_measure(bench1, q2_hi, "expanded")[0], 1e-9)
    q2p_ratio = _measure(bench1, q2p_hi, "joinback")[0] \
        / max(_measure(bench1, q2p_hi, "expanded")[0], 1e-9)
    checks["S7 q2' erodes join-back advantage"] = q2p_ratio > q2_ratio

    # S8: anomaly scaling stays mild relative to naive's disadvantage.
    dirty40 = workbench_for(replace(settings, anomaly_percent=40.0),
                            rule_names=("reader", "duplicate", "replacing"))
    base_time, _ = _measure(bench3, q1, "joinback")
    heavy_time, _ = _measure(dirty40, dirty40.q1(0.10), "joinback")
    naive_time, _ = _measure(bench3, q1, "naive")
    checks["S8 anomaly growth is mild"] = \
        heavy_time / max(base_time, 1e-9) < naive_time / max(base_time, 1e-9)

    return checks


def main() -> int:
    checks = run_scorecard()
    print("\n=== Reproduction scorecard ===")
    for claim, passed in checks.items():
        print(f"  [{'PASS' if passed else 'FAIL'}] {claim}")
    failed = [claim for claim, passed in checks.items() if not passed]
    print(f"\n{len(checks) - len(failed)}/{len(checks)} claims reproduced")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
