"""The asyncio serving front end.

One :class:`Server` owns a listening socket, an execution backend
(:mod:`repro.server.executor`), and the admission-control state. Each
accepted connection becomes a *session*: a reader coroutine parses
frames off the socket and a worker coroutine executes them strictly in
arrival order (responses still carry the request ``id``, so pipelined
clients overlap network latency even though execution is sequential —
this is also what makes the per-session prepared-plan cache safe:
a session's plans are never armed by two executions at once).

Admission control has two gates, both shedding instead of queueing
without bound:

* a global in-flight cap (``REPRO_SERVE_INFLIGHT``, default 8): when
  that many requests are executing across all sessions, new work is
  refused with ``overloaded`` and a ``retry_after`` hint;
* a per-session depth cap (``REPRO_SERVE_SESSION_DEPTH``, default 8):
  a client pipelining more than this many unanswered requests gets
  ``session_busy`` immediately, off the reader coroutine.

Disconnects cancel the session's worker mid-await (the engine-side
computation finishes on its pool thread, but its result is dropped and
its admission slot freed). :meth:`Server.drain` closes the listener,
lets every queued request finish, answers nothing new, and shuts the
executor down — the graceful-shutdown contract the serving tests pin.
"""

from __future__ import annotations

import asyncio
import contextlib
import itertools
import os
import threading
from typing import Any, Iterator

from repro import knobs
from repro.minidb.engine import Database
from repro.server import protocol
from repro.server.executor import QueryFailed, make_executor

__all__ = ["Server", "ServerHandle", "serve_in_thread", "serve_loopback",
           "DEFAULT_MAX_INFLIGHT", "DEFAULT_SESSION_DEPTH"]

DEFAULT_MAX_INFLIGHT = 8
DEFAULT_SESSION_DEPTH = 8

#: Seconds a shed client should wait before retrying.
RETRY_AFTER = 0.05


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        return max(1, int(raw))
    except ValueError:
        return default


class _SessionState:
    """Bookkeeping for one connected client."""

    __slots__ = ("session_id", "queue", "worker", "writer", "write_lock")

    def __init__(self, session_id: str,
                 writer: asyncio.StreamWriter) -> None:
        self.session_id = session_id
        # Unbounded on purpose: depth is enforced by the reader (which
        # must shed, not block), and the drain sentinel must always fit.
        self.queue: asyncio.Queue = asyncio.Queue()
        self.worker: asyncio.Task | None = None
        self.writer = writer
        self.write_lock = asyncio.Lock()


class Server:
    """Serve one :class:`Database` to many concurrent wire sessions."""

    def __init__(self, database: Database, host: str = "127.0.0.1",
                 port: int = 0, *,
                 workers: int | None = None,
                 max_inflight: int | None = None,
                 session_depth: int | None = None,
                 pool_size: int = 4) -> None:
        knobs.validate_environment()
        self.database = database
        self._host_arg = host
        self._port_arg = port
        self.executor = make_executor(database, workers=workers,
                                      pool_size=pool_size)
        self.max_inflight = (max_inflight if max_inflight is not None
                             else _env_int("REPRO_SERVE_INFLIGHT",
                                           DEFAULT_MAX_INFLIGHT))
        self.session_depth = (session_depth if session_depth is not None
                              else _env_int("REPRO_SERVE_SESSION_DEPTH",
                                            DEFAULT_SESSION_DEPTH))
        self.host: str | None = None
        self.port: int | None = None
        self._server: asyncio.AbstractServer | None = None
        self._sessions: dict[str, _SessionState] = {}
        self._session_ids = itertools.count(1)
        self._inflight = 0
        self._draining = False
        #: Requests refused by admission control (observability; the
        #: saturation test asserts sheds happened instead of queueing).
        self.shed_count = 0

    # -- lifecycle --------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self._host_arg, self._port_arg)
        address = self._server.sockets[0].getsockname()
        self.host, self.port = address[0], address[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def drain(self) -> None:
        """Graceful shutdown: finish queued work, then stop.

        Closes the listener (no new connections), marks the server
        draining (new requests on live connections answer
        ``shutting_down``), waits for every session's already-queued
        requests to complete, closes the connections, and shuts the
        executor down.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for state in list(self._sessions.values()):
            state.queue.put_nowait(None)  # worker exits after backlog
        workers = [state.worker for state in self._sessions.values()
                   if state.worker is not None]
        if workers:
            await asyncio.wait(workers, timeout=30)
        await asyncio.get_running_loop().run_in_executor(
            None, self.executor.shutdown)

    # -- connection handling ----------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        session_id = f"s{next(self._session_ids)}"
        state = _SessionState(session_id, writer)
        state.worker = asyncio.ensure_future(self._session_worker(state))
        self._sessions[session_id] = state
        try:
            while True:
                try:
                    message = await protocol.read_frame(reader)
                except protocol.ProtocolError:
                    break
                if message is None:
                    break
                if self._draining:
                    await self._respond(state, {
                        "id": message.get("id"), "ok": False,
                        "error": "shutting_down",
                        "message": "server is draining"})
                    continue
                if state.queue.qsize() >= self.session_depth:
                    self.shed_count += 1
                    await self._respond(state, {
                        "id": message.get("id"), "ok": False,
                        "error": "session_busy",
                        "message": f"more than {self.session_depth} "
                                   f"requests outstanding",
                        "retry_after": RETRY_AFTER})
                    continue
                state.queue.put_nowait(message)
        finally:
            if not self._draining and state.worker is not None:
                state.worker.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await state.worker
            self._sessions.pop(session_id, None)
            self.executor.close_session(session_id)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _session_worker(self, state: _SessionState) -> None:
        while True:
            message = await state.queue.get()
            if message is None:
                break
            response = await self._process(state, message)
            await self._respond(state, response)
        state.writer.close()

    async def _respond(self, state: _SessionState,
                       response: dict[str, Any]) -> None:
        async with state.write_lock:
            with contextlib.suppress(ConnectionError):
                await protocol.write_frame(state.writer, response)

    # -- request processing -----------------------------------------------

    async def _process(self, state: _SessionState,
                       message: dict[str, Any]) -> dict[str, Any]:
        request_id = message.get("id")
        op = message.get("op")
        if op not in ("hello", "query", "append"):
            return {"id": request_id, "ok": False, "error": "bad_request",
                    "message": f"unknown op {op!r}"}
        if self._inflight >= self.max_inflight:
            self.shed_count += 1
            return {"id": request_id, "ok": False, "error": "overloaded",
                    "message": f"{self.max_inflight} requests in flight",
                    "retry_after": RETRY_AFTER}
        self._inflight += 1
        try:
            if op == "hello":
                rules = message.get("rules", [])
                if (not isinstance(rules, list)
                        or any(not isinstance(r, str) for r in rules)):
                    return {"id": request_id, "ok": False,
                            "error": "bad_request",
                            "message": "rules must be a list of strings"}
                future = self.executor.hello(state.session_id, rules)
                payload = await asyncio.wrap_future(future)
                payload.update({"server": "repro-minidb", "protocol": 1})
            elif op == "query":
                sql = message.get("sql")
                if not isinstance(sql, str):
                    return {"id": request_id, "ok": False,
                            "error": "bad_request",
                            "message": "query needs a sql string"}
                future = self.executor.query(
                    state.session_id, sql,
                    cleansed=bool(message.get("cleansed", False)))
                payload = await asyncio.wrap_future(future)
            else:  # append
                table = message.get("table")
                try:
                    rows = protocol.rows_from_wire(message.get("rows"))
                except protocol.ProtocolError as error:
                    return {"id": request_id, "ok": False,
                            "error": "bad_request", "message": str(error)}
                if not isinstance(table, str):
                    return {"id": request_id, "ok": False,
                            "error": "bad_request",
                            "message": "append needs a table name"}
                future = self.executor.append(table, rows)
                payload = await asyncio.wrap_future(future)
        except QueryFailed as error:
            return {"id": request_id, "ok": False, "error": "query_error",
                    "message": str(error)}
        except Exception as error:  # noqa: BLE001 — must answer something
            return {"id": request_id, "ok": False, "error": "query_error",
                    "message": f"{type(error).__name__}: {error}"}
        finally:
            self._inflight -= 1
        payload["id"] = request_id
        payload["ok"] = True
        return payload


# ----------------------------------------------------------------------
# Thread-hosted serving (tests, fuzz loopback, benchmarks, CLI)
# ----------------------------------------------------------------------

class ServerHandle:
    """A server running on a background event-loop thread."""

    def __init__(self) -> None:
        self.host: str | None = None
        self.port: int | None = None
        self.server: Server | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._stop_event: asyncio.Event | None = None

    @property
    def address(self) -> tuple[str, int]:
        assert self.host is not None and self.port is not None
        return (self.host, self.port)

    def stop(self, timeout: float = 30.0) -> None:
        """Drain gracefully and join the serving thread; idempotent."""
        loop, event = self._loop, self._stop_event
        if loop is not None and event is not None and loop.is_running():
            loop.call_soon_threadsafe(event.set)
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None


def serve_in_thread(database: Database, **server_kwargs) -> ServerHandle:
    """Start a :class:`Server` on a dedicated event-loop thread.

    Returns once the listening address is known. ``handle.stop()``
    drains and joins. This is how every synchronous caller — tests,
    the fuzz oracle's loopback session, the benchmark harness, the
    ``python -m repro.server`` CLI — hosts the asyncio front end.
    """
    handle = ServerHandle()
    started = threading.Event()
    failure: list[BaseException] = []

    async def _main() -> None:
        server = Server(database, **server_kwargs)
        try:
            await server.start()
        except BaseException as error:  # noqa: BLE001 — reported to caller
            failure.append(error)
            started.set()
            return
        handle.server = server
        handle.host, handle.port = server.host, server.port
        handle._loop = asyncio.get_running_loop()
        handle._stop_event = asyncio.Event()
        started.set()
        await handle._stop_event.wait()
        await server.drain()

    def _run() -> None:
        asyncio.run(_main())

    thread = threading.Thread(target=_run, name="repro-serve-loop",
                              daemon=True)
    handle._thread = thread
    thread.start()
    started.wait(timeout=30)
    if failure:
        raise failure[0]
    if handle.port is None:
        raise RuntimeError("server failed to start within 30s")
    return handle


@contextlib.contextmanager
def serve_loopback(database: Database,
                   **server_kwargs) -> Iterator[ServerHandle]:
    """``serve_in_thread`` as a context manager (drains on exit)."""
    handle = serve_in_thread(database, **server_kwargs)
    try:
        yield handle
    finally:
        handle.stop()
