"""Wire protocol: length-prefixed JSON frames over a byte stream.

Every message — request or response — is one *frame*: a 4-byte
big-endian unsigned length followed by that many bytes of UTF-8 JSON.
Requests are objects carrying an ``id`` (echoed verbatim in the
response so pipelined clients can match replies), an ``op`` (``hello``,
``query``, or ``append``), and op-specific fields. Responses carry
``ok``; failures add ``error`` (a stable machine-readable code from
:data:`ERROR_CODES`), a human ``message``, and — for load sheds — a
``retry_after`` hint in seconds.

All SQL values that cross the wire are JSON-native by construction:
the engine's VARCHAR is ``str``, numerics are ``int``/``float``,
TIMESTAMP is integer epoch seconds, and NULL is ``null``. Rows
serialize as JSON arrays; :func:`rows_from_wire` restores the engine's
tuple convention on the way back in.

The sync (socket) and async (``asyncio`` stream) halves share the same
encoder so the client helper, the fuzz oracle's loopback session, and
the server itself cannot drift apart.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
from typing import Any

__all__ = [
    "MAX_FRAME_BYTES", "ERROR_CODES", "ProtocolError",
    "encode_frame", "decode_payload", "rows_from_wire",
    "read_frame", "write_frame", "recv_frame", "send_frame",
]

_HEADER = struct.Struct(">I")

#: Refuse frames beyond this size (a corrupt length prefix must not
#: make the server try to buffer gigabytes).
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: Stable error codes a response's ``error`` field may carry.
ERROR_CODES = frozenset({
    "bad_request",      # malformed frame / missing or unknown fields
    "overloaded",       # admission control shed the request (retry_after)
    "session_busy",     # per-session queue depth exceeded (retry_after)
    "query_error",      # the engine raised while planning/executing
    "shutting_down",    # server is draining; no new work accepted
})


class ProtocolError(Exception):
    """A malformed or oversized frame."""


def encode_frame(message: dict[str, Any]) -> bytes:
    """One wire frame (header + payload) for *message*."""
    payload = json.dumps(message, separators=(",", ":"),
                         ensure_ascii=False).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit")
    return _HEADER.pack(len(payload)) + payload


def decode_payload(payload: bytes) -> dict[str, Any]:
    """The message object inside one frame's payload bytes."""
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"undecodable frame: {error}") from error
    if not isinstance(message, dict):
        raise ProtocolError("frame payload must be a JSON object")
    return message


def rows_from_wire(rows: Any) -> list[tuple]:
    """JSON row arrays back into the engine's list-of-tuples form."""
    if not isinstance(rows, list):
        raise ProtocolError("rows must be a JSON array of arrays")
    restored = []
    for row in rows:
        if not isinstance(row, list):
            raise ProtocolError("each row must be a JSON array")
        restored.append(tuple(row))
    return restored


# ----------------------------------------------------------------------
# Async (asyncio stream) half — used by the server.
# ----------------------------------------------------------------------

async def read_frame(reader: asyncio.StreamReader) -> dict[str, Any] | None:
    """The next message from *reader*, or None on clean EOF."""
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise ProtocolError("connection closed mid-header") from error
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {length} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit")
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as error:
        raise ProtocolError("connection closed mid-frame") from error
    return decode_payload(payload)


async def write_frame(writer: asyncio.StreamWriter,
                      message: dict[str, Any]) -> None:
    writer.write(encode_frame(message))
    await writer.drain()


# ----------------------------------------------------------------------
# Sync (blocking socket) half — used by the client helper.
# ----------------------------------------------------------------------

def recv_frame(sock: socket.socket) -> dict[str, Any] | None:
    """The next message from *sock*, or None on clean EOF."""
    header = _recv_exactly(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {length} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit")
    payload = _recv_exactly(sock, length)
    if payload is None:
        raise ProtocolError("connection closed mid-frame")
    return decode_payload(payload)


def send_frame(sock: socket.socket, message: dict[str, Any]) -> None:
    sock.sendall(encode_frame(message))


def _recv_exactly(sock: socket.socket, count: int) -> bytes | None:
    chunks = bytearray()
    while len(chunks) < count:
        chunk = sock.recv(count - len(chunks))
        if not chunk:
            return None if not chunks else _short()
        chunks.extend(chunk)
    return bytes(chunks)


def _short() -> bytes:
    raise ProtocolError("connection closed mid-frame")
