"""Execution backends for the serving layer.

The asyncio front end (``repro.server.server``) never runs engine code
on the event loop: every query and append is handed to an *executor*
and awaited as a future. Two backends implement the same four-method
contract (``hello`` / ``query`` / ``append`` / ``shutdown``, all
returning :class:`concurrent.futures.Future`):

:class:`ThreadExecutor`
    The default. A bounded thread pool over one shared
    :class:`~repro.minidb.engine.Database`. Mutations (appends, session
    setup, cleansed queries — the rewrite engine creates scratch tables
    and region caches) serialize under a single write lock; plain
    read-only queries pin an MVCC snapshot *under* the lock (pin and
    release touch the shared version registry) but execute *outside*
    it, so readers overlap each other and ingest. Each session owns a
    :class:`~repro.minidb.engine.PreparedPlanCache`, so a session's
    repeated query texts replan zero times across snapshots.

:class:`ProcessExecutor`
    Opted into with ``REPRO_SERVE_WORKERS >= 2`` (memory storage only).
    Forks N workers, each inheriting a copy-on-write image of the
    database. Appends are applied to the parent (so late forks and
    direct reads stay current) and *broadcast* to every worker's FIFO
    task queue; queries round-robin to one worker. Because each queue
    is FIFO, any query enqueued after an append was acknowledged
    observes it — ordered replication gives read-your-writes across
    clients without any cross-process locking. This is the backend that
    actually scales QPS with cores: each worker is a separate
    interpreter, so query execution escapes the GIL.

Disk storage always uses :class:`ThreadExecutor` in fully-exclusive
mode (the buffer pool and pager are not thread-safe, and a forked
worker cannot share a pager file descriptor safely).
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import queue
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Sequence

from repro.minidb import parallel
from repro.minidb.engine import Database, PreparedPlanCache
from repro.rewrite.engine import DeferredCleansingEngine
from repro.sqlts.registry import RuleRegistry

__all__ = ["QueryFailed", "ThreadExecutor", "ProcessExecutor",
           "make_executor", "configured_serve_workers"]


class QueryFailed(Exception):
    """The engine raised while serving a request (wire code
    ``query_error``); the message carries the original type and text."""


def configured_serve_workers() -> int:
    """``REPRO_SERVE_WORKERS``: process-executor worker count
    (0 or 1 selects the thread executor)."""
    raw = os.environ.get("REPRO_SERVE_WORKERS", "0")
    try:
        return max(0, int(raw))
    except ValueError:
        return 0


def make_executor(database: Database, *,
                  workers: int | None = None,
                  pool_size: int = 4) -> "ThreadExecutor | ProcessExecutor":
    """The right backend for *database* and the configured worker count.

    Process workers require memory storage (a forked pager would fight
    the parent over the same file); disk databases silently fall back
    to the thread executor, which runs them fully exclusive.
    """
    count = configured_serve_workers() if workers is None else workers
    if count >= 2 and database.storage is None:
        return ProcessExecutor(database, count)
    return ThreadExecutor(database, pool_size=pool_size)


def _wire_result(result) -> dict[str, Any]:
    return {"columns": list(result.columns),
            "rows": [list(row) for row in result.rows]}


def _failure(error: BaseException) -> QueryFailed:
    return QueryFailed(f"{type(error).__name__}: {error}")


class _Session:
    """Per-wire-session engine state (thread executor)."""

    __slots__ = ("plan_cache", "engine")

    def __init__(self) -> None:
        self.plan_cache = PreparedPlanCache(64)
        self.engine: DeferredCleansingEngine | None = None


class ThreadExecutor:
    """Bounded thread pool with snapshot-pinned lock-free reads."""

    def __init__(self, database: Database, *, pool_size: int = 4) -> None:
        self.database = database
        self.pool = ThreadPoolExecutor(
            max_workers=max(1, pool_size),
            thread_name_prefix="repro-serve")
        #: Serializes every mutation of shared engine state: appends,
        #: snapshot pin/release (the per-table version registry is a
        #: plain dict), session setup, and cleansed-query execution.
        self._write_lock = threading.Lock()
        self._sessions: dict[str, _Session] = {}
        #: Disk storage is single-threaded end to end, and a live shard
        #: pool must not be dispatched from two threads at once — both
        #: force queries to run exclusive instead of snapshot-pinned.
        self._exclusive_reads = database.storage is not None

    @property
    def workers(self) -> int:
        return 0

    # -- contract ---------------------------------------------------------

    def hello(self, session_id: str,
              rules: Sequence[str]) -> "Future[dict[str, Any]]":
        return self.pool.submit(self._do_hello, session_id, list(rules))

    def query(self, session_id: str, sql: str,
              cleansed: bool = False) -> "Future[dict[str, Any]]":
        return self.pool.submit(self._do_query, session_id, sql, cleansed)

    def append(self, table: str,
               rows: list[tuple]) -> "Future[dict[str, Any]]":
        return self.pool.submit(self._do_append, table, rows)

    def close_session(self, session_id: str) -> None:
        self._sessions.pop(session_id, None)

    def shutdown(self, wait: bool = True) -> None:
        self.pool.shutdown(wait=wait)

    # -- jobs (run on pool threads) ---------------------------------------

    def _do_hello(self, session_id: str,
                  rules: list[str]) -> dict[str, Any]:
        session = _Session()
        try:
            if rules:
                with self._write_lock:
                    registry = RuleRegistry(self.database)
                    for text in rules:
                        registry.define(text)
                    session.engine = DeferredCleansingEngine(
                        self.database, registry)
        except Exception as error:  # noqa: BLE001 — crosses the wire
            raise _failure(error) from error
        self._sessions[session_id] = session
        with self._write_lock:
            tables = sorted(self.database.catalog.table_names())
        return {"tables": tables, "rules": len(rules)}

    def _do_query(self, session_id: str, sql: str,
                  cleansed: bool) -> dict[str, Any]:
        session = self._sessions.get(session_id)
        if session is None:
            session = self._sessions.setdefault(session_id, _Session())
        try:
            if cleansed:
                if session.engine is None:
                    raise QueryFailed(
                        "QueryFailed: cleansed query on a session that "
                        "declared no rules in HELLO")
                # The rewrite engine materializes scratch tables and may
                # patch region caches — a mutation, so fully exclusive.
                with self._write_lock:
                    return _wire_result(session.engine.execute(sql))
            if self._exclusive_reads or parallel.configured_worker_count() >= 2:
                with self._write_lock:
                    return _wire_result(self.database.execute(sql))
            with self._write_lock:
                snapshot = self.database.snapshot(
                    plan_cache=session.plan_cache)
            try:
                return _wire_result(snapshot.execute(sql))
            finally:
                with self._write_lock:
                    snapshot.release()
        except QueryFailed:
            raise
        except Exception as error:  # noqa: BLE001 — crosses the wire
            raise _failure(error) from error

    def _do_append(self, table: str, rows: list[tuple]) -> dict[str, Any]:
        try:
            with self._write_lock:
                appended = self.database.append(table, rows)
        except Exception as error:  # noqa: BLE001 — crosses the wire
            raise _failure(error) from error
        return {"appended": appended}


# ----------------------------------------------------------------------
# Process executor
# ----------------------------------------------------------------------

def _process_worker(database: Database,
                    tasks: "multiprocessing.queues.Queue",
                    results: "multiprocessing.queues.Queue") -> None:
    """One forked worker: a single-threaded engine replica.

    Tasks arrive FIFO; appends mutate the replica in arrival order, so
    any query enqueued later sees them. Sessions with rules get a
    worker-local cleansing engine (rules are broadcast like appends).
    """
    engines: dict[str, DeferredCleansingEngine] = {}
    while True:
        task = tasks.get()
        if task is None:
            break
        kind = task[0]
        try:
            if kind == "rules":
                _, session_id, texts = task
                registry = RuleRegistry(database)
                for text in texts:
                    registry.define(text)
                engines[session_id] = DeferredCleansingEngine(
                    database, registry)
            elif kind == "append":
                _, table, rows = task
                database.append(table, rows)
            elif kind == "end_session":
                engines.pop(task[1], None)
            elif kind == "query":
                _, task_id, session_id, sql, cleansed = task
                if cleansed:
                    engine = engines.get(session_id)
                    if engine is None:
                        raise QueryFailed(
                            "QueryFailed: cleansed query on a session "
                            "that declared no rules in HELLO")
                    result = engine.execute(sql)
                else:
                    result = database.execute(sql)
                results.put((task_id, True, _wire_result(result)))
        except Exception as error:  # noqa: BLE001 — crosses the wire
            if kind == "query":
                results.put((task[1], False,
                             f"{type(error).__name__}: {error}"))
            # Broadcast tasks have no reply slot; a failed replicated
            # append would desync this replica, so fail loudly.
            elif kind in ("rules", "append"):
                results.put((None, False,
                             f"replica desync ({kind}): "
                             f"{type(error).__name__}: {error}"))


class ProcessExecutor:
    """N forked engine replicas with ordered append replication."""

    def __init__(self, database: Database, workers: int) -> None:
        if database.storage is not None:
            raise ValueError(
                "ProcessExecutor requires memory storage; disk databases "
                "must use ThreadExecutor")
        self.database = database
        self.workers = max(2, workers)
        context = multiprocessing.get_context("fork")
        self._results = context.Queue()
        self._queues = [context.Queue() for _ in range(self.workers)]
        self._processes = [
            context.Process(
                target=_process_worker,
                args=(database, task_queue, self._results),
                daemon=True)
            for task_queue in self._queues]
        for process in self._processes:
            process.start()
        self._futures: dict[int, Future] = {}
        self._futures_lock = threading.Lock()
        self._task_ids = itertools.count(1)
        self._next_worker = itertools.cycle(range(self.workers))
        self._write_lock = threading.Lock()
        self._closed = False
        self._collector = threading.Thread(
            target=self._collect, name="repro-serve-collect", daemon=True)
        self._collector.start()

    # -- contract ---------------------------------------------------------

    def hello(self, session_id: str,
              rules: Sequence[str]) -> "Future[dict[str, Any]]":
        future: Future = Future()
        try:
            with self._write_lock:
                if rules:
                    # Validate on the parent first so a bad rule fails
                    # the HELLO instead of desyncing every replica.
                    registry = RuleRegistry(self.database)
                    for text in rules:
                        registry.define(text)
                    self._broadcast(("rules", session_id, list(rules)))
                tables = sorted(self.database.catalog.table_names())
        except Exception as error:  # noqa: BLE001 — crosses the wire
            future.set_exception(_failure(error))
            return future
        future.set_result({"tables": tables, "rules": len(rules)})
        return future

    def query(self, session_id: str, sql: str,
              cleansed: bool = False) -> "Future[dict[str, Any]]":
        future: Future = Future()
        task_id = next(self._task_ids)
        with self._futures_lock:
            self._futures[task_id] = future
        target = next(self._next_worker)
        self._queues[target].put(
            ("query", task_id, session_id, sql, cleansed))
        return future

    def append(self, table: str,
               rows: list[tuple]) -> "Future[dict[str, Any]]":
        future: Future = Future()
        try:
            with self._write_lock:
                appended = self.database.append(table, rows)
                self._broadcast(("append", table, rows))
        except Exception as error:  # noqa: BLE001 — crosses the wire
            future.set_exception(_failure(error))
            return future
        future.set_result({"appended": appended})
        return future

    def close_session(self, session_id: str) -> None:
        if self._closed:
            return
        with self._write_lock:
            self._broadcast(("end_session", session_id))

    def shutdown(self, wait: bool = True) -> None:
        if self._closed:
            return
        self._closed = True
        for task_queue in self._queues:
            task_queue.put(None)
        if wait:
            for process in self._processes:
                process.join(timeout=10)
        for process in self._processes:
            if process.is_alive():
                process.terminate()
        self._results.put(None)
        if wait:
            self._collector.join(timeout=10)
        with self._futures_lock:
            pending = list(self._futures.values())
            self._futures.clear()
        for future in pending:
            if not future.done():
                future.set_exception(
                    QueryFailed("QueryFailed: executor shut down"))

    # -- internals --------------------------------------------------------

    def _broadcast(self, task: tuple) -> None:
        for task_queue in self._queues:
            task_queue.put(task)

    def _collect(self) -> None:
        while True:
            item = self._results.get()
            if item is None:
                break
            task_id, ok, payload = item
            if task_id is None:
                # A replica failed a broadcast task; the pool can no
                # longer be trusted to agree with the parent.
                continue
            with self._futures_lock:
                future = self._futures.pop(task_id, None)
            if future is None:
                continue
            if ok:
                future.set_result(payload)
            else:
                future.set_exception(QueryFailed(payload))
