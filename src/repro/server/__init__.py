"""Concurrent serving layer: asyncio wire protocol over MVCC snapshots.

``python -m repro.server`` starts a TCP server over a demo database;
programmatic use goes through :func:`serve_in_thread` /
:func:`serve_loopback` (hosting) and :class:`ServerClient` (driving).
See ``DESIGN.md`` §15 for the architecture: snapshot epochs keep
readers off the ingest path, a bounded executor keeps engine code off
the event loop, and admission control sheds instead of queueing.
"""

from repro.server.client import ServerBusy, ServerClient, ServerError
from repro.server.executor import (ProcessExecutor, QueryFailed,
                                   ThreadExecutor, make_executor)
from repro.server.server import (Server, ServerHandle, serve_in_thread,
                                 serve_loopback)

__all__ = [
    "Server", "ServerHandle", "serve_in_thread", "serve_loopback",
    "ServerClient", "ServerError", "ServerBusy",
    "ThreadExecutor", "ProcessExecutor", "QueryFailed", "make_executor",
]
