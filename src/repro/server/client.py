"""A small synchronous client for the serving wire protocol.

:class:`ServerClient` speaks the length-prefixed JSON frame protocol
over a blocking TCP socket: ``hello`` opens the session (optionally
declaring cleansing rules), ``query`` returns a
:class:`~repro.minidb.result.ResultSet`, ``append`` streams rows in.
Load sheds (``overloaded`` / ``session_busy``) surface as
:class:`ServerBusy` carrying the server's ``retry_after`` hint;
``query_with_retry`` implements the obvious polite loop on top. Every
other failure raises :class:`ServerError` with the wire error code.

The client is strictly request/response (one outstanding request); the
server itself supports pipelining, but the benchmark drives concurrency
with many clients rather than one deep pipeline.
"""

from __future__ import annotations

import socket
import time
from typing import Any, Sequence

from repro.minidb.result import ResultSet
from repro.server import protocol

__all__ = ["ServerClient", "ServerError", "ServerBusy"]


class ServerError(Exception):
    """The server answered ``ok: false``."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message


class ServerBusy(ServerError):
    """A load shed; honor :attr:`retry_after` before retrying."""

    def __init__(self, code: str, message: str,
                 retry_after: float) -> None:
        super().__init__(code, message)
        self.retry_after = retry_after


class ServerClient:
    """One wire session against a running :class:`~repro.server.Server`."""

    def __init__(self, host: str, port: int,
                 timeout: float | None = 30.0) -> None:
        self._sock = socket.create_connection((host, port),
                                              timeout=timeout)
        self._next_id = 1

    # -- lifecycle --------------------------------------------------------

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServerClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- operations -------------------------------------------------------

    def hello(self, rules: Sequence[str] = ()) -> dict[str, Any]:
        """Open the session; *rules* are SQL-TS cleansing rule texts
        that enable ``query(..., cleansed=True)`` on this session."""
        return self._call({"op": "hello", "rules": list(rules)})

    def hello_with_retry(self, rules: Sequence[str] = (), *,
                         attempts: int = 50) -> dict[str, Any]:
        """``hello``, sleeping out ``retry_after`` on load sheds (the
        session-open handshake passes the same admission gate as
        queries, so a saturated server can shed it too)."""
        for _ in range(attempts - 1):
            try:
                return self.hello(rules)
            except ServerBusy as shed:
                time.sleep(shed.retry_after)
        return self.hello(rules)

    def query(self, sql: str, *, cleansed: bool = False) -> ResultSet:
        payload = self._call({"op": "query", "sql": sql,
                              "cleansed": cleansed})
        return ResultSet(payload["columns"],
                         protocol.rows_from_wire(payload["rows"]))

    def query_with_retry(self, sql: str, *, cleansed: bool = False,
                         attempts: int = 50) -> ResultSet:
        """``query``, sleeping out ``retry_after`` on load sheds."""
        for _ in range(attempts - 1):
            try:
                return self.query(sql, cleansed=cleansed)
            except ServerBusy as shed:
                time.sleep(shed.retry_after)
        return self.query(sql, cleansed=cleansed)

    def append(self, table: str, rows: Sequence[Sequence[Any]]) -> int:
        payload = self._call({"op": "append", "table": table,
                              "rows": [list(row) for row in rows]})
        return payload["appended"]

    def append_with_retry(self, table: str,
                          rows: Sequence[Sequence[Any]], *,
                          attempts: int = 50) -> int:
        for _ in range(attempts - 1):
            try:
                return self.append(table, rows)
            except ServerBusy as shed:
                time.sleep(shed.retry_after)
        return self.append(table, rows)

    # -- plumbing ---------------------------------------------------------

    def _call(self, message: dict[str, Any]) -> dict[str, Any]:
        request_id = self._next_id
        self._next_id += 1
        message["id"] = request_id
        protocol.send_frame(self._sock, message)
        response = protocol.recv_frame(self._sock)
        if response is None:
            raise ServerError("disconnected",
                              "server closed the connection")
        if response.get("id") != request_id:
            raise protocol.ProtocolError(
                f"response id {response.get('id')!r} does not match "
                f"request id {request_id!r}")
        if response.get("ok"):
            return response
        code = response.get("error", "unknown")
        detail = response.get("message", "")
        if code in ("overloaded", "session_busy"):
            raise ServerBusy(code, detail,
                             float(response.get("retry_after", 0.05)))
        raise ServerError(code, detail)
