"""``python -m repro.server`` — serve a database over TCP.

Starts the asyncio serving front end on a demo RFID reads table (or an
empty database with ``--empty``) and blocks until interrupted. Clients
connect with :class:`repro.server.ServerClient`; see
``examples/serving_client.py`` for a complete round trip.
"""

from __future__ import annotations

import argparse

from repro.minidb.engine import Database
from repro.minidb.schema import TableSchema
from repro.minidb.types import SqlType
from repro.server.server import serve_in_thread

DEMO_ROWS = [
    ("case-1", 1_000, "dock-A", "receiving", "receiving"),
    ("case-1", 1_060, "dock-A", "receiving", "receiving"),
    ("case-1", 9_000, "shelf-3", "sales-floor", "stocking"),
    ("case-2", 2_000, "dock-B", "receiving", "receiving"),
    ("case-2", 9_500, "shelf-7", "sales-floor", "stocking"),
]


def build_demo_database() -> Database:
    """A tiny reads table so a fresh server answers queries at once."""
    database = Database()
    database.create_table("reads", TableSchema.of(
        ("epc", SqlType.VARCHAR),
        ("rtime", SqlType.TIMESTAMP),
        ("reader", SqlType.VARCHAR),
        ("biz_loc", SqlType.VARCHAR),
        ("biz_step", SqlType.VARCHAR),
    ))
    database.load("reads", DEMO_ROWS)
    database.create_index("reads", "rtime")
    return database


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server",
        description="Serve a minidb database over the wire protocol.")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7683,
                        help="listening port (default 7683; 0 = ephemeral)")
    parser.add_argument("--workers", type=int, default=None,
                        help="process-executor workers "
                             "(default: REPRO_SERVE_WORKERS)")
    parser.add_argument("--empty", action="store_true",
                        help="serve an empty database instead of the "
                             "demo reads table")
    arguments = parser.parse_args(argv)

    database = Database() if arguments.empty else build_demo_database()
    handle = serve_in_thread(database, host=arguments.host,
                             port=arguments.port,
                             workers=arguments.workers)
    print(f"serving on {handle.host}:{handle.port} "
          f"(ctrl-C to drain and exit)")
    try:
        while True:
            handle._thread.join(timeout=1.0)  # type: ignore[union-attr]
            if handle._thread is None or not handle._thread.is_alive():
                break
    except KeyboardInterrupt:
        print("draining...")
    finally:
        handle.stop()
        database.shutdown()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
