"""Serving quickstart: many clients, one database, no blocked readers.

Hosts a reads table behind the wire protocol, then demonstrates the
three client operations — plain queries over MVCC snapshots, streaming
appends, and a cleansed query (SQL-TS rules declared at HELLO,
deferred cleansing executed server-side).

Run:  python examples/serving_client.py

To serve a standalone process instead:  python -m repro.server
(then connect with ServerClient("127.0.0.1", 7683)).
"""

from repro.minidb import Database, SqlType, TableSchema
from repro.server import ServerClient, serve_loopback

DUPLICATE_RULE = """
    DEFINE duplicate_rule ON reads CLUSTER BY epc SEQUENCE BY rtime
    AS (A, B)
    WHERE A.biz_loc = B.biz_loc AND B.rtime - A.rtime < 5 mins
    ACTION DELETE B
"""


def main() -> None:
    # 1. A reads table with one duplicate anomaly (case-1 re-read 60s
    #    later at the same dock).
    db = Database()
    db.create_table("reads", TableSchema.of(
        ("epc", SqlType.VARCHAR),
        ("rtime", SqlType.TIMESTAMP),
        ("reader", SqlType.VARCHAR),
        ("biz_loc", SqlType.VARCHAR),
        ("biz_step", SqlType.VARCHAR),
    ))
    db.load("reads", [
        ("case-1", 1_000, "dock-A", "receiving", "recv"),
        ("case-1", 1_060, "dock-A", "receiving", "recv"),  # duplicate
        ("case-2", 2_000, "dock-B", "receiving", "recv"),
    ])
    db.create_index("reads", "rtime")

    # 2. Host it on a loopback server (background event-loop thread)
    #    and talk to it exactly like a remote client would.
    with serve_loopback(db) as handle:
        with ServerClient(*handle.address) as client:
            hello = client.hello()
            print(f"connected to {hello['server']} "
                  f"(tables: {', '.join(hello['tables'])})")

            print("\n-- dirty count --")
            print(client.query(
                "select count(*) as reads from reads").pretty())

            # 3. Stream new readings in; queries issued by any client
            #    after this acknowledgment will see them, while queries
            #    already executing keep their pinned snapshot.
            client.append("reads", [
                ("case-2", 9_500, "shelf-7", "sales-floor", "stock"),
                ("case-3", 9_900, "shelf-2", "sales-floor", "stock"),
            ])
            print("\n-- after appending two readings --")
            print(client.query(
                "select biz_loc, count(*) as reads from reads "
                "group by biz_loc order by biz_loc").pretty())

        # 4. A second session declares a cleansing rule in HELLO; its
        #    cleansed queries run deferred cleansing on the server.
        with ServerClient(*handle.address) as analyst:
            analyst.hello(rules=[DUPLICATE_RULE])
            print("\n-- cleansed count (duplicate dropped) --")
            print(analyst.query("select count(*) as reads from reads",
                                cleansed=True).pretty())

    db.shutdown()


if __name__ == "__main__":
    main()
