"""Pharmaceutical e-pedigree: why cleansing must be deferred.

The paper's motivating scenario (§1): e-pedigree laws require preserving
the raw tracking records, which forbids up-front (eager) correction of
the data. Deferred cleansing keeps the stored reads untouched and
compensates at query time.

This example generates a supply chain where case tags are sometimes
missed (the "missing read" anomaly), then reconstructs a complete
chain of custody for individual cases by applying the paper's missing
rule (Example 5): a missed case read at a location is compensated from
the pallet's read there, provided the case is later seen together with
the pallet again.

Run:  python examples/pharma_epedigree.py
"""

from repro.datagen import GeneratorConfig, RFIDGen, load_into_database
from repro.rewrite import DeferredCleansingEngine
from repro.workloads.rules import MISSING_VIEW, case_with_pallet_view, rule_texts
from repro.sqlts import RuleRegistry


def main() -> None:
    config = GeneratorConfig(scale=8, anomaly_percent=25.0)
    print(f"generating pedigree data (scale {config.scale}, "
          f"{config.anomaly_percent:.0f}% anomalies)...")
    data = RFIDGen(config).generate()
    db = load_into_database(data)

    # Define ONLY the missing rule: this application trusts the raw
    # reads but must fill gaps in per-case custody chains.
    registry = RuleRegistry(db)
    registry.define_view(MISSING_VIEW, case_with_pallet_view())
    for rule_text in rule_texts(data)["missing"]:
        registry.define(rule_text)
    engine = DeferredCleansingEngine(db, registry)

    # Raw data is preserved: the rules never touch the stored table.
    raw_count = len(db.table("caser"))

    # A pedigree audit: per-case number of custody events.
    audit_sql = ("select epc, count(*) as custody_events, "
                 "count(distinct biz_loc) as locations "
                 "from caser group by epc")
    raw = {row[0]: row[1] for row in db.execute(audit_sql)}
    cleansed = {row[0]: row[1]
                for row in engine.execute(audit_sql,
                                          strategies={"naive"})}

    assert len(db.table("caser")) == raw_count, "raw data must be intact"

    compensated = {epc: (raw.get(epc, 0), events)
                   for epc, events in cleansed.items()
                   if events > raw.get(epc, 0)}
    print(f"\n{len(raw)} cases audited; missing reads were compensated "
          f"for {len(compensated)} of them from pallet-level reads")
    for epc, (before, after) in list(compensated.items())[:5]:
        print(f"  {epc[-12:]}: {before} raw custody events "
              f"-> {after} after compensation")

    # Drill into one compensated case: show its full custody chain.
    if compensated:
        case = next(iter(compensated))
        chain = engine.execute(
            f"select rtime, biz_loc, reader from caser "
            f"where epc = '{case}' order by rtime asc",
            strategies={"naive"})
        print(f"\nreconstructed chain of custody for ...{case[-12:]}: "
              f"{len(chain)} events")
        for rtime, biz_loc, reader in chain.rows[:8]:
            print(f"  t={rtime}  location={biz_loc}  reader={reader}")
        print("  ...")
    print("\nthe stored reads table was never modified: "
          f"{len(db.table('caser'))} raw rows remain")


if __name__ == "__main__":
    main()
