"""Two applications, two cleansing policies, one data set.

The paper's core argument against eager cleansing (§1): different
applications define anomalies differently, so no single cleaned copy can
serve everyone. A shelf-space planning application wants to SEE the
back-and-forth cycles between the sales floor and the back room; an
inventory-dwell application wants them REMOVED. Deferred cleansing gives
each application its own rule set over the same stored reads.

Run:  python examples/per_application_policies.py
"""

from repro.minidb import Database, SqlType, TableSchema
from repro.rewrite import DeferredCleansingEngine
from repro.sqlts import RuleRegistry

MIN = 60
HOUR = 3600


def build_store_data() -> Database:
    db = Database()
    db.create_table("reads", TableSchema.of(
        ("epc", SqlType.VARCHAR), ("rtime", SqlType.TIMESTAMP),
        ("biz_loc", SqlType.VARCHAR)))
    rows = []
    # item-1 bounces floor -> backroom -> floor -> backroom -> floor.
    t = 0
    for loc in ("floor", "backroom", "floor", "backroom", "floor"):
        rows.append(("item-1", t, loc))
        t += 2 * HOUR
    # item-2 has a stable path.
    rows += [("item-2", 0, "receiving"), ("item-2", 5 * HOUR, "floor")]
    db.load("reads", rows)
    db.create_index("reads", "rtime")
    return db


def main() -> None:
    db = build_store_data()

    # Application A (labor productivity): cycles are signal, keep them.
    productivity = DeferredCleansingEngine(db, RuleRegistry())

    # Application B (dwell accounting): cycles are noise; collapse
    # [X Y X Y X] into the first X and the last X (paper Example 4).
    dwell_registry = RuleRegistry()
    dwell_registry.define("""
        DEFINE cycle_rule ON reads CLUSTER BY epc SEQUENCE BY rtime
        AS (A, B, C) WHERE A.biz_loc = C.biz_loc AND A.biz_loc != B.biz_loc
        ACTION DELETE B
    """)
    dwell = DeferredCleansingEngine(db, dwell_registry)

    moves_sql = ("select epc, count(*) as reads, "
                 "count(distinct biz_loc) as locations "
                 "from reads group by epc")

    print("-- application A: shelf/labor analysis (cycles retained) --")
    print(productivity.execute(moves_sql).pretty())

    print("\n-- application B: dwell accounting (cycle rule applied) --")
    print(dwell.execute(moves_sql).pretty())

    # Both ran against the same stored table; no copies were made.
    item1_a = productivity.execute(
        "select count(*) from reads where epc = 'item-1'").scalar()
    item1_b = dwell.execute(
        "select count(*) from reads where epc = 'item-1'",
        strategies={"naive"}).scalar()
    print(f"\nitem-1 reads seen by A: {item1_a}, by B: {item1_b} "
          "(same stored rows, different query-time policies)")
    assert item1_a == 5 and item1_b < item1_a


if __name__ == "__main__":
    main()
