"""Dwell-time analysis over a generated supply chain (the paper's q1).

Generates a retailer supply chain with RFIDGen (10% anomalies), then
runs the Figure 6 "dwell" query — average time a shipment spends between
consecutive locations — on dirty data and through each rewrite strategy,
showing both the answer drift caused by anomalies and the cost of
cleansing deferred to query time.

Run:  python examples/dwell_time_analysis.py [scale]
"""

import sys
import time

from repro.datagen import GeneratorConfig
from repro.workloads import Workbench


def main(scale: int = 12) -> None:
    print(f"generating supply chain at scale {scale} "
          f"(~{scale * 1500} case reads, 10% anomalies)...")
    bench = Workbench.create(
        GeneratorConfig(scale=scale, anomaly_percent=10.0),
        rule_names=("reader", "duplicate", "replacing"))
    sql = bench.q1(0.10)

    start = time.perf_counter()
    dirty = bench.database.execute(sql)
    dirty_elapsed = time.perf_counter() - start
    print(f"\ndirty q1: {len(dirty)} location pairs "
          f"in {dirty_elapsed:.2f}s (answers include anomalies!)")

    results = {}
    for strategy in ("expanded", "joinback", "naive"):
        start = time.perf_counter()
        rs = bench.engine.execute(sql, strategies={strategy})
        elapsed = time.perf_counter() - start
        results[strategy] = rs
        print(f"cleansed q1 via {strategy:<9}: {len(rs)} pairs "
              f"in {elapsed:.2f}s")

    assert results["expanded"].as_set() == results["naive"].as_set()
    assert results["joinback"].as_set() == results["naive"].as_set()

    clean = results["expanded"]
    dirty_map = {(r[0], r[1]): r[2] for r in dirty}
    drift = []
    for from_loc, to_loc, avg_dwell in clean:
        dirty_value = dirty_map.get((from_loc, to_loc))
        if dirty_value is not None and avg_dwell \
                and abs(dirty_value - avg_dwell) > 0.05 * avg_dwell:
            drift.append((from_loc, to_loc, dirty_value, avg_dwell))
    ghost_pairs = set(dirty_map) - {(r[0], r[1]) for r in clean}

    print(f"\n{len(drift)} location pairs changed dwell time by >5% "
          "after cleansing")
    for from_loc, to_loc, dirty_value, clean_value in drift[:5]:
        print(f"  {from_loc} -> {to_loc}: "
              f"{dirty_value / 3600:8.1f}h dirty vs "
              f"{clean_value / 3600:8.1f}h cleansed")
    print(f"{len(ghost_pairs)} location pairs existed ONLY because of "
          "anomalous reads (e.g. cross reads)")

    decision = bench.engine.rewrite(sql)
    print(f"\nthe engine would pick: {decision.chosen.label} "
          f"(cost {decision.chosen.cost:.0f})")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 12)
