"""Quickstart: deferred cleansing in ~60 lines.

Creates a small RFID reads table with a duplicate anomaly, defines a
cleansing rule in extended SQL-TS, and runs the same query three ways:
directly on dirty data, through the rewrite engine (which picks the
cheapest correct rewrite), and pinned to each rewrite strategy.

Run:  python examples/quickstart.py
"""

from repro.minidb import Database, SqlType, TableSchema
from repro.rewrite import DeferredCleansingEngine
from repro.sqlts import RuleRegistry


def main() -> None:
    # 1. A reads table R(epc, rtime, reader, biz_loc, biz_step).
    db = Database()
    db.create_table("reads", TableSchema.of(
        ("epc", SqlType.VARCHAR),
        ("rtime", SqlType.TIMESTAMP),
        ("reader", SqlType.VARCHAR),
        ("biz_loc", SqlType.VARCHAR),
    ))
    db.load("reads", [
        ("case-1", 1_000, "dock-A", "receiving", ),
        ("case-1", 1_060, "dock-A", "receiving"),   # duplicate 60s later
        ("case-1", 9_000, "shelf-3", "sales-floor"),
        ("case-2", 2_000, "dock-B", "receiving"),
        ("case-2", 9_500, "shelf-7", "sales-floor"),
    ])
    db.create_index("reads", "rtime")

    # 2. The application's cleansing rule (paper §4.3, Example 1):
    #    drop repeat reads at the same location within five minutes.
    registry = RuleRegistry(db)
    registry.define("""
        DEFINE duplicate_rule ON reads CLUSTER BY epc SEQUENCE BY rtime
        AS (A, B)
        WHERE A.biz_loc = B.biz_loc AND B.rtime - A.rtime < 5 mins
        ACTION DELETE B
    """)
    engine = DeferredCleansingEngine(db, registry)

    query = "select biz_loc, count(*) as reads from reads " \
            "where rtime < 10000 group by biz_loc"

    print("-- dirty answer (no cleansing) --")
    print(db.execute(query).pretty())

    print("\n-- cleansed answer (deferred cleansing at query time) --")
    print(engine.execute(query).pretty())

    # 3. Look under the hood: the engine compiled several candidate
    #    rewrites and executed the one with the lowest optimizer cost.
    decision = engine.rewrite(query)
    print(f"\nchosen rewrite: {decision.chosen.label}")
    for candidate in decision.candidates:
        print(f"  candidate {candidate.label:<12} "
              f"estimated cost {candidate.cost:10.1f}")
    print("\nexpanded condition pushed into the reads table:")
    for conjunct in decision.analysis.ec_conjuncts:
        print(f"  {conjunct.to_sql()}")

    # 4. The rewrite is also available as portable SQL text (the form
    #    the paper's engine hands to the DBMS).
    from repro.rewrite import rewritten_sql
    print("\nrewritten SQL (expanded strategy):")
    print(rewritten_sql(db, registry, query, "expanded"))


if __name__ == "__main__":
    main()
