"""Query-context extraction tests (rewrite/context.py)."""

import pytest

from repro.errors import RewriteError
from repro.minidb import Database, SqlType, TableSchema
from repro.minidb.sqlparse import parse_select
from repro.rewrite.context import extract_context


@pytest.fixture
def db():
    database = Database()
    database.create_table("r", TableSchema.of(
        ("epc", SqlType.VARCHAR), ("rtime", SqlType.TIMESTAMP),
        ("biz_loc", SqlType.VARCHAR), ("biz_step", SqlType.VARCHAR)))
    database.load("r", [(f"e{i}", i * 10, f"l{i % 3}", f"s{i % 4}")
                        for i in range(20)])
    database.create_table("locs", TableSchema.of(
        ("gln", SqlType.VARCHAR), ("site", SqlType.VARCHAR)))
    database.load("locs", [(f"l{i}", f"site{i % 2}") for i in range(3)])
    database.create_table("steps", TableSchema.of(
        ("biz_step", SqlType.VARCHAR), ("type", SqlType.VARCHAR)))
    database.load("steps", [(f"s{i}", f"t{i % 2}") for i in range(4)])
    return database


def context_for(sql, db):
    return extract_context(parse_select(sql), "r", db)


class TestSConjuncts:
    def test_local_conjuncts_extracted_unqualified(self, db):
        ctx = context_for(
            "select * from r where rtime < 100 and biz_loc = 'l1'", db)
        assert {c.to_sql() for c in ctx.s_conjuncts} \
            == {"(rtime < 100)", "(biz_loc = 'l1')"}

    def test_alias_qualified_conjuncts(self, db):
        ctx = context_for("select * from r rr where rr.rtime < 100", db)
        assert [c.to_sql() for c in ctx.s_conjuncts] == ["(rtime < 100)"]
        assert [c.to_sql() for c in ctx.s_original] == ["(rr.rtime < 100)"]

    def test_reads_table_inside_cte(self, db):
        ctx = context_for(
            "with v as (select epc from r where rtime < 50) "
            "select * from v", db)
        assert [c.to_sql() for c in ctx.s_conjuncts] == ["(rtime < 50)"]

    def test_join_conjuncts_not_in_s(self, db):
        ctx = context_for(
            "select * from r, locs where r.biz_loc = locs.gln "
            "and r.rtime < 100", db)
        assert [c.to_sql() for c in ctx.s_conjuncts] == ["(rtime < 100)"]
        assert any("gln" in c.to_sql() for c in ctx.other_conjuncts)

    def test_ambiguous_shared_column_goes_to_other(self, db):
        # biz_step exists in both r and steps: an unqualified reference
        # cannot be classified as reads-local.
        ctx = context_for(
            "select * from r, steps where r.biz_step = steps.biz_step "
            "and type = 't1'", db)
        assert all("type" not in c.to_sql() for c in ctx.s_conjuncts)


class TestDimensions:
    def test_dimension_join_detected(self, db):
        ctx = context_for(
            "select * from r, locs where r.biz_loc = locs.gln "
            "and locs.site = 'site1' and r.rtime < 100", db)
        assert len(ctx.dimensions) == 1
        dim = ctx.dimensions[0]
        assert dim.fact_key == "biz_loc"
        assert dim.dim_key == "gln"
        assert dim.selectivity < 1.0
        assert [c.to_sql() for c in dim.local_conjuncts] \
            == ["(locs.site = 'site1')"]

    def test_dimensions_sorted_by_selectivity(self, db):
        ctx = context_for(
            "select * from r, locs, steps "
            "where r.biz_loc = locs.gln and r.biz_step = steps.biz_step "
            "and locs.site = 'site1'", db)
        assert len(ctx.dimensions) == 2
        assert ctx.dimensions[0].selectivity \
            <= ctx.dimensions[1].selectivity
        # The dim without a local predicate has selectivity 1.
        assert ctx.dimensions[1].selectivity == 1.0

    def test_in_conjunct_shape(self, db):
        ctx = context_for(
            "select * from r, locs where r.biz_loc = locs.gln "
            "and locs.site = 'site0'", db)
        conjunct = ctx.dimensions[0].in_conjunct()
        sql = conjunct.to_sql()
        assert "biz_loc" in sql and "SELECT gln" in sql
        assert "site0" in sql

    def test_explicit_join_syntax_detected(self, db):
        ctx = context_for(
            "select * from r join locs on r.biz_loc = locs.gln "
            "where locs.site = 'site0'", db)
        assert len(ctx.dimensions) == 1


class TestErrors:
    def test_zero_occurrences(self, db):
        with pytest.raises(RewriteError, match="0 times"):
            context_for("select * from locs", db)

    def test_two_occurrences(self, db):
        with pytest.raises(RewriteError, match="2 times"):
            context_for("select * from r a, r b where a.epc = b.epc", db)
