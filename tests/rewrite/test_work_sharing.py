"""Work-level assertions behind the paper's performance claims.

These tests pin the *mechanisms* (sorts shared, rows reduced), not wall
time, so they are stable on any machine.
"""

import pytest


@pytest.fixture(scope="module")
def bench(request):
    from repro.datagen import GeneratorConfig
    from repro.workloads import Workbench

    return Workbench.create(
        GeneratorConfig(scale=4, anomaly_percent=10.0, stores=6,
                        warehouses=3, distribution_centers=2,
                        locations_per_site=8, products=30,
                        manufacturers=5),
        rule_names=("reader", "duplicate", "replacing"))


class TestSortSharing:
    def test_three_rules_plus_query_share_one_sort(self, bench):
        """§6.2/§6.3: the ordering requirement of all rules and q1's OLAP
        is identical, so a single sort feeds the whole pipeline."""
        sql = bench.q1(0.10)
        _, metrics, _ = bench.engine.execute_with_metrics(
            sql, strategies={"expanded"})
        assert metrics.sort_operators == 1

    def test_naive_also_shares_but_sorts_everything(self, bench):
        sql = bench.q1(0.10)
        _, expanded, _ = bench.engine.execute_with_metrics(
            sql, strategies={"expanded"})
        _, naive, _ = bench.engine.execute_with_metrics(
            sql, strategies={"naive"})
        assert naive.sort_operators == 1
        assert naive.rows_sorted > 3 * expanded.rows_sorted

    def test_joinback_sorts_only_relevant_sequences(self, bench):
        sql = bench.q1(0.10)
        _, joinback, _ = bench.engine.execute_with_metrics(
            sql, strategies={"joinback"})
        _, naive, _ = bench.engine.execute_with_metrics(
            sql, strategies={"naive"})
        assert joinback.rows_sorted < naive.rows_sorted


class TestRowReduction:
    def test_expanded_touches_fraction_of_table(self, bench):
        sql = bench.q1(0.10)
        _, metrics, result = bench.engine.execute_with_metrics(
            sql, strategies={"expanded"})
        table_rows = len(bench.database.table("caser"))
        # The ec scan brings in roughly the query slice plus context.
        scan = list(result.physical.walk())[-1]
        assert scan.actual_rows < 0.5 * table_rows

    def test_naive_touches_whole_table(self, bench):
        sql = bench.q1(0.10)
        _, _, result = bench.engine.execute_with_metrics(
            sql, strategies={"naive"})
        table_rows = len(bench.database.table("caser"))
        scans = [node for node in result.physical.walk()
                 if node.label().startswith("SeqScan(caser)")]
        assert scans and scans[0].actual_rows == table_rows


class TestPersistedTemplates:
    def test_persisted_template_matches_plan_transform(self, bench):
        """Architecture steps 2 and 4: the SQL template stored in the
        rules table computes the same rows as the Φ_C plan transform."""
        from repro.minidb.plan.logical import LogicalScan
        from repro.sqlts.registry import RULES_TABLE

        db = bench.database
        compiled = bench.registry.rule("duplicate_rule")
        rows = db.execute(
            f"select sql_template from {RULES_TABLE} "
            f"where rule_name = 'duplicate_rule'")
        template = rows.scalar()
        sub = db.execute(
            "select epc, rtime, reader, biz_loc, biz_step from caser "
            "limit 500")
        db.create_table("_tpl_probe", db.table("caser").schema)
        try:
            db.table("_tpl_probe").bulk_load(sub.rows)
            db.analyze("_tpl_probe")
            via_template = db.execute(template.format(input="_tpl_probe"))
            via_plan = db.execute(
                compiled.apply(LogicalScan(db.table("_tpl_probe"))))
            # The registry persists the template over the rule's
            # required columns; compare on those.
            template_cols = set(via_template.columns)
            positions = [via_template.columns.index(c)
                         for c in sorted(template_cols)]
            plan_positions = [via_plan.columns.index(c)
                              for c in sorted(template_cols)]
            left = sorted(tuple(row[i] for i in positions)
                          for row in via_template.rows)
            right = sorted(tuple(row[i] for i in plan_positions)
                           for row in via_plan.rows)
            assert left == right
        finally:
            db.drop_table("_tpl_probe")
