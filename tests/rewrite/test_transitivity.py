"""Difference-closure and equality-propagation tests."""

from repro.minidb.expressions import BinaryOp, ColumnRef, Literal
from repro.minidb.sqlparse import parse_expression
from repro.rewrite.transitivity import (
    Bound,
    DifferenceClosure,
    derive_context_conjuncts,
)


def expr(text):
    return parse_expression(text)


def derive(correlation, query, context="b", target="a"):
    return derive_context_conjuncts(
        [expr(c) for c in correlation], [expr(q) for q in query],
        context, target)


def sqls(conjuncts):
    return {c.to_sql() for c in conjuncts}


class TestBoundArithmetic:
    def test_addition_propagates_strictness(self):
        assert (Bound(1, False) + Bound(2, False)) == Bound(3, False)
        assert (Bound(1, True) + Bound(2, False)).strict

    def test_tighter_than(self):
        assert Bound(1).tighter_than(Bound(2))
        assert Bound(2, True).tighter_than(Bound(2, False))
        assert not Bound(2, False).tighter_than(Bound(2, True))


class TestClosure:
    def test_upper_bound_chains(self):
        closure = DifferenceClosure()
        assert closure.add_atom(expr("b.t - a.t < 300"))
        assert closure.add_atom(expr("a.t < 1000"))
        bounds = closure.derived_bounds("b")
        assert BinaryOp("<", ColumnRef("t", "b"), Literal(1300)) in bounds

    def test_lower_bound_chains(self):
        closure = DifferenceClosure()
        closure.add_atom(expr("a.t - b.t < 300"))   # b.t > a.t - 300
        closure.add_atom(expr("a.t >= 1000"))
        bounds = closure.derived_bounds("b")
        assert BinaryOp(">", ColumnRef("t", "b"), Literal(700)) in bounds

    def test_equality_gives_both_bounds(self):
        closure = DifferenceClosure()
        closure.add_atom(expr("b.t = a.t + 10"))
        closure.add_atom(expr("a.t <= 5"))
        bounds = sqls(closure.derived_bounds("b"))
        assert "(b.t <= 15)" in bounds

    def test_unusable_atoms_reported(self):
        closure = DifferenceClosure()
        assert not closure.add_atom(expr("a.t * b.t < 5"))
        assert not closure.add_atom(expr("a.x = 'text'"))
        assert not closure.add_atom(expr("a.t != 5"))

    def test_no_bound_without_query_constant(self):
        closure = DifferenceClosure()
        closure.add_atom(expr("b.t - a.t < 300"))
        assert closure.derived_bounds("b") == []

    def test_strictness_preserved_through_chain(self):
        closure = DifferenceClosure()
        closure.add_atom(expr("b.t - a.t <= 300"))
        closure.add_atom(expr("a.t < 1000"))
        bounds = sqls(closure.derived_bounds("b"))
        assert "(b.t < 1300)" in bounds


class TestDeriveContextConjuncts:
    def test_paper_c1_q1(self):
        """Figure 3(c): cc1 = B.rtime < t1+5min AND B.reader='readerX'."""
        derived = derive(
            correlation=["b.reader = 'readerX'", "b.rtime - a.rtime < 300",
                         "a.epc = b.epc", "b.rtime >= a.rtime"],
            query=["a.rtime < 1000"])
        assert "(b.reader = 'readerX')" in sqls(derived)
        assert "(b.rtime < 1300)" in sqls(derived)

    def test_paper_c2_q2_infeasible(self):
        """Figure 3(d): no conjunct derivable for E."""
        derived = derive(
            correlation=["e.rtime <= f.rtime", "e.epc = f.epc"],
            query=["f.rtime > 2000"],
            context="e", target="f")
        assert derived == []

    def test_equality_propagates_string_predicates(self):
        derived = derive(
            correlation=["b.epc = a.epc"],
            query=["a.epc = 'e42'"])
        assert "(b.epc = 'e42')" in sqls(derived)

    def test_equality_propagates_in_lists(self):
        derived = derive(
            correlation=["b.epc = a.epc"],
            query=["a.epc in ('x', 'y')"])
        assert "(b.epc IN ('x', 'y'))" in sqls(derived)

    def test_equality_propagates_subqueries(self):
        derived = derive(
            correlation=["b.epc = a.epc"],
            query=["a.epc in (select epc from seq)"])
        assert any("SELECT" in c.to_sql() for c in derived)

    def test_context_local_conjuncts_pass_through(self):
        derived = derive(
            correlation=["b.reader = 'readerX'", "b.epc = a.epc"],
            query=[])
        assert "(b.reader = 'readerX')" in sqls(derived)

    def test_mixed_column_conjunct_not_propagated(self):
        derived = derive(
            correlation=["b.epc = a.epc"],
            query=["a.rtime < 10"])  # rtime not in any equality class
        assert derived == []

    def test_deduplication(self):
        derived = derive(
            correlation=["b.reader = 'readerX'", "b.reader = 'readerX'",
                         "b.epc = a.epc"],
            query=[])
        assert len([c for c in derived
                    if "reader" in c.to_sql()]) == 1
