"""Eager materialization tests."""

import pytest

from repro.errors import RewriteError
from repro.rewrite import DeferredCleansingEngine
from repro.rewrite.eager import materialize_cleansed
from repro.sqlts import RuleRegistry
from tests.conftest import make_reads_db

DUPLICATE = """
DEFINE dup ON r CLUSTER BY epc SEQUENCE BY rtime
AS (A, B) WHERE A.biz_loc = B.biz_loc AND B.rtime - A.rtime < 5 mins
ACTION DELETE B
"""

ROWS = [
    ("e1", 0, "rd", "a", "s"),
    ("e1", 100, "rd", "a", "s"),
    ("e1", 900, "rd", "b", "s"),
    ("e2", 50, "rd", "c", "s"),
]


@pytest.fixture
def setup():
    db = make_reads_db(ROWS)
    registry = RuleRegistry(db)
    registry.define(DUPLICATE)
    return db, registry


class TestMaterialize:
    def test_rows_match_deferred_naive(self, setup):
        db, registry = setup
        materialize_cleansed(db, registry, "r", "r_clean")
        engine = DeferredCleansingEngine(db, registry)
        eager = db.execute("select * from r_clean").as_set()
        deferred = engine.execute("select * from r",
                                  strategies={"naive"}).as_set()
        assert eager == deferred
        assert len(eager) == 3  # the duplicate is gone

    def test_source_untouched(self, setup):
        db, registry = setup
        materialize_cleansed(db, registry, "r", "r_clean")
        assert len(db.table("r")) == len(ROWS)

    def test_indexes_and_stats_carried_over(self, setup):
        db, registry = setup
        target = materialize_cleansed(db, registry, "r", "r_clean")
        assert target.index_on("rtime") is not None
        assert db.stats.get("r_clean").row_count == 3

    def test_queries_on_clean_copy_plan_with_indexes(self, setup):
        db, registry = setup
        materialize_cleansed(db, registry, "r", "r_clean")
        explained = db.explain("select epc from r_clean where rtime < 10")
        assert "IndexRangeScan" in explained.text

    def test_no_rules_rejected(self, setup):
        db, _ = setup
        empty = RuleRegistry()
        with pytest.raises(RewriteError, match="no cleansing rules"):
            materialize_cleansed(db, empty, "r", "r_clean")

    def test_existing_target_rejected(self, setup):
        db, registry = setup
        materialize_cleansed(db, registry, "r", "r_clean")
        with pytest.raises(RewriteError, match="already exists"):
            materialize_cleansed(db, registry, "r", "r_clean")

    def test_mixed_mode(self, setup):
        """Eager for shared rules, deferred for application rules."""
        db, registry = setup
        materialize_cleansed(db, registry, "r", "r_clean")
        app_registry = RuleRegistry()
        app_registry.define("""
            DEFINE app_rule ON r_clean CLUSTER BY epc SEQUENCE BY rtime
            AS (A) WHERE A.biz_loc != 'c' ACTION KEEP A""")
        engine = DeferredCleansingEngine(db, app_registry)
        rows = engine.execute("select epc, biz_loc from r_clean").as_set()
        assert rows == {("e1", "a"), ("e1", "b")}
